//! Umbrella crate for the Virtuoso virtual-memory simulation framework.
//!
//! This crate re-exports the public APIs of every workspace member so that
//! the examples and integration tests in this repository (and downstream
//! users who want "everything") can depend on a single crate:
//!
//! * [`virtuoso`] — the simulation framework itself (systems, channels,
//!   configuration, reports);
//! * [`mimic_os`] — the MimicOS userspace kernel;
//! * [`mmu_sim`] — TLBs, page-walk caches and page-table designs;
//! * [`cache_sim`], [`dram_sim`], [`ssd_sim`] — the memory-system substrates;
//! * [`sim_core`] — the core timing model and trace frontends;
//! * [`vm_workloads`] — synthetic workload generators;
//! * [`vm_types`] — shared vocabulary types.
//!
//! # Examples
//!
//! ```
//! use virtuoso_suite::prelude::*;
//!
//! let mut system = System::new(SystemConfig::small_test());
//! system.mmap_anonymous(VirtAddr::new(0x1000_0000), 1 << 20).unwrap();
//! let spec = WorkloadSpec::simple(
//!     "doc", WorkloadClass::ShortRunning, 1 << 20,
//!     AccessPattern::UniformRandom, 2_000,
//! );
//! let report = system.run(&mut spec.build(1), None);
//! assert!(report.instructions > 0);
//! ```

pub use cache_sim;
pub use dram_sim;
pub use mimic_os;
pub use mmu_sim;
pub use sim_core;
pub use ssd_sim;
pub use virtuoso;
pub use vm_types;
pub use vm_workloads;

/// Convenient single-import prelude for examples and quick experiments.
pub mod prelude {
    pub use mimic_os::{
        AllocationPolicy, ExitReason, FaultInjectionConfig, MimicOs, OsConfig, ProcessId, Scheduler,
    };
    pub use mmu_sim::{
        EngineConfig, EngineReport, MidgardConfig, Mmu, MmuConfig, PageTableKind, RmmConfig,
        TranslationEngine, UtopiaMmuConfig,
    };
    pub use sim_core::{Instruction, SliceFrontend, TraceSource};
    pub use virtuoso::{
        MultiProgramReport, OomStats, ProcessExitStatus, ProcessReport, SimulationMode,
        SimulationReport, System, SystemConfig,
    };
    pub use vm_types::{Asid, PageSize, PhysAddr, VirtAddr};
    pub use vm_workloads::{catalog, AccessPattern, WorkloadClass, WorkloadSpec};
}
