//! The trace-driven core timing model and frontend abstractions used by the
//! Virtuoso framework.
//!
//! The core model mirrors the role of Sniper/ChampSim's core models in the
//! paper: it consumes an instruction stream from a *frontend* (a trace
//! generator in this reproduction), charges non-memory instructions at the
//! core's issue rate, charges memory instructions with the latency the
//! memory system reports (partially overlapped according to a configurable
//! memory-level-parallelism factor), and accepts *injected kernel
//! instruction streams* from MimicOS through the instruction-stream channel
//! — the mechanism at the heart of the paper's methodology.
//!
//! # Examples
//!
//! ```
//! use sim_core::{CoreConfig, CoreModel};
//! use vm_types::Cycles;
//!
//! let mut core = CoreModel::new(CoreConfig::paper_baseline());
//! core.retire_compute(100);
//! core.retire_memory(Cycles::new(200));
//! assert!(core.cycles().raw() > 0);
//! assert_eq!(core.instructions(), 101);
//! ```

#![deny(missing_docs)]

pub mod core_model;
pub mod frontend;

pub use core_model::{CoreConfig, CoreModel, CoreStats};
pub use frontend::{Instruction, SliceFrontend, TraceSource};
