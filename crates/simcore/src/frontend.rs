//! Frontend abstractions: the instruction format fed to the core model and
//! the trait implemented by trace generators.
//!
//! The paper's Virtuoso integrates with trace-based (ChampSim, Ramulator),
//! execution-driven (Sniper) and emulation-based (gem5) frontends. In this
//! reproduction the frontend is a [`TraceSource`]: any type that yields
//! [`Instruction`]s on demand. Synthetic workload generators in the
//! `vm-workloads` crate implement it.

use serde::{Deserialize, Serialize};
use vm_types::{AccessType, VirtAddr};

/// One instruction of the simulated application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instruction {
    /// Program counter (virtual address of the instruction).
    pub pc: VirtAddr,
    /// The data memory operand, if the instruction is a load or store.
    pub memory: Option<(VirtAddr, AccessType)>,
}

impl Instruction {
    /// A non-memory (ALU/branch) instruction at `pc`.
    pub const fn compute(pc: VirtAddr) -> Self {
        Instruction { pc, memory: None }
    }

    /// A load from `addr` issued by the instruction at `pc`.
    pub const fn load(pc: VirtAddr, addr: VirtAddr) -> Self {
        Instruction {
            pc,
            memory: Some((addr, AccessType::Read)),
        }
    }

    /// A store to `addr` issued by the instruction at `pc`.
    pub const fn store(pc: VirtAddr, addr: VirtAddr) -> Self {
        Instruction {
            pc,
            memory: Some((addr, AccessType::Write)),
        }
    }

    /// `true` if the instruction references data memory.
    pub const fn is_memory(&self) -> bool {
        self.memory.is_some()
    }
}

/// A source of application instructions (the simulator frontend).
pub trait TraceSource {
    /// Produces the next instruction, or `None` when the trace is finished.
    fn next_instruction(&mut self) -> Option<Instruction>;

    /// A human-readable name for reports.
    fn name(&self) -> &str {
        "trace"
    }

    /// A hint of how many instructions the trace will produce, when known.
    fn expected_instructions(&self) -> Option<u64> {
        None
    }
}

/// A frontend that replays a fixed slice of instructions (useful in tests
/// and for recorded traces).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SliceFrontend {
    name: String,
    instructions: Vec<Instruction>,
    position: usize,
}

impl SliceFrontend {
    /// Creates a frontend that replays `instructions` once.
    pub fn new(name: &str, instructions: Vec<Instruction>) -> Self {
        SliceFrontend {
            name: name.to_string(),
            instructions,
            position: 0,
        }
    }

    /// Number of instructions remaining.
    pub fn remaining(&self) -> usize {
        self.instructions.len() - self.position
    }
}

impl TraceSource for SliceFrontend {
    fn next_instruction(&mut self) -> Option<Instruction> {
        let instr = self.instructions.get(self.position).copied();
        if instr.is_some() {
            self.position += 1;
        }
        instr
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_instructions(&self) -> Option<u64> {
        Some(self.instructions.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_constructors() {
        let c = Instruction::compute(VirtAddr::new(0x400));
        assert!(!c.is_memory());
        let l = Instruction::load(VirtAddr::new(0x404), VirtAddr::new(0x1000));
        assert_eq!(l.memory, Some((VirtAddr::new(0x1000), AccessType::Read)));
        let s = Instruction::store(VirtAddr::new(0x408), VirtAddr::new(0x2000));
        assert!(s.is_memory());
        assert_eq!(s.memory.unwrap().1, AccessType::Write);
    }

    #[test]
    fn slice_frontend_replays_in_order_then_ends() {
        let instrs = vec![
            Instruction::compute(VirtAddr::new(0x400)),
            Instruction::load(VirtAddr::new(0x404), VirtAddr::new(0x1000)),
        ];
        let mut fe = SliceFrontend::new("test", instrs.clone());
        assert_eq!(fe.expected_instructions(), Some(2));
        assert_eq!(fe.name(), "test");
        assert_eq!(fe.next_instruction(), Some(instrs[0]));
        assert_eq!(fe.remaining(), 1);
        assert_eq!(fe.next_instruction(), Some(instrs[1]));
        assert_eq!(fe.next_instruction(), None);
        assert_eq!(fe.next_instruction(), None);
    }
}
