//! The core timing model: an out-of-order-approximating accounting model
//! that charges compute instructions at the core's sustained IPC and memory
//! instructions with partially overlapped memory latency.

use serde::{Deserialize, Serialize};
use vm_types::{Counter, Cycles, Frequency};

/// Configuration of the core timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Sustained issue rate for non-memory instructions (instructions per
    /// cycle); the paper's baseline is a 4-wide out-of-order core, which
    /// sustains roughly 2–3 IPC on integer code.
    pub compute_ipc: f64,
    /// Fraction of a memory access's latency that the out-of-order window
    /// hides by overlapping it with other work (0 = fully exposed,
    /// 1 = fully hidden). Typical OoO cores hide a substantial part of L2/L3
    /// hits but little of DRAM latency for dependent accesses.
    pub memory_overlap: f64,
    /// Core clock frequency.
    pub frequency: Frequency,
}

impl CoreConfig {
    /// The paper's baseline core (Table 4): 4-way out-of-order at 2.9 GHz.
    pub fn paper_baseline() -> Self {
        CoreConfig {
            compute_ipc: 2.5,
            memory_overlap: 0.35,
            frequency: Frequency::from_ghz(2.9),
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper_baseline()
    }
}

/// Statistics of the core model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Application instructions retired.
    pub app_instructions: Counter,
    /// Kernel (injected MimicOS) instructions retired.
    pub kernel_instructions: Counter,
    /// Cycles spent executing application work.
    pub app_cycles: u64,
    /// Cycles spent executing injected kernel work.
    pub kernel_cycles: u64,
    /// Cycles the core stalled waiting for address translation (page walks
    /// and page faults), counted inside the above.
    pub translation_stall_cycles: u64,
}

/// The core timing model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreModel {
    config: CoreConfig,
    cycles_x1000: u64,
    stats: CoreStats,
    /// When `true`, retired work is attributed to the kernel stream.
    in_kernel_mode: bool,
}

impl CoreModel {
    /// Creates a core model.
    pub fn new(config: CoreConfig) -> Self {
        CoreModel {
            config,
            cycles_x1000: 0,
            stats: CoreStats::default(),
            in_kernel_mode: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Total elapsed cycles.
    pub fn cycles(&self) -> Cycles {
        Cycles::new(self.cycles_x1000 / 1000)
    }

    /// Total retired instructions (application + kernel).
    pub fn instructions(&self) -> u64 {
        self.stats.app_instructions.get() + self.stats.kernel_instructions.get()
    }

    /// Instructions per cycle over the whole run (application + kernel).
    pub fn ipc(&self) -> f64 {
        let cycles = self.cycles().raw();
        if cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / cycles as f64
        }
    }

    /// IPC of the application instructions only, with kernel cycles still
    /// counted as elapsed time (the application-visible slowdown).
    pub fn app_ipc(&self) -> f64 {
        let cycles = self.cycles().raw();
        if cycles == 0 {
            0.0
        } else {
            self.stats.app_instructions.get() as f64 / cycles as f64
        }
    }

    /// Switches attribution between application and kernel work (entering /
    /// leaving an injected MimicOS instruction stream).
    pub fn set_kernel_mode(&mut self, enabled: bool) {
        self.in_kernel_mode = enabled;
    }

    /// `true` while retiring an injected kernel stream.
    pub fn in_kernel_mode(&self) -> bool {
        self.in_kernel_mode
    }

    fn advance(&mut self, cycles_x1000: u64, instructions: u64) {
        self.cycles_x1000 += cycles_x1000;
        if self.in_kernel_mode {
            self.stats.kernel_instructions.add(instructions);
            self.stats.kernel_cycles += cycles_x1000 / 1000;
        } else {
            self.stats.app_instructions.add(instructions);
            self.stats.app_cycles += cycles_x1000 / 1000;
        }
    }

    /// Retires `count` non-memory instructions.
    pub fn retire_compute(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        let cycles_x1000 = (count as f64 * 1000.0 / self.config.compute_ipc) as u64;
        self.advance(cycles_x1000, count);
    }

    /// Retires one memory instruction whose memory-system latency was
    /// `latency`; the out-of-order window hides `memory_overlap` of it.
    pub fn retire_memory(&mut self, latency: Cycles) {
        let exposed = latency.raw() as f64 * (1.0 - self.config.memory_overlap);
        // The instruction itself also occupies an issue slot.
        let cycles_x1000 = (exposed * 1000.0) as u64 + (1000.0 / self.config.compute_ipc) as u64;
        self.advance(cycles_x1000, 1);
    }

    /// Charges a translation stall (page-walk latency beyond the TLB, or a
    /// page-fault service time) without retiring an instruction. The stall
    /// is attributed to the current mode and also recorded separately.
    pub fn stall_translation(&mut self, latency: Cycles) {
        self.stats.translation_stall_cycles += latency.raw();
        self.advance(latency.raw() * 1000, 0);
    }

    /// Charges an arbitrary stall (e.g. storage I/O) without retiring an
    /// instruction.
    pub fn stall(&mut self, latency: Cycles) {
        self.advance(latency.raw() * 1000, 0);
    }

    /// Elapsed wall-clock time in nanoseconds at the configured frequency.
    pub fn elapsed_ns(&self) -> f64 {
        self.cycles().to_nanos(self.config.frequency).as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_instructions_retire_at_configured_ipc() {
        let mut core = CoreModel::new(CoreConfig {
            compute_ipc: 2.0,
            memory_overlap: 0.0,
            frequency: Frequency::from_ghz(1.0),
        });
        core.retire_compute(1000);
        assert_eq!(core.cycles(), Cycles::new(500));
        assert!((core.ipc() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_latency_is_partially_hidden() {
        let cfg = CoreConfig {
            compute_ipc: 1.0,
            memory_overlap: 0.5,
            frequency: Frequency::from_ghz(1.0),
        };
        let mut core = CoreModel::new(cfg);
        core.retire_memory(Cycles::new(100));
        // 50 cycles exposed + 1 issue cycle.
        assert_eq!(core.cycles(), Cycles::new(51));
    }

    #[test]
    fn kernel_mode_attributes_work_separately() {
        let mut core = CoreModel::new(CoreConfig::paper_baseline());
        core.retire_compute(100);
        core.set_kernel_mode(true);
        core.retire_compute(50);
        core.retire_memory(Cycles::new(80));
        core.set_kernel_mode(false);
        assert_eq!(core.stats().app_instructions.get(), 100);
        assert_eq!(core.stats().kernel_instructions.get(), 51);
        assert!(core.stats().kernel_cycles > 0);
        assert_eq!(core.instructions(), 151);
        assert!(core.app_ipc() < core.ipc() + 1e-12);
    }

    #[test]
    fn translation_stalls_accumulate() {
        let mut core = CoreModel::new(CoreConfig::paper_baseline());
        core.stall_translation(Cycles::new(120));
        core.stall_translation(Cycles::new(30));
        assert_eq!(core.stats().translation_stall_cycles, 150);
        assert_eq!(core.instructions(), 0);
        assert!(core.cycles() >= Cycles::new(150));
    }

    #[test]
    fn elapsed_time_respects_frequency() {
        let mut core = CoreModel::new(CoreConfig {
            compute_ipc: 1.0,
            memory_overlap: 0.0,
            frequency: Frequency::from_ghz(2.0),
        });
        core.retire_compute(2000);
        assert!((core.elapsed_ns() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn zero_work_has_zero_ipc() {
        let core = CoreModel::new(CoreConfig::paper_baseline());
        assert_eq!(core.ipc(), 0.0);
        assert_eq!(core.cycles(), Cycles::ZERO);
    }
}
