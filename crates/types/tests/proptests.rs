//! Property-based tests for the foundational types.

use proptest::prelude::*;
use vm_types::stats::{accuracy, cosine_similarity, geometric_mean};
use vm_types::{DetRng, Histogram, LatencyStats, PageSize, PhysAddr, RunningStats, VirtAddr};

proptest! {
    #[test]
    fn page_base_is_aligned_and_below(raw in 0u64..(1 << 48), size_idx in 0usize..3) {
        let size = PageSize::ALL[size_idx];
        let va = VirtAddr::new(raw);
        let base = va.page_base(size);
        prop_assert!(base.is_aligned(size));
        prop_assert!(base.raw() <= raw);
        prop_assert!(raw - base.raw() < size.bytes());
    }

    #[test]
    fn page_offset_plus_base_reconstructs(raw in 0u64..(1 << 48), size_idx in 0usize..3) {
        let size = PageSize::ALL[size_idx];
        let va = VirtAddr::new(raw);
        prop_assert_eq!(va.page_base(size).raw() + va.page_offset(size), raw);
    }

    #[test]
    fn align_up_ge_align_down(raw in 0u64..(1 << 47), size_idx in 0usize..3) {
        let size = PageSize::ALL[size_idx];
        let pa = PhysAddr::new(raw);
        prop_assert!(pa.align_up(size).raw() >= pa.align_down(size).raw());
        prop_assert!(pa.align_up(size).raw() - raw < size.bytes());
    }

    #[test]
    fn page_number_floor_roundtrip(raw in 0u64..(1 << 48), size_idx in 0usize..3) {
        let size = PageSize::ALL[size_idx];
        let va = VirtAddr::new(raw);
        prop_assert_eq!(va.page_number(size).floor(size), va.page_base(size));
    }

    #[test]
    fn running_stats_mean_bounded_by_extrema(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = RunningStats::new();
        for &v in &values {
            s.record(v);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert_eq!(s.count(), values.len() as u64);
    }

    #[test]
    fn latency_quantiles_monotone(values in prop::collection::vec(0.0f64..1e9, 1..200)) {
        let mut lat = LatencyStats::new();
        for &v in &values {
            lat.record(v);
        }
        let p = lat.percentiles();
        prop_assert!(p.p25 <= p.p50 + 1e-9);
        prop_assert!(p.p50 <= p.p75 + 1e-9);
        prop_assert!(p.p75 <= p.p99 + 1e-9);
        prop_assert!(p.p99 <= p.max + 1e-9);
    }

    #[test]
    fn outlier_contribution_is_a_fraction(values in prop::collection::vec(0.0f64..1e6, 1..100), threshold in 0.0f64..1e6) {
        let mut lat = LatencyStats::new();
        for &v in &values {
            lat.record(v);
        }
        let c = lat.outlier_contribution(threshold);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn histogram_total_matches_records(values in prop::collection::vec(0u64..10_000, 0..300)) {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), values.len() as u64);
    }

    #[test]
    fn cosine_similarity_bounded(a in prop::collection::vec(0.0f64..1e6, 1..50), b in prop::collection::vec(0.0f64..1e6, 1..50)) {
        let sim = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&sim));
    }

    #[test]
    fn cosine_similarity_self_is_one(a in prop::collection::vec(1.0f64..1e6, 1..50)) {
        let sim = cosine_similarity(&a, &a);
        prop_assert!((sim - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_bounded(est in 0.0f64..1e9, reference in 1e-3f64..1e9) {
        let acc = accuracy(est, reference);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn geometric_mean_between_extremes(values in prop::collection::vec(1e-3f64..1e6, 1..50)) {
        let g = geometric_mean(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min * 0.999);
        prop_assert!(g <= max * 1.001);
    }

    #[test]
    fn rng_is_deterministic(seed in any::<u64>()) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..32 {
            let v = rng.gen_range(lo, lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }
}
