//! The workspace-wide error type.

use crate::addr::{PhysAddr, VirtAddr};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors produced by the Virtuoso simulation framework.
///
/// Each variant carries enough context to diagnose the failing operation
/// without a debugger. All variants are lowercase, concise messages per the
/// `C-GOOD-ERR` guideline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VmError {
    /// Physical memory is exhausted and reclaim could not free enough pages.
    OutOfMemory {
        /// Bytes that were requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// A virtual address was accessed that belongs to no virtual memory area.
    SegmentationFault {
        /// The faulting virtual address.
        vaddr: VirtAddr,
    },
    /// An address translation was attempted for an unmapped page and demand
    /// paging is disabled for the context.
    NotMapped {
        /// The unmapped virtual address.
        vaddr: VirtAddr,
    },
    /// A physical frame was freed twice or freed without being allocated.
    InvalidFree {
        /// The offending physical address.
        paddr: PhysAddr,
    },
    /// A virtual-memory-area operation had inconsistent arguments
    /// (e.g. overlapping map, zero-length region).
    InvalidVma {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A configuration value is out of range or internally inconsistent.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The swap device is full.
    SwapFull,
    /// A hash-based structure (elastic cuckoo table, Utopia RestSeg) could
    /// not place an entry after exhausting its collision-resolution budget.
    HashPlacementFailed {
        /// Name of the structure that failed.
        structure: &'static str,
    },
    /// A communication-channel protocol violation between the simulator and
    /// MimicOS (e.g. response read before a request was posted).
    ChannelProtocol {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "out of physical memory: requested {requested} bytes, {free} free"
                )
            }
            VmError::SegmentationFault { vaddr } => {
                write!(f, "segmentation fault at {vaddr}")
            }
            VmError::NotMapped { vaddr } => write!(f, "address {vaddr} is not mapped"),
            VmError::InvalidFree { paddr } => write!(f, "invalid free of frame {paddr}"),
            VmError::InvalidVma { reason } => write!(f, "invalid virtual memory area: {reason}"),
            VmError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            VmError::SwapFull => write!(f, "swap space exhausted"),
            VmError::HashPlacementFailed { structure } => {
                write!(f, "hash placement failed in {structure}")
            }
            VmError::ChannelProtocol { reason } => {
                write!(f, "channel protocol violation: {reason}")
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<VmError> = vec![
            VmError::OutOfMemory {
                requested: 4096,
                free: 0,
            },
            VmError::SegmentationFault {
                vaddr: VirtAddr::new(0xdead),
            },
            VmError::NotMapped {
                vaddr: VirtAddr::new(0x1000),
            },
            VmError::InvalidFree {
                paddr: PhysAddr::new(0x2000),
            },
            VmError::InvalidVma {
                reason: "zero length".into(),
            },
            VmError::InvalidConfig {
                reason: "tlb ways is zero".into(),
            },
            VmError::SwapFull,
            VmError::HashPlacementFailed {
                structure: "elastic cuckoo",
            },
            VmError::ChannelProtocol {
                reason: "response before request".into(),
            },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "message: {msg}");
            assert!(!msg.ends_with('.'), "message: {msg}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<VmError>();
    }

    #[test]
    fn segfault_mentions_address() {
        let e = VmError::SegmentationFault {
            vaddr: VirtAddr::new(0xabc),
        };
        assert!(e.to_string().contains("0xabc"));
    }
}
