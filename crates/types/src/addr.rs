//! Strongly-typed virtual and physical addresses, page sizes and page numbers.
//!
//! The whole framework manipulates three kinds of quantities that are all
//! "just a `u64`" at the machine level but mean very different things:
//! virtual addresses produced by the application, physical addresses produced
//! by address translation, and page numbers (addresses shifted right by the
//! page-size order). Newtypes keep them apart statically
//! (see the `C-NEWTYPE` API guideline).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a cache line in bytes. All cache and DRAM models operate at this
/// granularity.
pub const CACHE_LINE_BYTES: u64 = 64;

/// Page sizes supported by the x86-64 memory-management model that MimicOS
/// imitates.
///
/// # Examples
///
/// ```
/// use vm_types::PageSize;
/// assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
/// assert_eq!(PageSize::Size2M.order_4k(), 9);
/// assert!(PageSize::Size1G > PageSize::Size4K);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum PageSize {
    /// 4 KiB base page.
    #[default]
    Size4K,
    /// 2 MiB huge page (one PMD entry).
    Size2M,
    /// 1 GiB huge page (one PUD entry).
    Size1G,
}

impl PageSize {
    /// All page sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

    /// Size of the page in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4 * 1024,
            PageSize::Size2M => 2 * 1024 * 1024,
            PageSize::Size1G => 1024 * 1024 * 1024,
        }
    }

    /// log2 of the page size in bytes (the shift used to obtain page numbers).
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Buddy-allocator order of this page size relative to 4 KiB base pages
    /// (`0` for 4 KiB, `9` for 2 MiB, `18` for 1 GiB).
    #[inline]
    pub const fn order_4k(self) -> u32 {
        self.shift() - PageSize::Size4K.shift()
    }

    /// Number of 4 KiB base pages covered by one page of this size.
    #[inline]
    pub const fn base_pages(self) -> u64 {
        1 << self.order_4k()
    }

    /// Returns the page size matching a byte count, if it is exactly one of
    /// the supported sizes.
    pub fn from_bytes(bytes: u64) -> Option<PageSize> {
        PageSize::ALL.into_iter().find(|p| p.bytes() == bytes)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KB"),
            PageSize::Size2M => write!(f, "2MB"),
            PageSize::Size1G => write!(f, "1GB"),
        }
    }
}

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an address from its raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The zero address.
            pub const ZERO: Self = Self(0);

            /// Raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Offset of the address within a page of the given size.
            #[inline]
            pub const fn page_offset(self, size: PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }

            /// Base address of the page (of the given size) containing this
            /// address.
            #[inline]
            pub const fn page_base(self, size: PageSize) -> Self {
                Self(self.0 & !(size.bytes() - 1))
            }

            /// Page number of the page (of the given size) containing this
            /// address.
            #[inline]
            pub const fn page_number(self, size: PageSize) -> PageNumber {
                PageNumber::new(self.0 >> size.shift(), size)
            }

            /// Base address of the cache line containing this address.
            #[inline]
            pub const fn cache_line(self) -> Self {
                Self(self.0 & !(CACHE_LINE_BYTES - 1))
            }

            /// Adds a byte offset, returning a new address.
            ///
            /// # Panics
            ///
            /// Panics on overflow of the 64-bit address space in debug builds.
            #[inline]
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Adds a byte offset with wrapping semantics.
            #[inline]
            pub const fn wrapping_add(self, bytes: u64) -> Self {
                Self(self.0.wrapping_add(bytes))
            }

            /// Byte distance from `other` to `self`.
            ///
            /// # Panics
            ///
            /// Panics (in debug builds) if `other > self`.
            #[inline]
            pub const fn offset_from(self, other: Self) -> u64 {
                self.0 - other.0
            }

            /// Returns `true` if the address is aligned to the given page size.
            #[inline]
            pub const fn is_aligned(self, size: PageSize) -> bool {
                self.page_offset(size) == 0
            }

            /// Rounds the address down to the given page size.
            #[inline]
            pub const fn align_down(self, size: PageSize) -> Self {
                self.page_base(size)
            }

            /// Rounds the address up to the given page size.
            #[inline]
            pub const fn align_up(self, size: PageSize) -> Self {
                let mask = size.bytes() - 1;
                Self((self.0 + mask) & !mask)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }
    };
}

addr_newtype!(
    /// A virtual address as seen by the simulated application.
    ///
    /// # Examples
    ///
    /// ```
    /// use vm_types::{VirtAddr, PageSize};
    /// let va = VirtAddr::new(0x2000_0123);
    /// assert_eq!(va.page_base(PageSize::Size4K), VirtAddr::new(0x2000_0000));
    /// assert_eq!(va.page_offset(PageSize::Size4K), 0x123);
    /// ```
    VirtAddr
);

addr_newtype!(
    /// A physical address produced by address translation.
    ///
    /// # Examples
    ///
    /// ```
    /// use vm_types::{PhysAddr, PageSize};
    /// let pa = PhysAddr::new(0x1_0000_0000);
    /// assert!(pa.is_aligned(PageSize::Size1G));
    /// ```
    PhysAddr
);

/// A page number: an address shifted right by the page-size order, tagged
/// with the page size it refers to.
///
/// # Examples
///
/// ```
/// use vm_types::{VirtAddr, PageSize};
/// let vpn = VirtAddr::new(0x40_2000).page_number(PageSize::Size4K);
/// assert_eq!(vpn.number(), 0x402);
/// assert_eq!(vpn.floor(PageSize::Size4K).raw(), 0x40_2000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageNumber {
    number: u64,
    size: PageSize,
}

impl PageNumber {
    /// Creates a page number from its raw value and page size.
    #[inline]
    pub const fn new(number: u64, size: PageSize) -> Self {
        Self { number, size }
    }

    /// Raw page-number value.
    #[inline]
    pub const fn number(self) -> u64 {
        self.number
    }

    /// The page size this number refers to.
    #[inline]
    pub const fn size(self) -> PageSize {
        self.size
    }

    /// Converts the page number back to the base virtual address of the page.
    #[inline]
    pub const fn floor(self, size: PageSize) -> VirtAddr {
        VirtAddr::new(self.number << size.shift())
    }

    /// Converts the page number back to the base physical address of the page.
    #[inline]
    pub const fn floor_phys(self, size: PageSize) -> PhysAddr {
        PhysAddr::new(self.number << size.shift())
    }
}

impl fmt::Display for PageNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn {:#x} ({})", self.number, self.size)
    }
}

/// Splits an x86-64 virtual address into its four radix page-table indices
/// (PGD, PUD, PMD, PTE), 9 bits each.
///
/// # Examples
///
/// ```
/// use vm_types::{VirtAddr, addr::radix_indices};
/// let idx = radix_indices(VirtAddr::new(0x0000_7f12_3456_7000));
/// assert_eq!(idx.len(), 4);
/// assert!(idx.iter().all(|&i| i < 512));
/// ```
pub fn radix_indices(va: VirtAddr) -> [usize; 4] {
    let raw = va.raw();
    [
        ((raw >> 39) & 0x1ff) as usize,
        ((raw >> 30) & 0x1ff) as usize,
        ((raw >> 21) & 0x1ff) as usize,
        ((raw >> 12) & 0x1ff) as usize,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_bytes_and_shift_agree() {
        for size in PageSize::ALL {
            assert_eq!(1u64 << size.shift(), size.bytes());
        }
    }

    #[test]
    fn page_size_ordering() {
        assert!(PageSize::Size4K < PageSize::Size2M);
        assert!(PageSize::Size2M < PageSize::Size1G);
    }

    #[test]
    fn page_size_from_bytes_roundtrip() {
        for size in PageSize::ALL {
            assert_eq!(PageSize::from_bytes(size.bytes()), Some(size));
        }
        assert_eq!(PageSize::from_bytes(8192), None);
    }

    #[test]
    fn base_pages_counts() {
        assert_eq!(PageSize::Size4K.base_pages(), 1);
        assert_eq!(PageSize::Size2M.base_pages(), 512);
        assert_eq!(PageSize::Size1G.base_pages(), 512 * 512);
    }

    #[test]
    fn virt_addr_page_math() {
        let va = VirtAddr::new(0x7fff_1234_5678);
        assert_eq!(va.page_offset(PageSize::Size4K), 0x678);
        assert_eq!(va.page_base(PageSize::Size4K).raw(), 0x7fff_1234_5000);
        assert_eq!(va.page_offset(PageSize::Size2M), 0x134_5678 & 0x1f_ffff);
        assert_eq!(
            va.page_number(PageSize::Size4K).floor(PageSize::Size4K),
            va.page_base(PageSize::Size4K)
        );
    }

    #[test]
    fn alignment_helpers() {
        let va = VirtAddr::new(0x1001);
        assert!(!va.is_aligned(PageSize::Size4K));
        assert_eq!(va.align_down(PageSize::Size4K).raw(), 0x1000);
        assert_eq!(va.align_up(PageSize::Size4K).raw(), 0x2000);
        let aligned = VirtAddr::new(0x4000);
        assert_eq!(aligned.align_up(PageSize::Size4K), aligned);
    }

    #[test]
    fn cache_line_base() {
        let pa = PhysAddr::new(0x1234_5679);
        assert_eq!(pa.cache_line().raw(), 0x1234_5640);
        assert_eq!(pa.cache_line().raw() % CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn offset_from_and_add_are_inverse() {
        let base = VirtAddr::new(0x10_0000);
        let derived = base.add(0x42);
        assert_eq!(derived.offset_from(base), 0x42);
    }

    #[test]
    fn radix_indices_within_bounds_and_reconstructible() {
        let va = VirtAddr::new(0x0000_7f12_3456_7abc);
        let [pgd, pud, pmd, pte] = radix_indices(va);
        let rebuilt = ((pgd as u64) << 39)
            | ((pud as u64) << 30)
            | ((pmd as u64) << 21)
            | ((pte as u64) << 12)
            | (va.raw() & 0xfff);
        assert_eq!(rebuilt, va.raw() & 0x0000_ffff_ffff_ffff);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtAddr::new(0xdead).to_string(), "0xdead");
        assert_eq!(format!("{:x}", PhysAddr::new(0xbeef)), "beef");
        assert_eq!(PageSize::Size2M.to_string(), "2MB");
    }

    #[test]
    fn page_number_display_mentions_size() {
        let pn = PageNumber::new(7, PageSize::Size1G);
        assert!(pn.to_string().contains("1GB"));
    }
}
