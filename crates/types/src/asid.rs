//! Address-space identifiers (ASIDs / PCIDs).
//!
//! Modern MMUs tag TLB entries with the identifier of the address space
//! that installed them, so a context switch does not require a full TLB
//! flush: entries of the outgoing process stay resident and are simply
//! ignored by lookups from the incoming process. The kernel assigns one
//! ASID per process (x86 calls them PCIDs, Arm calls them ASIDs).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An address-space identifier tagging TLB entries and page tables.
///
/// One ASID is assigned per simulated process. Hardware ASIDs are narrow
/// (12 bits on x86 PCID, 8/16 bits on Arm); `u16` covers both.
///
/// # Examples
///
/// ```
/// use vm_types::Asid;
///
/// let a = Asid::new(1);
/// assert_ne!(a, Asid::KERNEL);
/// assert_eq!(a.raw(), 1);
/// assert_eq!(a.to_string(), "asid 1");
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Asid(u16);

impl Asid {
    /// The ASID of the first process (and of kernel-global entries).
    pub const KERNEL: Asid = Asid(0);

    /// Builds an ASID from its raw hardware value.
    pub const fn new(raw: u16) -> Self {
        Asid(raw)
    }

    /// The raw hardware value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asid_roundtrip_and_ordering() {
        assert_eq!(Asid::new(7).raw(), 7);
        assert_eq!(Asid::default(), Asid::KERNEL);
        assert!(Asid::new(1) < Asid::new(2));
    }
}
