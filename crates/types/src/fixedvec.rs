//! A const-generic inline vector for allocation-free hot paths.
//!
//! The simulation's steady-state instruction loop produces several small,
//! bounded lists per memory access (DRAM fetches, writebacks, page-walk
//! accesses). Backing those with `Vec` puts one or more heap allocations on
//! the hottest path of the whole framework; [`FixedVec`] keeps up to `N`
//! elements inline on the stack and only falls back to the heap in
//! pathological cases (e.g. a hash page table with extremely long collision
//! chains). Call sites with an architecturally guaranteed bound assert that
//! the spill never happens (see [`FixedVec::spilled`]).
//!
//! The environment has no network access to crates.io, so `smallvec` is not
//! available; this is the small subset of it Virtuoso needs.
//!
//! # Examples
//!
//! ```
//! use vm_types::FixedVec;
//!
//! let mut v: FixedVec<u64, 4> = FixedVec::new();
//! v.push(1);
//! v.push(2);
//! assert_eq!(v.as_slice(), &[1, 2]);
//! assert!(!v.spilled());
//! // Pushing past the inline capacity moves the data to the heap but keeps
//! // every element.
//! for i in 3..=10 {
//!     v.push(i);
//! }
//! assert_eq!(v.len(), 10);
//! assert!(v.spilled());
//! assert_eq!(v[9], 10);
//! ```

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A vector storing up to `N` elements inline (no heap allocation) and
/// spilling to a heap `Vec` only when pushed beyond `N`.
///
/// The common operations mirror `Vec`: [`push`](FixedVec::push),
/// [`len`](FixedVec::len), [`clear`](FixedVec::clear), iteration, indexing
/// and slicing (through `Deref<Target = [T]>`). Elements are always
/// contiguous: either in the inline buffer or, after a spill, in the heap
/// buffer.
pub struct FixedVec<T, const N: usize> {
    /// Inline storage; only `inline[..len]` is initialized, and only while
    /// `spill` is `None`.
    inline: [MaybeUninit<T>; N],
    /// Number of initialized inline elements (0 when spilled).
    len: usize,
    /// Heap storage after a spill. `Some` means ALL elements live here.
    spill: Option<Vec<T>>,
}

impl<T, const N: usize> FixedVec<T, N> {
    /// Creates an empty vector. Never allocates.
    pub const fn new() -> Self {
        FixedVec {
            // SAFETY: an array of `MaybeUninit` is trivially valid
            // uninitialized.
            inline: unsafe { MaybeUninit::uninit().assume_init() },
            len: 0,
            spill: None,
        }
    }

    /// The inline capacity `N`.
    pub const fn inline_capacity(&self) -> usize {
        N
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(v) => v.len(),
            None => self.len,
        }
    }

    /// `true` when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once the vector has overflowed its inline capacity and moved
    /// to the heap. Hot paths with an architectural bound on the element
    /// count use this to assert the bound holds.
    pub fn spilled(&self) -> bool {
        self.spill.is_some()
    }

    /// Appends an element. Allocation-free while the length stays within
    /// the inline capacity; the first push beyond `N` moves the contents to
    /// the heap.
    pub fn push(&mut self, value: T) {
        if let Some(v) = &mut self.spill {
            v.push(value);
            return;
        }
        if self.len < N {
            self.inline[self.len].write(value);
            self.len += 1;
            return;
        }
        // Spill: move the inline elements into a heap vector.
        // vmlint: allow(no-alloc-in-hot-path, "designed spill slow path: allocation-free until the inline capacity N is exceeded, which the counting-allocator test pins never happens in steady state")
        let mut v = Vec::with_capacity(N * 2 + 1);
        for slot in &mut self.inline[..self.len] {
            // SAFETY: slots `..len` are initialized; after this loop `len`
            // is reset to 0 so they are never read (or dropped) again.
            v.push(unsafe { slot.assume_init_read() });
        }
        self.len = 0;
        v.push(value);
        self.spill = Some(v);
    }

    /// Removes and returns the last element, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        if let Some(v) = &mut self.spill {
            return v.pop();
        }
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // SAFETY: slot `len` was initialized and is now out of bounds.
        Some(unsafe { self.inline[self.len].assume_init_read() })
    }

    /// Removes every element. Keeps the heap buffer if one was allocated.
    pub fn clear(&mut self) {
        if let Some(v) = &mut self.spill {
            v.clear();
            return;
        }
        for slot in &mut self.inline[..self.len] {
            // SAFETY: slots `..len` are initialized; `len` is zeroed below.
            unsafe { slot.assume_init_drop() };
        }
        self.len = 0;
    }

    /// The elements as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.spill {
            Some(v) => v.as_slice(),
            // SAFETY: `inline[..len]` is initialized.
            None => unsafe {
                std::slice::from_raw_parts(self.inline.as_ptr().cast::<T>(), self.len)
            },
        }
    }

    /// The elements as a mutable contiguous slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.spill {
            Some(v) => v.as_mut_slice(),
            // SAFETY: `inline[..len]` is initialized.
            None => unsafe {
                std::slice::from_raw_parts_mut(self.inline.as_mut_ptr().cast::<T>(), self.len)
            },
        }
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T, const N: usize> Drop for FixedVec<T, N> {
    fn drop(&mut self) {
        // The heap vector (if any) drops itself; inline elements need an
        // explicit drop.
        if self.spill.is_none() {
            for slot in &mut self.inline[..self.len] {
                // SAFETY: slots `..len` are initialized and dropped once.
                unsafe { slot.assume_init_drop() };
            }
        }
    }
}

impl<T, const N: usize> Default for FixedVec<T, N> {
    fn default() -> Self {
        FixedVec::new()
    }
}

impl<T, const N: usize> Deref for FixedVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for FixedVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone, const N: usize> Clone for FixedVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = FixedVec::new();
        for item in self.iter() {
            out.push(item.clone());
        }
        out
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for FixedVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for FixedVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for FixedVec<T, N> {}

impl<T: PartialEq, const N: usize> PartialEq<[T]> for FixedVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: PartialEq, const N: usize, const M: usize> PartialEq<[T; M]> for FixedVec<T, N> {
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T, const N: usize> Extend<T> for FixedVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for FixedVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = FixedVec::new();
        out.extend(iter);
        out
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a FixedVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: serde::Serialize, const N: usize> serde::Serialize for FixedVec<T, N> {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T, const N: usize> serde::Deserialize for FixedVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn starts_empty_without_allocating() {
        let v: FixedVec<u64, 4> = FixedVec::new();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[] as &[u64]);
        assert_eq!(v.inline_capacity(), 4);
    }

    #[test]
    fn push_and_index_within_inline_capacity() {
        let mut v: FixedVec<u64, 4> = FixedVec::new();
        for i in 0..4 {
            v.push(i * 10);
        }
        assert_eq!(v.len(), 4);
        assert!(!v.spilled());
        assert_eq!(v[0], 0);
        assert_eq!(v[3], 30);
        assert_eq!(v.iter().sum::<u64>(), 60);
    }

    #[test]
    fn pushing_past_capacity_spills_and_preserves_order() {
        let mut v: FixedVec<u64, 2> = FixedVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        assert!(v.spilled());
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn pop_round_trips_inline_and_spilled() {
        let mut v: FixedVec<u32, 2> = FixedVec::new();
        assert_eq!(v.pop(), None);
        v.push(1);
        v.push(2);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.pop(), Some(4));
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn clear_resets_both_modes() {
        let mut v: FixedVec<u32, 2> = FixedVec::new();
        v.push(1);
        v.clear();
        assert!(v.is_empty());
        for i in 0..5 {
            v.push(i);
        }
        v.clear();
        assert!(v.is_empty());
        assert!(v.spilled(), "heap buffer is kept after clear");
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut v: FixedVec<u32, 4> = FixedVec::new();
        v.extend([1, 2, 3]);
        v.extend(Some(4));
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        let w: FixedVec<u32, 2> = (0..6).collect();
        assert_eq!(w.len(), 6);
        assert!(w.spilled());
    }

    #[test]
    fn clone_eq_and_debug() {
        let mut v: FixedVec<u32, 3> = FixedVec::new();
        v.extend([7, 8]);
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(format!("{v:?}"), "[7, 8]");
        let mut x: FixedVec<u32, 3> = FixedVec::new();
        x.push(7);
        assert_ne!(v, x);
        assert_eq!(v, [7u32, 8]);
    }

    #[test]
    fn equality_ignores_storage_mode() {
        // Same elements, one spilled and one (with a larger N) inline.
        let a: FixedVec<u32, 2> = (0..4).collect();
        let b: FixedVec<u32, 2> = (0..4).collect();
        assert!(a.spilled() && b.spilled());
        assert_eq!(a, b);
        assert_eq!(a.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn drops_inline_elements_exactly_once() {
        let rc = Rc::new(());
        {
            let mut v: FixedVec<Rc<()>, 4> = FixedVec::new();
            v.push(rc.clone());
            v.push(rc.clone());
            assert_eq!(Rc::strong_count(&rc), 3);
        }
        assert_eq!(Rc::strong_count(&rc), 1);
    }

    #[test]
    fn drops_spilled_elements_exactly_once() {
        let rc = Rc::new(());
        {
            let mut v: FixedVec<Rc<()>, 2> = FixedVec::new();
            for _ in 0..5 {
                v.push(rc.clone());
            }
            assert!(v.spilled());
            assert_eq!(Rc::strong_count(&rc), 6);
        }
        assert_eq!(Rc::strong_count(&rc), 1);
    }

    #[test]
    fn serializes_as_a_json_array() {
        let mut v: FixedVec<u32, 4> = FixedVec::new();
        let mut out = String::new();
        serde::Serialize::write_json(&v, &mut out);
        assert_eq!(out, "[]");
        v.extend([1, 2, 3]);
        out.clear();
        serde::Serialize::write_json(&v, &mut out);
        assert_eq!(out, "[1,2,3]");
    }

    #[test]
    fn mutable_slice_access_works() {
        let mut v: FixedVec<u32, 4> = FixedVec::new();
        v.extend([1, 2, 3]);
        v.as_mut_slice()[1] = 20;
        v[2] = 30;
        assert_eq!(v.as_slice(), &[1, 20, 30]);
        v.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v.as_slice(), &[30, 20, 1]);
    }
}
