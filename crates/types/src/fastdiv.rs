//! Precomputed divisors for the simulation hot path.
//!
//! Every cache, TLB, page-walk-cache and DRAM-mapping lookup reduces an
//! address to a set/bank index with an integer `%` and `/`. Hardware-like
//! geometries make the divisor a power of two in practice, so the division
//! (20+ cycles on most cores) collapses to a mask and a shift. [`FastDiv`]
//! captures the divisor once at construction and picks the fast path when
//! it can — with results bit-identical to `%`/`/` either way, so swapping
//! it in cannot perturb simulation output.
//!
//! # Examples
//!
//! ```
//! use vm_types::FastDiv;
//!
//! let by8 = FastDiv::new(8);
//! assert_eq!(by8.rem(27), 27 % 8);
//! assert_eq!(by8.div(27), 27 / 8);
//! let by10 = FastDiv::new(10); // non-power-of-two: falls back to `%`
//! assert_eq!(by10.rem(27), 7);
//! assert_eq!(by10.div(27), 2);
//! ```

use serde::{Deserialize, Serialize};

/// A divisor with a precomputed power-of-two fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastDiv {
    divisor: u64,
    /// `divisor - 1` when the divisor is a power of two (the mask), else 0.
    mask: u64,
    /// `log2(divisor)` when the divisor is a power of two, else 0.
    shift: u32,
    /// Whether the mask/shift fast path applies.
    pow2: bool,
}

impl FastDiv {
    /// Captures `divisor` (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is 0.
    pub fn new(divisor: u64) -> Self {
        assert!(divisor != 0, "FastDiv divisor must be non-zero");
        let pow2 = divisor.is_power_of_two();
        FastDiv {
            divisor,
            mask: if pow2 { divisor - 1 } else { 0 },
            shift: if pow2 { divisor.trailing_zeros() } else { 0 },
            pow2,
        }
    }

    /// The divisor this was built from.
    #[inline]
    pub fn divisor(&self) -> u64 {
        self.divisor
    }

    /// `x % divisor`.
    #[inline]
    pub fn rem(&self, x: u64) -> u64 {
        if self.pow2 {
            x & self.mask
        } else {
            x % self.divisor
        }
    }

    /// `x / divisor`.
    #[inline]
    pub fn div(&self, x: u64) -> u64 {
        if self.pow2 {
            x >> self.shift
        } else {
            x / self.divisor
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_native_operators_for_many_divisors() {
        for divisor in [
            1u64,
            2,
            3,
            7,
            8,
            10,
            16,
            64,
            100,
            128,
            1 << 20,
            (1 << 20) + 1,
        ] {
            let fd = FastDiv::new(divisor);
            assert_eq!(fd.divisor(), divisor);
            for x in [0u64, 1, 5, 63, 64, 65, 1000, u64::MAX / 2, u64::MAX] {
                assert_eq!(fd.rem(x), x % divisor, "{x} % {divisor}");
                assert_eq!(fd.div(x), x / divisor, "{x} / {divisor}");
            }
        }
    }

    #[test]
    fn divisor_one_behaves() {
        let fd = FastDiv::new(1);
        assert_eq!(fd.rem(12345), 0);
        assert_eq!(fd.div(12345), 12345);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_divisor_is_rejected() {
        FastDiv::new(0);
    }
}
