//! A fast, deterministic hasher for simulator-internal hash maps.
//!
//! `std`'s default `SipHash` is hardened against collision attacks the
//! simulator does not face, and its per-lookup cost is visible on the
//! steady-state instruction loop (the page-table storage maps are probed
//! on every TLB miss). This is the classic Fx multiply-rotate hash used by
//! rustc: a few cycles per word, and — unlike `RandomState` — fully
//! deterministic across processes, which keeps any serialized map output
//! reproducible.
//!
//! # Examples
//!
//! ```
//! use vm_types::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(42, "walk");
//! assert_eq!(m.get(&42), Some(&"walk"));
//! ```

// vmlint: allow(determinism, "defining site of the sanctioned alias: the std container is re-exported with a fixed-seed hasher, which is exactly what makes it deterministic")
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplication constant (golden-ratio derived, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (deterministic: no random seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic Fx hasher.
// vmlint: allow(determinism, "defining site of the sanctioned alias: FxBuildHasher replaces the random seed, so iteration order is process-independent")
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(&0x1234_5678_u64), hash_of(&0x1234_5678_u64));
        assert_eq!(hash_of(&(3u8, 77u64)), hash_of(&(3u8, 77u64)));
    }

    #[test]
    fn distinct_keys_get_distinct_hashes() {
        // Not a collision-resistance claim — just a sanity check that the
        // mixing actually mixes.
        let a = hash_of(&1u64);
        let b = hash_of(&2u64);
        let c = hash_of(&(1u64 << 32));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u8, u64), u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((1, i), i * 3);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(1, i)), Some(&(i * 3)));
        }
        assert_eq!(m.get(&(2, 0)), None);
    }

    #[test]
    fn byte_stream_and_word_hashing_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let long = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3]);
        assert_ne!(long, h2.finish());
    }
}
