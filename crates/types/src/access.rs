//! Memory-access descriptors with requestor attribution.
//!
//! Every request that reaches the cache hierarchy or DRAM is tagged with a
//! [`Requestor`], so that the DRAM model can attribute row-buffer conflicts
//! to application data, page-table walks or kernel (MimicOS) activity — the
//! attribution behind the paper's Figure 14 and Figure 21.

use crate::addr::{PhysAddr, VirtAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessType {
    /// A load / read access.
    Read,
    /// A store / write access.
    Write,
    /// An instruction fetch.
    Fetch,
}

impl AccessType {
    /// Returns `true` for writes.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessType::Write)
    }
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessType::Read => write!(f, "read"),
            AccessType::Write => write!(f, "write"),
            AccessType::Fetch => write!(f, "fetch"),
        }
    }
}

/// The agent on whose behalf a memory access is performed.
///
/// The paper's evaluation attributes DRAM row-buffer conflicts separately to
/// application data, page-table-walk traffic, and OS-routine traffic
/// (Figs. 14 and 21); this enum carries that attribution through the memory
/// hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Requestor {
    /// The simulated application itself.
    Application,
    /// The hardware page-table walker fetching translation metadata
    /// (page-table entries, range-table nodes, Utopia tag arrays, …).
    PageTableWalker,
    /// MimicOS kernel routines (page-fault handler, khugepaged, reclaim, …),
    /// i.e. the injected kernel instruction stream.
    Kernel,
    /// Hardware prefetchers.
    Prefetcher,
}

impl Requestor {
    /// All requestors, in a stable order (useful for report tables).
    pub const ALL: [Requestor; 4] = [
        Requestor::Application,
        Requestor::PageTableWalker,
        Requestor::Kernel,
        Requestor::Prefetcher,
    ];

    /// `true` if this requestor represents address-translation metadata
    /// traffic (the category Fig. 21 reports on).
    #[inline]
    pub const fn is_translation_metadata(self) -> bool {
        matches!(self, Requestor::PageTableWalker)
    }
}

impl fmt::Display for Requestor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Requestor::Application => write!(f, "application"),
            Requestor::PageTableWalker => write!(f, "ptw"),
            Requestor::Kernel => write!(f, "kernel"),
            Requestor::Prefetcher => write!(f, "prefetcher"),
        }
    }
}

/// A single memory access descriptor flowing through the memory hierarchy.
///
/// # Examples
///
/// ```
/// use vm_types::{AccessType, MemoryAccess, PhysAddr, Requestor, VirtAddr};
///
/// let access = MemoryAccess::new(
///     VirtAddr::new(0x1000),
///     PhysAddr::new(0x8000_1000),
///     AccessType::Read,
///     Requestor::Application,
/// );
/// assert!(!access.kind.is_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Virtual address of the access (zero for accesses with no virtual
    /// counterpart, e.g. physically-indexed page-table fetches).
    pub vaddr: VirtAddr,
    /// Physical address of the access after translation.
    pub paddr: PhysAddr,
    /// Read, write or fetch.
    pub kind: AccessType,
    /// Who performs the access.
    pub requestor: Requestor,
}

impl MemoryAccess {
    /// Creates a new memory access descriptor.
    pub const fn new(
        vaddr: VirtAddr,
        paddr: PhysAddr,
        kind: AccessType,
        requestor: Requestor,
    ) -> Self {
        MemoryAccess {
            vaddr,
            paddr,
            kind,
            requestor,
        }
    }

    /// Convenience constructor for physically-addressed accesses (page-table
    /// walks, kernel metadata) that have no meaningful virtual address.
    pub const fn physical(paddr: PhysAddr, kind: AccessType, requestor: Requestor) -> Self {
        MemoryAccess {
            vaddr: VirtAddr::ZERO,
            paddr,
            kind,
            requestor,
        }
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} va={} pa={}",
            self.requestor, self.kind, self.vaddr, self.paddr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_type_is_write() {
        assert!(AccessType::Write.is_write());
        assert!(!AccessType::Read.is_write());
        assert!(!AccessType::Fetch.is_write());
    }

    #[test]
    fn requestor_translation_metadata_flag() {
        assert!(Requestor::PageTableWalker.is_translation_metadata());
        assert!(!Requestor::Application.is_translation_metadata());
        assert!(!Requestor::Kernel.is_translation_metadata());
    }

    #[test]
    fn requestor_all_is_exhaustive_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in Requestor::ALL {
            assert!(seen.insert(r));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn physical_constructor_zeroes_vaddr() {
        let a = MemoryAccess::physical(
            PhysAddr::new(0x42_000),
            AccessType::Read,
            Requestor::PageTableWalker,
        );
        assert_eq!(a.vaddr, VirtAddr::ZERO);
        assert_eq!(a.paddr.raw(), 0x42_000);
    }

    #[test]
    fn display_mentions_requestor_and_kind() {
        let a = MemoryAccess::new(
            VirtAddr::new(1),
            PhysAddr::new(2),
            AccessType::Write,
            Requestor::Kernel,
        );
        let s = a.to_string();
        assert!(s.contains("kernel"));
        assert!(s.contains("write"));
    }
}
