//! Simulation time: core cycles, nanoseconds and clock frequencies.
//!
//! The simulator's core model counts time in [`Cycles`]; the OS-facing side
//! (MimicOS) reports latencies such as page-fault handling time in
//! [`Nanoseconds`], matching how the paper reports them (µs-scale page-fault
//! latency, cycle-scale page-walk latency). A [`Frequency`] converts between
//! the two.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A duration (or point in time) measured in core clock cycles.
///
/// # Examples
///
/// ```
/// use vm_types::Cycles;
/// let a = Cycles::new(100);
/// let b = Cycles::new(35);
/// assert_eq!((a + b).raw(), 135);
/// assert_eq!((a - b).raw(), 65);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two cycle counts.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Returns the smaller of two cycle counts.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Converts to nanoseconds at the given core frequency.
    #[inline]
    pub fn to_nanos(self, freq: Frequency) -> Nanoseconds {
        Nanoseconds::from_f64(self.0 as f64 / freq.ghz())
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

/// A duration measured in nanoseconds, stored with sub-nanosecond precision
/// as picoseconds internally.
///
/// # Examples
///
/// ```
/// use vm_types::Nanoseconds;
/// let ns = Nanoseconds::from_f64(2200.0);
/// assert!((ns.as_micros() - 2.2).abs() < 1e-9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanoseconds(u64);

impl Nanoseconds {
    /// Zero duration.
    pub const ZERO: Nanoseconds = Nanoseconds(0);

    /// Creates a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanoseconds(ns * 1000)
    }

    /// Creates a duration from fractional nanoseconds.
    #[inline]
    pub fn from_f64(ns: f64) -> Self {
        Nanoseconds((ns.max(0.0) * 1000.0).round() as u64)
    }

    /// Creates a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanoseconds(us * 1_000_000)
    }

    /// The duration as fractional nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The duration as fractional microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.as_nanos() / 1000.0
    }

    /// Converts to core cycles at the given frequency.
    #[inline]
    pub fn to_cycles(self, freq: Frequency) -> Cycles {
        Cycles::new((self.as_nanos() * freq.ghz()).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, other: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0.saturating_sub(other.0))
    }
}

impl Add for Nanoseconds {
    type Output = Nanoseconds;
    fn add(self, rhs: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0 + rhs.0)
    }
}

impl AddAssign for Nanoseconds {
    fn add_assign(&mut self, rhs: Nanoseconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanoseconds {
    type Output = Nanoseconds;
    fn sub(self, rhs: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0 - rhs.0)
    }
}

impl Sum for Nanoseconds {
    fn sum<I: Iterator<Item = Nanoseconds>>(iter: I) -> Nanoseconds {
        Nanoseconds(iter.map(|n| n.0).sum())
    }
}

impl fmt::Display for Nanoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.as_micros())
        } else {
            write!(f, "{:.3} ns", self.as_nanos())
        }
    }
}

/// A clock frequency, used to convert between cycles and wall-clock time.
///
/// # Examples
///
/// ```
/// use vm_types::{Cycles, Frequency};
/// let freq = Frequency::from_ghz(2.9);
/// let lat = Cycles::new(2900).to_nanos(freq);
/// assert!((lat.as_nanos() - 1000.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency {
    mhz: f64,
}

impl Frequency {
    /// Creates a frequency from GHz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Frequency { mhz: ghz * 1000.0 }
    }

    /// Creates a frequency from MHz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency { mhz }
    }

    /// Frequency in GHz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.mhz / 1000.0
    }

    /// Frequency in MHz.
    #[inline]
    pub fn mhz(self) -> f64 {
        self.mhz
    }
}

impl Default for Frequency {
    /// The paper's baseline core frequency: 2.9 GHz (Intel Xeon Gold 6226R).
    fn default() -> Self {
        Frequency::from_ghz(2.9)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let mut c = Cycles::new(10);
        c += Cycles::new(5);
        assert_eq!(c, Cycles::new(15));
        c -= Cycles::new(3);
        assert_eq!(c, Cycles::new(12));
        assert_eq!(c * 2, Cycles::new(24));
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(5)), Cycles::ZERO);
    }

    #[test]
    fn cycles_sum_and_minmax() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(6));
        assert_eq!(Cycles::new(4).max(Cycles::new(9)), Cycles::new(9));
        assert_eq!(Cycles::new(4).min(Cycles::new(9)), Cycles::new(4));
    }

    #[test]
    fn nanos_micros_roundtrip() {
        let ns = Nanoseconds::from_micros(3);
        assert_eq!(ns.as_nanos(), 3000.0);
        assert_eq!(ns.as_micros(), 3.0);
    }

    #[test]
    fn cycles_nanos_conversion_roundtrips() {
        let freq = Frequency::from_ghz(2.0);
        let c = Cycles::new(4000);
        let ns = c.to_nanos(freq);
        assert_eq!(ns.as_nanos(), 2000.0);
        assert_eq!(ns.to_cycles(freq), c);
    }

    #[test]
    fn frequency_default_matches_paper_config() {
        let f = Frequency::default();
        assert!((f.ghz() - 2.9).abs() < 1e-12);
    }

    #[test]
    fn nanoseconds_display_switches_units() {
        assert!(Nanoseconds::from_nanos(120).to_string().contains("ns"));
        assert!(Nanoseconds::from_micros(12).to_string().contains("us"));
    }

    #[test]
    fn fractional_nanoseconds_preserved() {
        let ns = Nanoseconds::from_f64(0.25);
        assert!((ns.as_nanos() - 0.25).abs() < 1e-9);
    }
}
