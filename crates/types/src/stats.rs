//! Statistics primitives used throughout the framework: counters, running
//! means, log-scale latency histograms and percentile summaries.
//!
//! The paper reports latency *distributions* (Fig. 2, Fig. 16), averages
//! (Fig. 3, Fig. 10), accuracy percentages (Fig. 8) and cosine similarity of
//! latency series (Fig. 9). This module provides the building blocks for all
//! of them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use vm_types::Counter;
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Incremental mean / variance / extrema tracker (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use vm_types::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population standard deviation (0 if fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Minimum sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile summary of a sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed value.
    pub max: f64,
}

/// An exact-sample latency recorder with percentile and tail-contribution
/// queries.
///
/// The recorder stores every sample (the experiments record at most a few
/// hundred thousand page faults, so this is cheap) which lets it answer the
/// paper's distribution questions exactly: percentiles for the box plots of
/// Fig. 2 / Fig. 16, and "contribution of outliers to total latency".
///
/// # Examples
///
/// ```
/// use vm_types::LatencyStats;
/// let mut lat = LatencyStats::new();
/// for v in [1.0, 2.0, 3.0, 100.0] {
///     lat.record(v);
/// }
/// let p = lat.percentiles();
/// assert!(p.p50 <= 3.0);
/// // The single outlier (>10.0) contributes most of the total latency.
/// assert!(lat.outlier_contribution(10.0) > 0.9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<f64>,
    stats: RunningStats,
}

impl LatencyStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyStats {
            samples: Vec::new(),
            stats: RunningStats::new(),
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
        self.stats.record(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Standard deviation of the latency.
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Total (summed) latency across all samples.
    pub fn total(&self) -> f64 {
        self.stats.sum()
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// All recorded samples, in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The value at the given quantile `q` in `[0, 1]`, by nearest-rank on the
    /// sorted samples. Returns 0 for an empty recorder.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples must not be NaN"));
        let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Standard percentile summary (25/50/75/90/99/max).
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p25: self.quantile(0.25),
            p50: self.quantile(0.50),
            p75: self.quantile(0.75),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Fraction of the *total* latency contributed by samples larger than
    /// `threshold` — the paper's "contribution of outliers to total minor
    /// page fault latency" metric (Fig. 2).
    pub fn outlier_contribution(&self, threshold: f64) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        let outliers: f64 = self
            .samples
            .iter()
            .copied()
            .filter(|&v| v > threshold)
            .sum();
        outliers / total
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.stats.merge(&other.stats);
    }
}

/// A fixed-bucket histogram over `u64` values (e.g. VMA sizes, latencies in
/// cycles) with user-supplied bucket upper bounds.
///
/// # Examples
///
/// ```
/// use vm_types::Histogram;
/// let mut h = Histogram::new(&[10, 100, 1000]);
/// h.record(5);
/// h.record(50);
/// h.record(5000);
/// assert_eq!(h.bucket_counts(), &[1, 1, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bounds (inclusive) of each bucket; values above the last bound
    /// fall into the overflow bucket.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
        }
    }

    /// Records a value into the appropriate bucket.
    pub fn record(&mut self, value: u64) {
        let idx = match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => i,
            None => self.bounds.len(),
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket upper bounds supplied at construction.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Cosine similarity between two equally-indexed series, the metric the paper
/// uses to validate page-fault latency against the real system (Fig. 9).
///
/// Returns 0 when either vector is all zeros or when lengths differ by more
/// than the shared prefix (the shared prefix is compared).
///
/// # Examples
///
/// ```
/// use vm_types::stats::cosine_similarity;
/// let sim = cosine_similarity(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((sim - 1.0).abs() < 1e-12);
/// ```
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
    for i in 0..n {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Accuracy of an estimate relative to a reference, as the paper reports it:
/// `1 - |estimate - reference| / reference`, clamped to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use vm_types::stats::accuracy;
/// assert!((accuracy(0.8, 1.0) - 0.8).abs() < 1e-12);
/// assert_eq!(accuracy(5.0, 1.0), 0.0);
/// ```
pub fn accuracy(estimate: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        return if estimate == 0.0 { 1.0 } else { 0.0 };
    }
    (1.0 - ((estimate - reference).abs() / reference.abs())).clamp(0.0, 1.0)
}

/// Geometric mean of a slice of positive values (0 if empty).
///
/// # Examples
///
/// ```
/// use vm_types::stats::geometric_mean;
/// assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn running_stats_mean_and_stddev() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut all = RunningStats::new();
        for i in 0..50 {
            let v = (i as f64).sin() * 10.0 + 20.0;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn empty_running_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn latency_percentiles_ordering() {
        let mut lat = LatencyStats::new();
        for v in 1..=100 {
            lat.record(v as f64);
        }
        let p = lat.percentiles();
        assert!(p.p25 <= p.p50 && p.p50 <= p.p75 && p.p75 <= p.p90 && p.p90 <= p.p99);
        assert_eq!(p.max, 100.0);
        assert!((p.p50 - 50.0).abs() <= 1.0);
    }

    #[test]
    fn outlier_contribution_matches_manual_computation() {
        let mut lat = LatencyStats::new();
        for v in [1.0, 1.0, 1.0, 1.0, 96.0] {
            lat.record(v);
        }
        assert!((lat.outlier_contribution(10.0) - 0.96).abs() < 1e-12);
        assert_eq!(lat.outlier_contribution(1000.0), 0.0);
    }

    #[test]
    fn latency_merge_combines_samples() {
        let mut a = LatencyStats::new();
        a.record(1.0);
        let mut b = LatencyStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[4, 8, 16]);
        for v in [1, 4, 5, 8, 9, 16, 17, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 5]);
    }

    #[test]
    fn cosine_similarity_identical_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[], &[]), 0.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn accuracy_clamps_and_handles_zero_reference() {
        assert_eq!(accuracy(0.0, 0.0), 1.0);
        assert_eq!(accuracy(1.0, 0.0), 0.0);
        assert!((accuracy(66.0, 100.0) - 0.66).abs() < 1e-12);
        assert_eq!(accuracy(250.0, 100.0), 0.0);
    }

    #[test]
    fn geometric_mean_examples() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }
}
