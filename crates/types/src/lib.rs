//! Common types for the Virtuoso virtual-memory simulation framework.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace:
//!
//! * strongly-typed addresses and page sizes ([`addr`]),
//! * address-space identifiers tagging TLB entries ([`asid`]),
//! * simulation time in core cycles and nanoseconds ([`cycles`]),
//! * memory-access descriptors with requestor attribution ([`access`]),
//! * statistics primitives — counters, histograms, running means ([`stats`]),
//! * an allocation-free inline vector for hot paths ([`fixedvec`]),
//! * precomputed power-of-two-aware divisors ([`fastdiv`]),
//! * a deterministic fast hasher for internal maps ([`fxhash`]),
//! * a deterministic, seedable random number generator ([`rng`]),
//! * the crate-wide error type ([`error`]).
//!
//! # Examples
//!
//! ```
//! use vm_types::{VirtAddr, PageSize};
//!
//! let va = VirtAddr::new(0x7f00_1234_5678);
//! assert_eq!(va.page_offset(PageSize::Size4K), 0x678);
//! assert_eq!(va.page_number(PageSize::Size4K).floor(PageSize::Size4K), va.page_base(PageSize::Size4K));
//! ```

#![deny(missing_docs)]

pub mod access;
pub mod addr;
pub mod asid;
pub mod cycles;
pub mod error;
pub mod fastdiv;
pub mod fixedvec;
pub mod fxhash;
pub mod rng;
pub mod stats;

pub use access::{AccessType, MemoryAccess, Requestor};
pub use addr::{PageNumber, PageSize, PhysAddr, VirtAddr, CACHE_LINE_BYTES};
pub use asid::Asid;
pub use cycles::{Cycles, Frequency, Nanoseconds};
pub use error::VmError;
pub use fastdiv::FastDiv;
pub use fixedvec::FixedVec;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use rng::DetRng;
pub use stats::{Counter, Histogram, LatencyStats, Percentiles, RunningStats};

/// Result alias used across the workspace.
pub type VmResult<T> = std::result::Result<T, VmError>;
