//! A small, deterministic, seedable pseudo-random number generator.
//!
//! Every stochastic decision in the framework (workload address streams,
//! hash functions with randomized seeds, fragmentation injection) flows
//! through [`DetRng`] so that experiments are reproducible bit-for-bit from a
//! seed. The generator is the `splitmix64`/`xoshiro256**` combination, which
//! is small, fast and has no external dependency.

use serde::{Deserialize, Serialize};

/// Deterministic pseudo-random number generator (xoshiro256** seeded through
/// splitmix64).
///
/// # Examples
///
/// ```
/// use vm_types::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let r = a.gen_range(10, 20);
/// assert!((10..20).contains(&r));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi (got {lo}..{hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an approximately Pareto-distributed value with the given shape
    /// `alpha` and scale `x_min`, useful for heavy-tailed latency and
    /// allocation-size models.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        x_min / u.powf(1.0 / alpha)
    }

    /// Samples an exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Samples an index from a discrete weighted distribution. Returns the
    /// index of the chosen weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index requires weights");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0,
            "weighted_index requires a positive total weight"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0, (i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator, useful for giving each
    /// subsystem its own stream from one experiment seed.
    pub fn fork(&mut self, label: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl Default for DetRng {
    fn default() -> Self {
        DetRng::new(0xC0FF_EE00_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5, 17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn gen_range_rejects_empty_range() {
        let mut rng = DetRng::new(3);
        let _ = rng.gen_range(5, 5);
    }

    #[test]
    fn next_f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = DetRng::new(13);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "fraction was {frac}");
    }

    #[test]
    fn pareto_is_heavy_tailed_above_min() {
        let mut rng = DetRng::new(17);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn exponential_mean_close_to_parameter() {
        let mut rng = DetRng::new(19);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = DetRng::new(23);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio was {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(29);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = DetRng::new(31);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
