//! Per-process address-space state: the VMA tree plus the kernel's
//! authoritative record of established virtual-to-physical mappings.
//!
//! The mapping table kept here is the *functional* truth about the address
//! space — which virtual pages are backed by which physical frames at which
//! page size. The hardware-visible page-table *representation* (radix,
//! elastic cuckoo, hashed, …) is modelled separately in the `mmu-sim` crate
//! and is kept in sync by the Virtuoso framework, mirroring how MimicOS and
//! the simulator's MMU model communicate through the functional channel.

use crate::fault::Mapping;
use crate::vma::VmaTree;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vm_types::{PageSize, VirtAddr};

/// Why the kernel terminated a process before its workload finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitReason {
    /// Chosen as the out-of-memory killer's victim.
    OomKilled,
}

/// Everything the kernel must release when it kills a process: the resident
/// mappings (each tagged with whether it lives in a hugetlbfs VMA, whose
/// frames return to the hugetlb pool rather than the buddy allocator) and
/// the swap slots holding its swapped-out pages.
#[derive(Debug)]
pub struct KilledAddressSpace {
    /// Resident mappings, paired with the hugetlbfs flag of their VMA.
    pub mappings: Vec<(Mapping, bool)>,
    /// Swap slots owned by the dead address space.
    pub swap_slots: Vec<u64>,
}

/// One simulated process (address space).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Process {
    /// The process's virtual memory areas.
    pub vmas: VmaTree,
    /// Established mappings, keyed by the base virtual address of the page.
    mappings: BTreeMap<u64, Mapping>,
    /// Pages currently swapped out: base virtual address → swap slot.
    swapped: BTreeMap<u64, u64>,
    /// Set when the kernel terminated the process (fault counters survive
    /// for reporting; the address space is gone).
    exited: Option<ExitReason>,
    /// Number of minor page faults taken by this process.
    pub minor_faults: u64,
    /// Number of major page faults taken by this process.
    pub major_faults: u64,
    /// Faults taken on read accesses.
    pub read_faults: u64,
    /// Faults taken on write accesses.
    pub write_faults: u64,
}

impl Process {
    /// Creates an empty process.
    pub fn new() -> Self {
        Process::default()
    }

    /// Looks up the mapping covering `addr`, checking 1 GiB, 2 MiB and 4 KiB
    /// granularity in that order.
    pub fn lookup_mapping(&self, addr: VirtAddr) -> Option<Mapping> {
        for size in [PageSize::Size1G, PageSize::Size2M, PageSize::Size4K] {
            let base = addr.page_base(size);
            if let Some(m) = self.mappings.get(&base.raw()) {
                if m.page_size == size {
                    return Some(*m);
                }
            }
        }
        None
    }

    /// `true` if `addr` is covered by an established mapping.
    pub fn is_mapped(&self, addr: VirtAddr) -> bool {
        self.lookup_mapping(addr).is_some()
    }

    /// Records a new mapping. The mapping's virtual base must be aligned to
    /// its page size.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the base address is not aligned to the
    /// mapping's page size.
    pub fn insert_mapping(&mut self, mapping: Mapping) {
        debug_assert!(mapping.vaddr.is_aligned(mapping.page_size));
        self.mappings.insert(mapping.vaddr.raw(), mapping);
    }

    /// Removes the mapping whose base address covers `addr` (any page size)
    /// and returns it.
    pub fn remove_mapping(&mut self, addr: VirtAddr) -> Option<Mapping> {
        for size in [PageSize::Size1G, PageSize::Size2M, PageSize::Size4K] {
            let base = addr.page_base(size);
            if let Some(m) = self.mappings.get(&base.raw()) {
                if m.page_size == size {
                    return self.mappings.remove(&base.raw());
                }
            }
        }
        None
    }

    /// Replaces all 4 KiB mappings inside the 2 MiB region containing
    /// `addr` with a single 2 MiB mapping (khugepaged collapse). Returns the
    /// 4 KiB mappings that were removed.
    pub fn collapse_to_huge(&mut self, addr: VirtAddr, huge: Mapping) -> Vec<Mapping> {
        let region = addr.page_base(PageSize::Size2M);
        let mut removed = Vec::new();
        for i in 0..PageSize::Size2M.base_pages() {
            let base = region.add(i * PageSize::Size4K.bytes());
            if let Some(m) = self.mappings.remove(&base.raw()) {
                removed.push(m);
            }
        }
        self.insert_mapping(huge);
        removed
    }

    /// Number of 4 KiB pages currently mapped inside the 2 MiB region
    /// containing `addr` (used by khugepaged and reservation-based THP).
    pub fn mapped_4k_in_region(&self, addr: VirtAddr) -> u64 {
        let region = addr.page_base(PageSize::Size2M);
        self.mappings
            .range(region.raw()..region.raw() + PageSize::Size2M.bytes())
            .filter(|(_, m)| m.page_size == PageSize::Size4K)
            .count() as u64
    }

    /// `true` if any mapping (of any size) exists inside the naturally
    /// aligned region of `size` containing `addr`. Used to decide whether a
    /// fault needs fresh page-table frames and whether a THP allocation is
    /// still possible for the region.
    pub fn region_has_mappings(&self, addr: VirtAddr, size: PageSize) -> bool {
        let base = addr.page_base(size);
        if self
            .mappings
            .range(base.raw()..base.raw() + size.bytes())
            .next()
            .is_some()
        {
            return true;
        }
        // A larger mapping starting before the region could also cover it.
        self.lookup_mapping(base).is_some()
    }

    /// All established mappings in address order.
    pub fn mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.values()
    }

    /// Number of established mappings (of any size).
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Resident set size in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.mappings.values().map(|m| m.page_size.bytes()).sum()
    }

    /// Marks the page at `addr` (base of a 4 KiB page) as swapped out to
    /// `slot`, removing its mapping.
    pub fn swap_out(&mut self, addr: VirtAddr, slot: u64) -> Option<Mapping> {
        let base = addr.page_base(PageSize::Size4K);
        let m = self.remove_mapping(base);
        if m.is_some() {
            self.swapped.insert(base.raw(), slot);
        }
        m
    }

    /// Returns the swap slot holding `addr`, if the page was swapped out,
    /// and clears the swap record (the caller is about to swap it back in).
    pub fn take_swap_slot(&mut self, addr: VirtAddr) -> Option<u64> {
        self.swapped.remove(&addr.page_base(PageSize::Size4K).raw())
    }

    /// `true` if the page containing `addr` is currently swapped out.
    pub fn is_swapped(&self, addr: VirtAddr) -> bool {
        self.swapped
            .contains_key(&addr.page_base(PageSize::Size4K).raw())
    }

    /// Number of pages currently swapped out (the process's share of the
    /// machine's swap traffic under memory pressure).
    pub fn swapped_page_count(&self) -> usize {
        self.swapped.len()
    }

    /// `true` if the process has any resident 4 KiB mapping (a reclaim
    /// candidate without demotion).
    pub fn has_base_mappings(&self) -> bool {
        self.mappings
            .values()
            .any(|m| m.page_size == PageSize::Size4K)
    }

    /// Chooses up to `n` victim pages for reclaim, oldest-mapped first
    /// (approximating an LRU over insertion order of 4 KiB mappings).
    pub fn reclaim_candidates(&self, n: usize) -> Vec<Mapping> {
        self.mappings
            .values()
            .filter(|m| m.page_size == PageSize::Size4K)
            .take(n)
            .copied()
            .collect()
    }

    /// `true` if the kernel terminated this process.
    pub fn is_exited(&self) -> bool {
        self.exited.is_some()
    }

    /// Why the kernel terminated this process, when it did.
    pub fn exit_reason(&self) -> Option<ExitReason> {
        self.exited
    }

    /// Tears the address space down (the mm half of `do_exit`): marks the
    /// process exited and drains its VMAs, resident mappings and swap
    /// records. Fault counters are kept so the run report can still
    /// attribute the work the process did before dying. The caller owns the
    /// returned frames and swap slots and must release them.
    pub fn kill(&mut self, reason: ExitReason) -> KilledAddressSpace {
        self.exited = Some(reason);
        let mappings = std::mem::take(&mut self.mappings)
            .into_values()
            .map(|m| {
                let hugetlb = self.vmas.find(m.vaddr).is_some_and(|v| v.hugetlb);
                (m, hugetlb)
            })
            .collect();
        let swap_slots = std::mem::take(&mut self.swapped).into_values().collect();
        self.vmas = VmaTree::new();
        KilledAddressSpace {
            mappings,
            swap_slots,
        }
    }

    /// Splits the huge mapping covering `addr` one level down over the
    /// same physical frames (`split_huge_page`, the first half of huge-page
    /// demotion — reclaim then swaps individual pieces out): a 2 MiB
    /// mapping becomes 512 4 KiB mappings, a 1 GiB mapping becomes 512
    /// 2 MiB mappings. Returns the removed huge mapping and the inserted
    /// pieces, or `None` when only a 4 KiB mapping (or nothing) covers
    /// `addr`.
    pub fn demote_mapping(&mut self, addr: VirtAddr) -> Option<(Mapping, Vec<Mapping>)> {
        let huge = self.lookup_mapping(addr)?;
        let piece_size = match huge.page_size {
            PageSize::Size4K => return None,
            PageSize::Size2M => PageSize::Size4K,
            PageSize::Size1G => PageSize::Size2M,
        };
        self.mappings.remove(&huge.vaddr.raw());
        let pieces_len = huge.page_size.bytes() / piece_size.bytes();
        let mut pieces = Vec::with_capacity(pieces_len as usize);
        for i in 0..pieces_len {
            let piece = Mapping {
                vaddr: huge.vaddr.add(i * piece_size.bytes()),
                paddr: huge.paddr.add(i * piece_size.bytes()),
                page_size: piece_size,
            };
            self.mappings.insert(piece.vaddr.raw(), piece);
            pieces.push(piece);
        }
        Some((huge, pieces))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::PhysAddr;

    fn map4k(va: u64, pa: u64) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va),
            paddr: PhysAddr::new(pa),
            page_size: PageSize::Size4K,
        }
    }

    fn map2m(va: u64, pa: u64) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va),
            paddr: PhysAddr::new(pa),
            page_size: PageSize::Size2M,
        }
    }

    #[test]
    fn lookup_respects_page_size() {
        let mut p = Process::new();
        p.insert_mapping(map4k(0x1000, 0x8000));
        p.insert_mapping(map2m(0x20_0000, 0x40_0000));
        assert_eq!(
            p.lookup_mapping(VirtAddr::new(0x1000)).unwrap().paddr.raw(),
            0x8000
        );
        assert!(p.lookup_mapping(VirtAddr::new(0x1fff)).is_some());
        assert!(p.lookup_mapping(VirtAddr::new(0x2000)).is_none());
        // Any address inside the 2 MiB page resolves to the huge mapping.
        let inside = VirtAddr::new(0x20_0000 + 0x12_345);
        assert_eq!(
            p.lookup_mapping(inside).unwrap().page_size,
            PageSize::Size2M
        );
    }

    #[test]
    fn remove_mapping_clears_lookup() {
        let mut p = Process::new();
        p.insert_mapping(map4k(0x1000, 0x8000));
        assert!(p.remove_mapping(VirtAddr::new(0x1800)).is_some());
        assert!(!p.is_mapped(VirtAddr::new(0x1000)));
    }

    #[test]
    fn collapse_replaces_4k_with_2m() {
        let mut p = Process::new();
        for i in 0..512u64 {
            p.insert_mapping(map4k(0x20_0000 + i * 4096, 0x100_0000 + i * 4096));
        }
        assert_eq!(p.mapped_4k_in_region(VirtAddr::new(0x20_0000)), 512);
        let removed = p.collapse_to_huge(VirtAddr::new(0x20_0000), map2m(0x20_0000, 0x200_0000));
        assert_eq!(removed.len(), 512);
        assert_eq!(p.mapping_count(), 1);
        assert_eq!(
            p.lookup_mapping(VirtAddr::new(0x20_0000 + 0x1234))
                .unwrap()
                .page_size,
            PageSize::Size2M
        );
    }

    #[test]
    fn resident_bytes_accounts_for_page_sizes() {
        let mut p = Process::new();
        p.insert_mapping(map4k(0x1000, 0x8000));
        p.insert_mapping(map2m(0x20_0000, 0x40_0000));
        assert_eq!(p.resident_bytes(), 4096 + 2 * 1024 * 1024);
    }

    #[test]
    fn swap_out_and_back_in() {
        let mut p = Process::new();
        p.insert_mapping(map4k(0x1000, 0x8000));
        let m = p.swap_out(VirtAddr::new(0x1000), 42).unwrap();
        assert_eq!(m.paddr.raw(), 0x8000);
        assert!(p.is_swapped(VirtAddr::new(0x1000)));
        assert!(!p.is_mapped(VirtAddr::new(0x1000)));
        assert_eq!(p.take_swap_slot(VirtAddr::new(0x1000)), Some(42));
        assert!(!p.is_swapped(VirtAddr::new(0x1000)));
    }

    #[test]
    fn reclaim_candidates_are_4k_only() {
        let mut p = Process::new();
        p.insert_mapping(map2m(0x20_0000, 0x40_0000));
        for i in 0..8u64 {
            p.insert_mapping(map4k(0x1000_0000 + i * 4096, 0x9000 + i * 4096));
        }
        let victims = p.reclaim_candidates(4);
        assert_eq!(victims.len(), 4);
        assert!(victims.iter().all(|m| m.page_size == PageSize::Size4K));
    }

    #[test]
    fn demote_splits_a_huge_mapping_into_pieces_on_the_same_frames() {
        let mut p = Process::new();
        p.insert_mapping(map2m(0x20_0000, 0x40_0000));
        let (huge, pieces) = p.demote_mapping(VirtAddr::new(0x20_1234)).unwrap();
        assert_eq!(huge.page_size, PageSize::Size2M);
        assert_eq!(pieces.len(), 512);
        // Every piece translates exactly as the huge mapping did.
        for (i, piece) in pieces.iter().enumerate() {
            assert_eq!(piece.page_size, PageSize::Size4K);
            assert_eq!(piece.vaddr.raw(), 0x20_0000 + i as u64 * 4096);
            assert_eq!(piece.paddr.raw(), 0x40_0000 + i as u64 * 4096);
        }
        assert_eq!(p.mapping_count(), 512);
        assert!(p.has_base_mappings());
        // Demoting a base page is a no-op.
        assert!(p.demote_mapping(VirtAddr::new(0x20_0000)).is_none());
    }

    #[test]
    fn mapped_4k_in_region_only_counts_that_region() {
        let mut p = Process::new();
        p.insert_mapping(map4k(0x20_0000, 0x1000));
        p.insert_mapping(map4k(0x40_0000, 0x2000));
        assert_eq!(p.mapped_4k_in_region(VirtAddr::new(0x20_0000)), 1);
        assert_eq!(p.mapped_4k_in_region(VirtAddr::new(0x40_0000)), 1);
    }
}
