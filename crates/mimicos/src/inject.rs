//! Deterministic fault injection: scripted and rate-based failures for the
//! kernel's error paths.
//!
//! The paths a real kernel fights hardest on — allocation shortfalls under
//! pressure, swap-device hiccups, slow shootdown IPIs — only fire in the
//! simulator under extreme, hard-to-reproduce workloads. This module makes
//! them exercisable on demand: a [`FaultInjectionConfig`] on
//! [`OsConfig`](crate::OsConfig) arms a seeded [`FaultInjector`] whose
//! decisions are drawn from a private [`DetRng`], so a given configuration
//! produces bit-identical failure schedules at any test parallelism. With
//! the default (all-zero) configuration the injector never draws from its
//! RNG and the kernel behaves exactly as if the module did not exist.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vm_types::{DetRng, VmError, VmResult};

/// Configuration of the deterministic fault-injection framework. The
/// default is fully disabled: every rate zero and no scripted failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjectionConfig {
    /// Seed of the injector's private RNG (independent of the kernel's own
    /// RNG, so arming injection does not perturb unrelated jitter draws).
    pub seed: u64,
    /// Probability in `[0, 1]` that a base-frame allocation artificially
    /// fails before the buddy allocator is consulted, forcing the fault
    /// into the direct-reclaim retry path.
    pub alloc_shortfall_rate: f64,
    /// Zero-based indexes of base-frame allocation calls that fail
    /// unconditionally (a scripted shortfall schedule; applied on top of
    /// the rate).
    pub scripted_alloc_shortfalls: Vec<u64>,
    /// Probability in `[0, 1]` that a swap-device transfer hits a transient
    /// I/O error: the kernel retries the transfer, paying the device
    /// latency twice plus an error-handling cost.
    pub swap_io_error_rate: f64,
    /// Probability in `[0, 1]` that a swap-device transfer takes a latency
    /// spike of [`FaultInjectionConfig::swap_latency_spike_ns`].
    pub swap_latency_spike_rate: f64,
    /// Extra device nanoseconds charged on a latency spike.
    pub swap_latency_spike_ns: f64,
    /// Probability in `[0, 1]` that a shootdown IPI is delivered late to a
    /// remote core, stalling it for an extra
    /// [`FaultInjectionConfig::ipi_delay_cycles`].
    pub ipi_delay_rate: f64,
    /// Extra stall cycles charged to a remote core on a delayed IPI.
    pub ipi_delay_cycles: u64,
}

impl Default for FaultInjectionConfig {
    fn default() -> Self {
        FaultInjectionConfig {
            seed: 0xC4405,
            alloc_shortfall_rate: 0.0,
            scripted_alloc_shortfalls: Vec::new(),
            swap_io_error_rate: 0.0,
            swap_latency_spike_rate: 0.0,
            swap_latency_spike_ns: 0.0,
            ipi_delay_rate: 0.0,
            ipi_delay_cycles: 0,
        }
    }
}

impl FaultInjectionConfig {
    /// `true` when any failure source is armed.
    pub fn is_active(&self) -> bool {
        self.alloc_shortfall_rate > 0.0
            || !self.scripted_alloc_shortfalls.is_empty()
            || self.swap_io_error_rate > 0.0
            || self.swap_latency_spike_rate > 0.0
            || self.ipi_delay_rate > 0.0
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidConfig`] for rates outside `[0, 1]` (or
    /// NaN), negative or non-finite magnitudes, and armed sources with a
    /// zero magnitude (a "spike" of zero nanoseconds or a "delay" of zero
    /// cycles injects nothing and indicates a misconfiguration).
    pub fn validate(&self) -> VmResult<()> {
        for (name, rate) in [
            ("alloc_shortfall_rate", self.alloc_shortfall_rate),
            ("swap_io_error_rate", self.swap_io_error_rate),
            ("swap_latency_spike_rate", self.swap_latency_spike_rate),
            ("ipi_delay_rate", self.ipi_delay_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(VmError::InvalidConfig {
                    reason: format!("fault injection {name} {rate} outside [0,1]"),
                });
            }
        }
        if !self.swap_latency_spike_ns.is_finite() || self.swap_latency_spike_ns < 0.0 {
            return Err(VmError::InvalidConfig {
                reason: format!(
                    "fault injection swap_latency_spike_ns {} must be finite and non-negative",
                    self.swap_latency_spike_ns
                ),
            });
        }
        if self.swap_latency_spike_rate > 0.0 && self.swap_latency_spike_ns == 0.0 {
            return Err(VmError::InvalidConfig {
                reason: "fault injection arms swap latency spikes with a zero-ns spike".to_string(),
            });
        }
        if self.ipi_delay_rate > 0.0 && self.ipi_delay_cycles == 0 {
            return Err(VmError::InvalidConfig {
                reason: "fault injection arms IPI delays with a zero-cycle delay".to_string(),
            });
        }
        Ok(())
    }
}

/// The runtime half: owns the injection RNG and the scripted-shortfall
/// schedule. All decision methods return the neutral answer without
/// touching the RNG when injection is disabled, keeping the disabled
/// configuration bit-identical to a build without the framework.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultInjectionConfig,
    active: bool,
    rng: DetRng,
    scripted_shortfalls: BTreeSet<u64>,
    allocs_seen: u64,
}

impl FaultInjector {
    /// Arms an injector for the given (already validated) configuration.
    pub fn new(config: FaultInjectionConfig) -> Self {
        FaultInjector {
            active: config.is_active(),
            rng: DetRng::new(config.seed),
            scripted_shortfalls: config.scripted_alloc_shortfalls.iter().copied().collect(),
            allocs_seen: 0,
            config,
        }
    }

    /// `true` when any failure source is armed.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Decides whether the next base-frame allocation call suffers an
    /// injected shortfall. Advances the allocation index either way (when
    /// active), so scripted schedules refer to stable call indexes.
    pub fn alloc_shortfall(&mut self) -> bool {
        if !self.active {
            return false;
        }
        let index = self.allocs_seen;
        self.allocs_seen += 1;
        if self.scripted_shortfalls.contains(&index) {
            return true;
        }
        self.config.alloc_shortfall_rate > 0.0
            && self.rng.gen_bool(self.config.alloc_shortfall_rate)
    }

    /// Decides whether a swap-device transfer hits a transient I/O error.
    pub fn swap_io_error(&mut self) -> bool {
        self.active
            && self.config.swap_io_error_rate > 0.0
            && self.rng.gen_bool(self.config.swap_io_error_rate)
    }

    /// Extra device nanoseconds for a swap transfer's latency spike, if one
    /// fires.
    pub fn swap_latency_spike_ns(&mut self) -> Option<f64> {
        (self.active
            && self.config.swap_latency_spike_rate > 0.0
            && self.rng.gen_bool(self.config.swap_latency_spike_rate))
        .then_some(self.config.swap_latency_spike_ns)
    }

    /// Extra stall cycles for one remote core's shootdown IPI delivery, if
    /// a delay fires.
    pub fn ipi_delay_cycles(&mut self) -> u64 {
        if self.active
            && self.config.ipi_delay_rate > 0.0
            && self.rng.gen_bool(self.config.ipi_delay_rate)
        {
            self.config.ipi_delay_cycles
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inactive_and_valid() {
        let cfg = FaultInjectionConfig::default();
        assert!(!cfg.is_active());
        cfg.validate().unwrap();
        let mut inj = FaultInjector::new(cfg);
        for _ in 0..64 {
            assert!(!inj.alloc_shortfall());
            assert!(!inj.swap_io_error());
            assert!(inj.swap_latency_spike_ns().is_none());
            assert_eq!(inj.ipi_delay_cycles(), 0);
        }
    }

    #[test]
    fn scripted_shortfalls_fire_at_exact_indexes() {
        let cfg = FaultInjectionConfig {
            scripted_alloc_shortfalls: vec![0, 3],
            ..FaultInjectionConfig::default()
        };
        let mut inj = FaultInjector::new(cfg);
        let fired: Vec<bool> = (0..5).map(|_| inj.alloc_shortfall()).collect();
        assert_eq!(fired, vec![true, false, false, true, false]);
    }

    #[test]
    fn rate_based_decisions_are_reproducible() {
        let cfg = FaultInjectionConfig {
            alloc_shortfall_rate: 0.3,
            swap_io_error_rate: 0.2,
            ..FaultInjectionConfig::default()
        };
        let mut a = FaultInjector::new(cfg.clone());
        let mut b = FaultInjector::new(cfg);
        for _ in 0..256 {
            assert_eq!(a.alloc_shortfall(), b.alloc_shortfall());
            assert_eq!(a.swap_io_error(), b.swap_io_error());
        }
    }

    #[test]
    fn nonsensical_configs_are_rejected() {
        let bad_rate = FaultInjectionConfig {
            alloc_shortfall_rate: 1.5,
            ..FaultInjectionConfig::default()
        };
        assert!(bad_rate.validate().is_err());
        let nan_rate = FaultInjectionConfig {
            swap_io_error_rate: f64::NAN,
            ..FaultInjectionConfig::default()
        };
        assert!(nan_rate.validate().is_err());
        let negative_spike = FaultInjectionConfig {
            swap_latency_spike_ns: -1.0,
            ..FaultInjectionConfig::default()
        };
        assert!(negative_spike.validate().is_err());
        let zero_spike = FaultInjectionConfig {
            swap_latency_spike_rate: 0.5,
            swap_latency_spike_ns: 0.0,
            ..FaultInjectionConfig::default()
        };
        assert!(zero_spike.validate().is_err());
        let zero_delay = FaultInjectionConfig {
            ipi_delay_rate: 0.5,
            ipi_delay_cycles: 0,
            ..FaultInjectionConfig::default()
        };
        assert!(zero_delay.validate().is_err());
    }
}
