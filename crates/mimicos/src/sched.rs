//! The MimicOS process scheduler: a round-robin, fixed-quantum scheduler
//! imitating the behaviour (not the implementation) of Linux CFS under a
//! steady multi-programmed load.
//!
//! The scheduler decides *which* process's trace the Virtuoso framework
//! feeds to the core model; the framework reports back how many
//! instructions actually ran and asks for a preemption decision when the
//! quantum expires. Context switches are surfaced as [`ContextSwitch`]
//! events so the framework can apply the architectural consequences (TLB
//! flush policy, switch-code instruction stream).

use crate::kernel::ProcessId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use vm_types::Counter;

/// A context-switch event: the outgoing and incoming process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextSwitch {
    /// The process being descheduled.
    pub from: ProcessId,
    /// The process taking the core.
    pub to: ProcessId,
}

/// Scheduler statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// Context switches performed (a quantum expiry with only one runnable
    /// process does not switch).
    pub context_switches: Counter,
    /// Quanta that ran to expiry.
    pub quanta_expired: Counter,
    /// Instructions accounted to each process, keyed by raw pid.
    pub instructions_by_pid: BTreeMap<usize, u64>,
}

impl SchedStats {
    /// Total instructions accounted across all processes.
    pub fn total_instructions(&self) -> u64 {
        self.instructions_by_pid.values().sum()
    }

    /// Instructions accounted to one process.
    pub fn instructions_of(&self, pid: ProcessId) -> u64 {
        self.instructions_by_pid.get(&pid.0).copied().unwrap_or(0)
    }
}

/// The round-robin quantum scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scheduler {
    quantum: u64,
    runqueue: VecDeque<ProcessId>,
    current: Option<ProcessId>,
    ran_in_quantum: u64,
    stats: SchedStats,
}

impl Scheduler {
    /// Builds a scheduler with the given quantum (in instructions). A
    /// quantum of zero disables preemption.
    pub fn new(quantum: u64) -> Self {
        Scheduler {
            quantum: if quantum == 0 { u64::MAX } else { quantum },
            runqueue: VecDeque::new(),
            current: None,
            ran_in_quantum: 0,
            stats: SchedStats::default(),
        }
    }

    /// The quantum in instructions.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Statistics.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Admits a process to the tail of the run queue.
    pub fn admit(&mut self, pid: ProcessId) {
        self.runqueue.push_back(pid);
    }

    /// The process currently holding the core, if any.
    pub fn current(&self) -> Option<ProcessId> {
        self.current
    }

    /// Number of runnable processes (running + queued).
    pub fn runnable(&self) -> usize {
        self.runqueue.len() + usize::from(self.current.is_some())
    }

    /// Ensures some process holds the core, dispatching the head of the run
    /// queue if none does. Returns the running process, or `None` when the
    /// run queue is empty.
    pub fn schedule(&mut self) -> Option<ProcessId> {
        if self.current.is_none() {
            self.current = self.runqueue.pop_front();
            self.ran_in_quantum = 0;
        }
        self.current
    }

    /// Accounts `instructions` retired by the current process. Returns
    /// `true` when the quantum has expired and [`Scheduler::preempt`]
    /// should be consulted.
    ///
    /// # Panics
    ///
    /// Panics if no process is current.
    pub fn account(&mut self, instructions: u64) -> bool {
        let pid = self.current.expect("account() without a running process");
        *self.stats.instructions_by_pid.entry(pid.0).or_insert(0) += instructions;
        self.ran_in_quantum += instructions;
        self.ran_in_quantum >= self.quantum
    }

    /// Ends the current quantum. If another process is queued, rotates to
    /// it and returns the [`ContextSwitch`]; with a single runnable process
    /// the quantum simply restarts.
    pub fn preempt(&mut self) -> Option<ContextSwitch> {
        let from = self.current?;
        self.stats.quanta_expired.inc();
        self.ran_in_quantum = 0;
        let to = self.runqueue.pop_front()?;
        self.runqueue.push_back(from);
        self.current = Some(to);
        self.stats.context_switches.inc();
        Some(ContextSwitch { from, to })
    }

    /// Removes a process (its trace ended or it was killed). If it was
    /// running, the core becomes idle until the next
    /// [`Scheduler::schedule`] call dispatches a successor.
    pub fn exit(&mut self, pid: ProcessId) {
        if self.current == Some(pid) {
            self.current = None;
            self.ran_in_quantum = 0;
        } else {
            self.runqueue.retain(|&p| p != pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: usize) -> ProcessId {
        ProcessId(n)
    }

    #[test]
    fn round_robin_rotates_through_the_runqueue() {
        let mut s = Scheduler::new(100);
        s.admit(pid(0));
        s.admit(pid(1));
        s.admit(pid(2));
        assert_eq!(s.schedule(), Some(pid(0)));
        assert!(s.account(100));
        assert_eq!(
            s.preempt(),
            Some(ContextSwitch {
                from: pid(0),
                to: pid(1)
            })
        );
        assert!(s.account(150));
        assert_eq!(
            s.preempt(),
            Some(ContextSwitch {
                from: pid(1),
                to: pid(2)
            })
        );
        assert!(s.account(100));
        // Back to the head.
        assert_eq!(s.preempt().unwrap().to, pid(0));
        assert_eq!(s.stats().context_switches.get(), 3);
    }

    #[test]
    fn a_lone_process_restarts_its_quantum_without_switching() {
        let mut s = Scheduler::new(50);
        s.admit(pid(4));
        assert_eq!(s.schedule(), Some(pid(4)));
        assert!(s.account(50));
        assert_eq!(s.preempt(), None);
        assert_eq!(s.current(), Some(pid(4)));
        assert_eq!(s.stats().context_switches.get(), 0);
        assert_eq!(s.stats().quanta_expired.get(), 1);
    }

    #[test]
    fn accounting_sums_to_the_total_run() {
        let mut s = Scheduler::new(10);
        s.admit(pid(0));
        s.admit(pid(1));
        s.schedule();
        let mut total = 0u64;
        for n in [10u64, 7, 10, 3, 10] {
            total += n;
            if s.account(n) {
                s.preempt();
            }
        }
        assert_eq!(s.stats().total_instructions(), total);
        assert!(s.stats().instructions_of(pid(0)) > 0);
        assert!(s.stats().instructions_of(pid(1)) > 0);
    }

    #[test]
    fn exit_frees_the_core_and_the_queue() {
        let mut s = Scheduler::new(100);
        s.admit(pid(0));
        s.admit(pid(1));
        s.schedule();
        s.exit(pid(0));
        assert_eq!(s.current(), None);
        assert_eq!(s.schedule(), Some(pid(1)));
        s.exit(pid(1));
        assert_eq!(s.schedule(), None);
        assert_eq!(s.runnable(), 0);
    }

    #[test]
    fn zero_quantum_never_preempts() {
        let mut s = Scheduler::new(0);
        s.admit(pid(0));
        s.admit(pid(1));
        s.schedule();
        assert!(!s.account(u64::MAX / 2));
    }
}
