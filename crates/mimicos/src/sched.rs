//! The MimicOS process scheduler: a round-robin, fixed-quantum scheduler
//! imitating the behaviour (not the implementation) of Linux CFS under a
//! steady multi-programmed load.
//!
//! The scheduler decides *which* process's trace the Virtuoso framework
//! feeds to the core model; the framework reports back how many
//! instructions actually ran and asks for a preemption decision when the
//! quantum expires. Context switches are surfaced as [`ContextSwitch`]
//! events so the framework can apply the architectural consequences (TLB
//! flush policy, switch-code instruction stream).

use crate::kernel::ProcessId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use vm_types::Counter;

/// A context-switch event: the outgoing and incoming process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextSwitch {
    /// The process being descheduled.
    pub from: ProcessId,
    /// The process taking the core.
    pub to: ProcessId,
}

/// Scheduler statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// Context switches performed (a quantum expiry with only one runnable
    /// process does not switch).
    pub context_switches: Counter,
    /// Quanta that ran to expiry.
    pub quanta_expired: Counter,
    /// Instructions accounted to each process, keyed by raw pid.
    pub instructions_by_pid: BTreeMap<usize, u64>,
}

impl SchedStats {
    /// Total instructions accounted across all processes.
    pub fn total_instructions(&self) -> u64 {
        self.instructions_by_pid.values().sum()
    }

    /// Instructions accounted to one process.
    pub fn instructions_of(&self, pid: ProcessId) -> u64 {
        self.instructions_by_pid.get(&pid.0).copied().unwrap_or(0)
    }
}

/// Per-core scheduler state: one run queue and one running process.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CoreSched {
    runqueue: VecDeque<ProcessId>,
    current: Option<ProcessId>,
    ran_in_quantum: u64,
}

impl CoreSched {
    fn new() -> Self {
        CoreSched {
            runqueue: VecDeque::new(),
            current: None,
            ran_in_quantum: 0,
        }
    }
}

/// The round-robin quantum scheduler.
///
/// With more than one core, each core owns its own run queue and
/// processes are pinned to cores by `pid % num_cores` (no migration, so
/// a process's translation state lives on exactly one core). The
/// single-core entry points (`schedule`, `account`, `preempt`,
/// `current`) delegate to core 0 and behave exactly as before.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scheduler {
    quantum: u64,
    cores: Vec<CoreSched>,
    stats: SchedStats,
}

impl Scheduler {
    /// Builds a single-core scheduler with the given quantum (in
    /// instructions). A quantum of zero disables preemption.
    pub fn new(quantum: u64) -> Self {
        Scheduler::new_with_cores(quantum, 1)
    }

    /// Builds a scheduler managing `num_cores` run queues.
    pub fn new_with_cores(quantum: u64, num_cores: usize) -> Self {
        Scheduler {
            quantum: if quantum == 0 { u64::MAX } else { quantum },
            cores: (0..num_cores.max(1)).map(|_| CoreSched::new()).collect(),
            stats: SchedStats::default(),
        }
    }

    /// The quantum in instructions.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Instructions left in the quantum of the process running on `core`
    /// (the full quantum when the core is idle or freshly dispatched).
    pub fn remaining_quantum_on(&self, core: usize) -> u64 {
        self.quantum.saturating_sub(self.cores[core].ran_in_quantum)
    }

    /// Number of cores this scheduler places processes onto.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The core a process is pinned to.
    pub fn core_of(&self, pid: ProcessId) -> usize {
        pid.0 % self.cores.len()
    }

    /// Statistics.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Admits a process to the tail of its core's run queue.
    pub fn admit(&mut self, pid: ProcessId) {
        let core = self.core_of(pid);
        self.cores[core].runqueue.push_back(pid);
    }

    /// The process currently holding core 0, if any.
    pub fn current(&self) -> Option<ProcessId> {
        self.current_on(0)
    }

    /// The process currently holding `core`, if any.
    pub fn current_on(&self, core: usize) -> Option<ProcessId> {
        self.cores[core].current
    }

    /// Number of runnable processes (running + queued) across all cores.
    pub fn runnable(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.runqueue.len() + usize::from(c.current.is_some()))
            .sum()
    }

    /// Ensures some process holds core 0 (see [`Scheduler::schedule_on`]).
    pub fn schedule(&mut self) -> Option<ProcessId> {
        self.schedule_on(0)
    }

    /// Ensures some process holds `core`, dispatching the head of its run
    /// queue if none does. Returns the running process, or `None` when the
    /// run queue is empty.
    pub fn schedule_on(&mut self, core: usize) -> Option<ProcessId> {
        let c = &mut self.cores[core];
        if c.current.is_none() {
            c.current = c.runqueue.pop_front();
            c.ran_in_quantum = 0;
        }
        c.current
    }

    /// Accounts `instructions` retired on core 0 (see
    /// [`Scheduler::account_on`]).
    ///
    /// # Panics
    ///
    /// Panics if no process is current on core 0.
    pub fn account(&mut self, instructions: u64) -> bool {
        self.account_on(0, instructions)
    }

    /// Accounts `instructions` retired by the process current on `core`.
    /// Returns `true` when the quantum has expired and
    /// [`Scheduler::preempt_on`] should be consulted.
    ///
    /// Accounting is batch-granular by design: the sharded run loop calls
    /// this once per core tick — or once per multi-instruction epoch
    /// slice under parallel host-thread stepping — never per instruction.
    /// Callers size their batches to the quantum remainder, so expiry
    /// still lands on exactly the instruction a per-instruction schedule
    /// would pick.
    ///
    /// # Panics
    ///
    /// Panics if no process is current on `core`.
    pub fn account_on(&mut self, core: usize, instructions: u64) -> bool {
        let c = &mut self.cores[core];
        let pid = c.current.expect("account() without a running process");
        *self.stats.instructions_by_pid.entry(pid.0).or_insert(0) += instructions;
        c.ran_in_quantum += instructions;
        c.ran_in_quantum >= self.quantum
    }

    /// Ends the current quantum on core 0 (see
    /// [`Scheduler::preempt_on`]).
    pub fn preempt(&mut self) -> Option<ContextSwitch> {
        self.preempt_on(0)
    }

    /// Ends the current quantum on `core`. If another process is queued
    /// there, rotates to it and returns the [`ContextSwitch`]; with a
    /// single runnable process the quantum simply restarts.
    pub fn preempt_on(&mut self, core: usize) -> Option<ContextSwitch> {
        let c = &mut self.cores[core];
        let from = c.current?;
        self.stats.quanta_expired.inc();
        c.ran_in_quantum = 0;
        let to = c.runqueue.pop_front()?;
        c.runqueue.push_back(from);
        c.current = Some(to);
        self.stats.context_switches.inc();
        Some(ContextSwitch { from, to })
    }

    /// Every process the scheduler currently tracks, as `(core, pid)`
    /// pairs: the running process of each core followed by its run queue in
    /// dispatch order. Used by the coherence fence to audit queue sanity
    /// (no duplicates, every pid alive, every pid on its home core).
    pub fn queued_snapshot(&self) -> Vec<(usize, ProcessId)> {
        let mut out = Vec::new();
        for (core, c) in self.cores.iter().enumerate() {
            if let Some(pid) = c.current {
                out.push((core, pid));
            }
            out.extend(c.runqueue.iter().map(|&pid| (core, pid)));
        }
        out
    }

    /// Removes a process (its trace ended or it was killed). If it was
    /// running, its core becomes idle until the next
    /// [`Scheduler::schedule_on`] call dispatches a successor.
    pub fn exit(&mut self, pid: ProcessId) {
        let core = self.core_of(pid);
        let c = &mut self.cores[core];
        if c.current == Some(pid) {
            c.current = None;
            c.ran_in_quantum = 0;
        } else {
            c.runqueue.retain(|&p| p != pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: usize) -> ProcessId {
        ProcessId(n)
    }

    #[test]
    fn round_robin_rotates_through_the_runqueue() {
        let mut s = Scheduler::new(100);
        s.admit(pid(0));
        s.admit(pid(1));
        s.admit(pid(2));
        assert_eq!(s.schedule(), Some(pid(0)));
        assert!(s.account(100));
        assert_eq!(
            s.preempt(),
            Some(ContextSwitch {
                from: pid(0),
                to: pid(1)
            })
        );
        assert!(s.account(150));
        assert_eq!(
            s.preempt(),
            Some(ContextSwitch {
                from: pid(1),
                to: pid(2)
            })
        );
        assert!(s.account(100));
        // Back to the head.
        assert_eq!(s.preempt().unwrap().to, pid(0));
        assert_eq!(s.stats().context_switches.get(), 3);
    }

    #[test]
    fn a_lone_process_restarts_its_quantum_without_switching() {
        let mut s = Scheduler::new(50);
        s.admit(pid(4));
        assert_eq!(s.schedule(), Some(pid(4)));
        assert!(s.account(50));
        assert_eq!(s.preempt(), None);
        assert_eq!(s.current(), Some(pid(4)));
        assert_eq!(s.stats().context_switches.get(), 0);
        assert_eq!(s.stats().quanta_expired.get(), 1);
    }

    #[test]
    fn accounting_sums_to_the_total_run() {
        let mut s = Scheduler::new(10);
        s.admit(pid(0));
        s.admit(pid(1));
        s.schedule();
        let mut total = 0u64;
        for n in [10u64, 7, 10, 3, 10] {
            total += n;
            if s.account(n) {
                s.preempt();
            }
        }
        assert_eq!(s.stats().total_instructions(), total);
        assert!(s.stats().instructions_of(pid(0)) > 0);
        assert!(s.stats().instructions_of(pid(1)) > 0);
    }

    #[test]
    fn exit_frees_the_core_and_the_queue() {
        let mut s = Scheduler::new(100);
        s.admit(pid(0));
        s.admit(pid(1));
        s.schedule();
        s.exit(pid(0));
        assert_eq!(s.current(), None);
        assert_eq!(s.schedule(), Some(pid(1)));
        s.exit(pid(1));
        assert_eq!(s.schedule(), None);
        assert_eq!(s.runnable(), 0);
    }

    #[test]
    fn zero_quantum_never_preempts() {
        let mut s = Scheduler::new(0);
        s.admit(pid(0));
        s.admit(pid(1));
        s.schedule();
        assert!(!s.account(u64::MAX / 2));
    }

    #[test]
    fn processes_are_pinned_by_pid_modulo_cores() {
        let mut s = Scheduler::new_with_cores(100, 2);
        for n in 0..4 {
            s.admit(pid(n));
        }
        assert_eq!(s.schedule_on(0), Some(pid(0)));
        assert_eq!(s.schedule_on(1), Some(pid(1)));
        assert_eq!(s.runnable(), 4);
        // Quantum expiry rotates within the core's own queue only.
        assert!(s.account_on(0, 100));
        assert_eq!(
            s.preempt_on(0),
            Some(ContextSwitch {
                from: pid(0),
                to: pid(2)
            })
        );
        assert_eq!(s.current_on(1), Some(pid(1)));
        // Exit targets the owning core even when queued elsewhere.
        s.exit(pid(3));
        s.exit(pid(1));
        assert_eq!(s.schedule_on(1), None);
        assert_eq!(s.current_on(0), Some(pid(2)));
    }

    #[test]
    fn single_core_constructor_matches_legacy_behaviour() {
        let mut legacy = Scheduler::new(50);
        let mut multi = Scheduler::new_with_cores(50, 1);
        for s in [&mut legacy, &mut multi] {
            s.admit(pid(0));
            s.admit(pid(1));
            s.schedule();
            assert!(s.account(50));
            assert_eq!(s.preempt().unwrap().to, pid(1));
        }
        assert_eq!(legacy.stats(), multi.stats());
    }
}
