//! The top-level [`MimicOs`] kernel: configuration, process management, the
//! page-fault handler implementing the Fig. 6 flow, memory reclaim and the
//! statistics the paper's experiments read out.

use crate::alloc_policy::AllocationPolicy;
use crate::buddy::{order_for, BuddyAllocator, ORDER_1G, ORDER_2M};
use crate::fault::{FaultKind, InvalidationBatch, Mapping, PageFaultOutcome};
use crate::inject::{FaultInjectionConfig, FaultInjector};
use crate::kernel_stream::{KernelInstructionStream, KernelRoutine};
use crate::page_cache::PageCache;
use crate::process::{ExitReason, Process};
use crate::sched::{ContextSwitch, Scheduler};
use crate::slab::SlabAllocator;
use crate::swap::SwapManager;
use crate::thp::{
    HugetlbPool, KhugepagedDaemon, ReservationThp, ThpConfig, ThpMode, ZeroedPagePool,
};
use crate::utopia::UtopiaAllocator;
use crate::vma::{Vma, VmaKind};
use serde::{Deserialize, Serialize};
use ssd_sim::{SsdConfig, SsdModel};
use std::collections::BTreeMap;
use std::fmt;
use vm_types::{Counter, DetRng, LatencyStats, PageSize, PhysAddr, VirtAddr, VmError, VmResult};

/// Identifier of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// A contiguous virtual-to-physical range created by eager paging, consumed
/// by RMM's range TLB / range-table model in `mmu-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeMapping {
    /// Virtual start of the range.
    pub virt_start: VirtAddr,
    /// Physical start of the range.
    pub phys_start: PhysAddr,
    /// Length in bytes.
    pub bytes: u64,
}

impl RangeMapping {
    /// `true` if `vaddr` falls inside the range.
    pub fn covers(&self, vaddr: VirtAddr) -> bool {
        vaddr >= self.virt_start && vaddr.raw() < self.virt_start.raw() + self.bytes
    }

    /// Splits the range around the page `[vaddr, vaddr + page_bytes)`,
    /// returning the (possibly empty) left and right remainders. Used when
    /// reclaim swaps a page out of an eagerly allocated range: the range no
    /// longer translates the victim, but its flanks still do.
    pub fn split_around(
        &self,
        vaddr: VirtAddr,
        page_bytes: u64,
    ) -> (Option<RangeMapping>, Option<RangeMapping>) {
        debug_assert!(self.covers(vaddr));
        let left_bytes = vaddr.raw() - self.virt_start.raw();
        let right_start = vaddr.raw() + page_bytes;
        let range_end = self.virt_start.raw() + self.bytes;
        let left = (left_bytes > 0).then_some(RangeMapping {
            virt_start: self.virt_start,
            phys_start: self.phys_start,
            bytes: left_bytes,
        });
        let right = (right_start < range_end).then(|| RangeMapping {
            virt_start: VirtAddr::new(right_start),
            phys_start: self.phys_start.add(right_start - self.virt_start.raw()),
            bytes: range_end - right_start,
        });
        (left, right)
    }
}

/// Configuration of the MimicOS kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsConfig {
    /// Physical memory managed by the kernel, in bytes.
    pub memory_bytes: u64,
    /// Swap space, in bytes (the paper's baseline: 4 GB).
    pub swap_bytes: u64,
    /// Transparent-huge-page configuration.
    pub thp: ThpConfig,
    /// Physical memory allocation policy.
    pub policy: AllocationPolicy,
    /// Page-cache capacity in pages.
    pub page_cache_pages: usize,
    /// Pre-fragment physical memory so that this fraction of 2 MiB regions
    /// remains free (the paper's baseline: 0.8).
    pub fragmentation_target: Option<f64>,
    /// Memory-utilization fraction above which the kernel starts swapping
    /// (the paper's baseline: 0.9).
    pub swap_threshold: f64,
    /// Pages reclaimed (swapped out) per reclaim pass.
    pub reclaim_batch: usize,
    /// Storage device configuration for swap and page-cache misses.
    pub ssd: SsdConfig,
    /// Warm the page cache for file-backed mappings at `mmap` time,
    /// mirroring the paper's methodology of pre-populating the page cache so
    /// short-running workloads take minor rather than major faults.
    pub populate_page_cache: bool,
    /// Scheduler quantum in application instructions (0 disables
    /// preemption). Scaled down with the rest of the simulation: a few
    /// thousand instructions play the role of a millisecond timeslice.
    pub sched_quantum: u64,
    /// Kernel instructions charged for one context switch (scheduler
    /// bookkeeping, register save/restore, switch_mm).
    pub context_switch_cost: u32,
    /// Kernel instructions charged once per TLB-shootdown round: assembling
    /// the cpumask, sending the IPIs and waiting for every remote core to
    /// acknowledge (`flush_tlb_mm_range` / `smp_call_function_many`).
    /// Charged whenever a reclaim pass or a khugepaged collapse tears
    /// translations down.
    pub shootdown_ipi_cost: u32,
    /// Kernel instructions charged per page invalidated in a shootdown
    /// round (the per-`invlpg` work on the receiving cores plus flush-list
    /// bookkeeping on the sender).
    pub shootdown_per_page_cost: u32,
    /// Number of simulated cores. Processes are pinned to cores by
    /// `pid % num_cores`; each core owns its own TLB/PWC/engine frontend
    /// and reclaim broadcasts shootdown IPIs to the other cores. The
    /// default of 1 reproduces the single-core model exactly.
    pub num_cores: usize,
    /// Enables the out-of-memory killer: when a fault's reclaim+retry loop
    /// still cannot allocate, the kernel kills the process with the highest
    /// badness score (excluding the faulting process) and retries the
    /// fault. Disabled, the fault fails with [`VmError::OutOfMemory`] and
    /// the framework drops the access.
    pub oom_kill: bool,
    /// Deterministic fault injection (disabled by default; see
    /// [`FaultInjectionConfig`]).
    pub fault_injection: FaultInjectionConfig,
    /// Seed for the kernel's deterministic RNG.
    pub seed: u64,
}

impl OsConfig {
    /// The paper's baseline configuration (Table 4): 256 GB of DDR4 memory,
    /// 4 GB of swap, Linux-like THP with 4 KB + 2 MB pages, hugetlbfs
    /// available, 90 % swapping threshold, 80 % baseline fragmentation.
    pub fn paper_baseline() -> Self {
        OsConfig {
            memory_bytes: 256 * 1024 * 1024 * 1024,
            swap_bytes: 4 * 1024 * 1024 * 1024,
            thp: ThpConfig::linux_default(),
            policy: AllocationPolicy::LinuxThp,
            page_cache_pages: 1 << 20,
            fragmentation_target: Some(0.8),
            swap_threshold: 0.9,
            reclaim_batch: 32,
            ssd: SsdConfig::nvme_datacenter(),
            populate_page_cache: true,
            sched_quantum: 50_000,
            context_switch_cost: 4_000,
            shootdown_ipi_cost: 1_800,
            shootdown_per_page_cost: 160,
            num_cores: 1,
            oom_kill: true,
            fault_injection: FaultInjectionConfig::default(),
            seed: 0x5a_fa_51,
        }
    }

    /// A small configuration for unit tests and examples: 256 MB of memory,
    /// 16 MB of swap, no pre-fragmentation.
    pub fn small_test() -> Self {
        OsConfig {
            memory_bytes: 256 * 1024 * 1024,
            swap_bytes: 16 * 1024 * 1024,
            page_cache_pages: 4096,
            fragmentation_target: None,
            sched_quantum: 2_500,
            ..OsConfig::paper_baseline()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidConfig`] when a parameter is out of range.
    pub fn validate(&self) -> VmResult<()> {
        if self.memory_bytes == 0 || !self.memory_bytes.is_multiple_of(4096) {
            return Err(VmError::InvalidConfig {
                reason: "memory size must be a non-zero multiple of 4 KiB".to_string(),
            });
        }
        if self.num_cores == 0 {
            return Err(VmError::InvalidConfig {
                reason: "num_cores must be at least 1".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.swap_threshold) {
            return Err(VmError::InvalidConfig {
                reason: format!("swap threshold {} outside [0,1]", self.swap_threshold),
            });
        }
        if let Some(f) = self.fragmentation_target {
            if !(0.0..=1.0).contains(&f) {
                return Err(VmError::InvalidConfig {
                    reason: format!("fragmentation target {f} outside [0,1]"),
                });
            }
        }
        if let AllocationPolicy::Utopia(cfg) = self.policy {
            if cfg.size_bytes >= self.memory_bytes {
                return Err(VmError::InvalidConfig {
                    reason: "utopia restseg must be smaller than physical memory".to_string(),
                });
            }
            if !cfg.size_bytes.is_multiple_of(4096) {
                // An unaligned carve-out would leave the FlexSeg with a
                // fractional 4 KiB frame (caught deep in the buddy
                // allocator otherwise).
                return Err(VmError::InvalidConfig {
                    reason: "utopia restseg size must be a multiple of 4 KiB".to_string(),
                });
            }
        }
        self.fault_injection.validate()?;
        Ok(())
    }
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig::paper_baseline()
    }
}

/// Statistics accumulated by the kernel across all handled events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OsStats {
    /// Minor page faults handled.
    pub minor_faults: Counter,
    /// Major page faults handled (page-cache misses requiring device reads).
    pub major_faults: Counter,
    /// Swap-in faults handled.
    pub swap_in_faults: Counter,
    /// hugetlbfs faults handled.
    pub hugetlb_faults: Counter,
    /// Faults that found the page already mapped.
    pub spurious_faults: Counter,
    /// Faults taken on read accesses (the `is_write = false` half of the
    /// handler's entry conditions).
    pub read_faults: Counter,
    /// Faults taken on write accesses.
    pub write_faults: Counter,
    /// Per-fault total latency samples (nanoseconds, software + device).
    pub fault_latency_ns: LatencyStats,
    /// Per-minor-fault latency samples (nanoseconds), the distribution shown
    /// in the paper's Fig. 2 / Fig. 16.
    pub minor_fault_latency_ns: LatencyStats,
    /// Total nanoseconds spent in the fault handler (software + device).
    pub total_fault_ns: f64,
    /// Total kernel instructions emitted (fault handler + daemons).
    pub kernel_instructions: u64,
    /// 2 MiB or 1 GiB mappings created.
    pub huge_mappings: Counter,
    /// 4 KiB mappings created.
    pub base_mappings: Counter,
    /// Pages swapped out by reclaim.
    pub reclaimed_pages: Counter,
    /// TLB-shootdown IPI rounds initiated (one per reclaim pass or
    /// khugepaged scan that tore translations down).
    pub shootdown_ipis: Counter,
    /// Huge mappings demoted (split into base pages) by reclaim.
    pub thp_demotions: Counter,
    /// Processes killed by the out-of-memory killer.
    pub oom_kills: Counter,
    /// Resident bytes examined by the OOM killer's badness scans.
    pub oom_scanned_bytes: u64,
    /// Bytes of resident memory freed by OOM kills.
    pub oom_freed_bytes: u64,
    /// Times a failed base-frame allocation fell into the direct-reclaim
    /// retry loop (the escalation path that precedes an OOM kill).
    pub oom_reclaim_retries: Counter,
    /// Resident bytes reclaim must leave alone: hugetlbfs-backed mappings,
    /// which (as in Linux) are neither swapped nor demoted. Their frames
    /// only come back when the owning process exits or is killed.
    pub unreclaimable_bytes: u64,
    /// Injected base-frame allocation shortfalls (fault injection).
    pub injected_alloc_shortfalls: Counter,
    /// Injected transient swap-device I/O errors (fault injection).
    pub injected_swap_io_errors: Counter,
    /// Injected swap-device latency spikes (fault injection).
    pub injected_swap_latency_spikes: Counter,
    /// Injected shootdown-IPI delivery delays (fault injection).
    pub injected_ipi_delays: Counter,
}

impl OsStats {
    /// Total faults of any kind.
    pub fn total_faults(&self) -> u64 {
        self.minor_faults.get()
            + self.major_faults.get()
            + self.swap_in_faults.get()
            + self.hugetlb_faults.get()
            + self.spurious_faults.get()
    }
}

/// The MimicOS kernel.
///
/// See the [crate-level documentation](crate) for an overview and an example.
#[derive(Debug, Clone)]
pub struct MimicOs {
    config: OsConfig,
    buddy: BuddyAllocator,
    pt_slab: SlabAllocator,
    page_cache: PageCache,
    swap: SwapManager,
    ssd: SsdModel,
    zeroed_pool: ZeroedPagePool,
    khugepaged: KhugepagedDaemon,
    reservation: Option<ReservationThp>,
    utopia: Option<UtopiaAllocator>,
    hugetlb: HugetlbPool,
    processes: Vec<Process>,
    scheduler: Scheduler,
    ranges: BTreeMap<usize, Vec<RangeMapping>>,
    /// Round-robin position of the reclaim scan: the process the next
    /// reclaim pass starts taking victims from, so one victim process does
    /// not absorb all swap traffic under multiprogram pressure.
    reclaim_cursor: usize,
    /// Shootdown work from faults that *failed* after reclaim already tore
    /// translations down (e.g. out-of-memory after an eviction-only
    /// reclaim pass). The framework drains this with
    /// [`MimicOs::take_pending_invalidations`] — losing it would leave
    /// stale translations alive.
    pending_invalidations: InvalidationBatch,
    /// OOM kills performed but not yet drained by the framework (see
    /// [`MimicOs::take_oom_kills`]): the framework must flush the victim's
    /// per-core translation state and inject the kill's kernel stream.
    oom_kill_log: Vec<OomKill>,
    /// Pids of killed processes whose slots (and ASIDs) are free for reuse
    /// by [`MimicOs::spawn_process`].
    free_pids: Vec<usize>,
    injector: FaultInjector,
    rng: DetRng,
    stats: OsStats,
}

/// One completed out-of-memory kill, surfaced to the framework so it can
/// tear down the victim's architectural translation state and charge the
/// kernel work. The torn-down translations themselves travel through the
/// fault's [`InvalidationBatch`] like any other shootdown.
#[derive(Debug, Clone)]
pub struct OomKill {
    /// The killed process.
    pub victim: ProcessId,
    /// The victim's badness score (resident + swapped bytes) at kill time.
    pub badness: u64,
    /// Resident bytes freed by the kill.
    pub freed_bytes: u64,
    /// The kernel instructions of the badness scan and address-space
    /// teardown, for injection into the instruction-stream channel.
    pub stream: KernelInstructionStream,
}

impl MimicOs {
    /// Boots a kernel with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`OsConfig::validate`]; use
    /// [`MimicOs::try_new`] to handle invalid configurations gracefully.
    pub fn new(config: OsConfig) -> Self {
        MimicOs::try_new(config).expect("invalid MimicOS configuration")
    }

    /// Boots a kernel, returning an error for invalid configurations.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn try_new(config: OsConfig) -> VmResult<Self> {
        config.validate()?;
        let mut rng = DetRng::new(config.seed);

        // Under the Utopia policy the RestSegs are carved out of physical
        // memory; the buddy allocator only manages the remaining FlexSeg.
        let (buddy_bytes, utopia) = match config.policy {
            AllocationPolicy::Utopia(seg_cfg) => {
                let flexseg = config.memory_bytes - seg_cfg.size_bytes;
                let seg = crate::utopia::RestSeg::new(seg_cfg, PhysAddr::new(flexseg));
                (flexseg, Some(UtopiaAllocator::new(vec![seg])))
            }
            _ => (config.memory_bytes, None),
        };
        let mut buddy = BuddyAllocator::new(buddy_bytes);
        if let Some(target) = config.fragmentation_target {
            buddy.fragment(target, &mut rng);
        }
        let mut zeroed_pool = ZeroedPagePool::new(config.thp.zeroed_pool_capacity);
        if config.thp.mode != ThpMode::Never {
            zeroed_pool.refill(&mut buddy);
        }
        let reservation = match config.policy {
            AllocationPolicy::ConservativeReservationThp => Some(ReservationThp::conservative()),
            AllocationPolicy::AggressiveReservationThp => Some(ReservationThp::aggressive()),
            _ => None,
        };

        Ok(MimicOs {
            pt_slab: SlabAllocator::for_page_table_frames(),
            page_cache: PageCache::new(config.page_cache_pages),
            swap: SwapManager::new(config.swap_bytes),
            ssd: SsdModel::new(config.ssd.clone()),
            zeroed_pool,
            khugepaged: KhugepagedDaemon::new(),
            reservation,
            utopia,
            hugetlb: HugetlbPool::new(),
            processes: Vec::new(),
            scheduler: Scheduler::new_with_cores(config.sched_quantum, config.num_cores),
            ranges: BTreeMap::new(),
            reclaim_cursor: 0,
            pending_invalidations: InvalidationBatch::default(),
            oom_kill_log: Vec::new(),
            free_pids: Vec::new(),
            injector: FaultInjector::new(config.fault_injection.clone()),
            rng,
            stats: OsStats::default(),
            buddy,
            config,
        })
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &OsConfig {
        &self.config
    }

    /// Kernel-wide statistics.
    pub fn stats(&self) -> &OsStats {
        &self.stats
    }

    /// The physical frame allocator.
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// Mutable access to the physical frame allocator (for experiments that
    /// inject fragmentation after boot).
    pub fn buddy_mut(&mut self) -> &mut BuddyAllocator {
        &mut self.buddy
    }

    /// The swap manager.
    pub fn swap(&self) -> &SwapManager {
        &self.swap
    }

    /// The storage device backing swap and the page cache.
    pub fn ssd(&self) -> &SsdModel {
        &self.ssd
    }

    /// The page cache.
    pub fn page_cache(&self) -> &PageCache {
        &self.page_cache
    }

    /// The Utopia allocator, when the policy uses one.
    pub fn utopia(&self) -> Option<&UtopiaAllocator> {
        self.utopia.as_ref()
    }

    /// The khugepaged daemon.
    pub fn khugepaged(&self) -> &KhugepagedDaemon {
        &self.khugepaged
    }

    /// Creates a new process, admits it to the scheduler's run queue and
    /// returns its identifier. Pid slots (and with them the ASIDs derived
    /// from them) of OOM-killed processes are recycled: the framework
    /// flushed the dead ASID from every core when it drained the kill, so
    /// reuse is safe — exactly what the chaos proptest pins down.
    pub fn spawn_process(&mut self) -> ProcessId {
        let pid = match self.free_pids.pop() {
            Some(idx) => {
                self.processes[idx] = Process::new();
                ProcessId(idx)
            }
            None => {
                self.processes.push(Process::new());
                ProcessId(self.processes.len() - 1)
            }
        };
        self.ranges.insert(pid.0, Vec::new());
        self.scheduler.admit(pid);
        pid
    }

    /// Number of pid slots ever created (live and exited).
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// The process scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Mutable access to the process scheduler (the simulation loop drives
    /// dispatch, accounting and preemption through it).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    /// Performs the kernel half of a context switch and returns the
    /// instruction stream of the switch code (scheduler bookkeeping,
    /// register save/restore, `switch_mm`).
    pub fn context_switch_stream(&mut self, switch: ContextSwitch) -> KernelInstructionStream {
        let mut stream = KernelInstructionStream::new(KernelRoutine::ContextSwitch);
        stream.compute(self.config.context_switch_cost);
        // Touch both task structs and the incoming mm_struct, so the switch
        // pollutes the caches the way real switch code does.
        for pid in [switch.from, switch.to] {
            stream.store(PhysAddr::new(
                0xFFFF_C000_0000_0000 + (pid.0 as u64) * 0x4000,
            ));
        }
        stream.store(PhysAddr::new(
            0xFFFF_C800_0000_0000 + (switch.to.0 as u64) * 0x2000,
        ));
        self.stats.kernel_instructions += stream.instruction_count();
        stream
    }

    /// Immutable access to a process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not name a spawned process.
    pub fn process(&self, pid: ProcessId) -> &Process {
        &self.processes[pid.0]
    }

    /// Mutable access to a process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not name a spawned process.
    pub fn process_mut(&mut self, pid: ProcessId) -> &mut Process {
        &mut self.processes[pid.0]
    }

    /// The contiguous ranges eagerly allocated for a process (RMM support).
    pub fn ranges(&self, pid: ProcessId) -> &[RangeMapping] {
        self.ranges.get(&pid.0).map_or(&[], |v| v.as_slice())
    }

    /// Maps an anonymous region `[start, start + len)` into a process.
    /// When `hugetlb` is `true`, the region is backed by hugetlbfs and the
    /// kernel reserves 2 MiB pages for it up front.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidVma`] if the region overlaps an existing
    /// VMA or has zero length.
    pub fn mmap_anonymous(
        &mut self,
        pid: ProcessId,
        start: VirtAddr,
        len: u64,
        hugetlb: bool,
    ) -> VmResult<()> {
        let mut vma = Vma::anonymous(start, len);
        vma.hugetlb = hugetlb;
        vma.eager_paging = matches!(self.config.policy, AllocationPolicy::EagerPaging);
        self.processes[pid.0].vmas.insert(vma.clone())?;
        if hugetlb {
            let pages = len.div_ceil(PageSize::Size2M.bytes());
            self.hugetlb.reserve(pages as usize, &mut self.buddy);
        }
        if vma.eager_paging {
            self.eager_populate(pid, &vma);
        }
        Ok(())
    }

    /// Maps a file-backed region into a process. When the configuration
    /// enables it, the page cache is warmed for the mapped range.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidVma`] if the region overlaps an existing
    /// VMA or has zero length.
    pub fn mmap_file(
        &mut self,
        pid: ProcessId,
        start: VirtAddr,
        len: u64,
        file_id: u64,
    ) -> VmResult<()> {
        let vma = Vma::file_backed(start, len, file_id);
        self.processes[pid.0].vmas.insert(vma)?;
        if self.config.populate_page_cache {
            let pages = (len / 4096).min(self.config.page_cache_pages as u64 / 2);
            for i in 0..pages {
                if let Ok(frame) = self.buddy.alloc(0) {
                    if let Some(evicted) = self.page_cache.insert(file_id, i, frame) {
                        let _ = self.buddy.free(evicted, 0);
                    }
                }
            }
        }
        Ok(())
    }

    /// Eagerly allocates physical memory for an entire VMA (RMM's eager
    /// paging), creating as few, as large, contiguous ranges as possible.
    fn eager_populate(&mut self, pid: ProcessId, vma: &Vma) {
        let mut offset = 0u64;
        while offset < vma.len() {
            let remaining_pages = (vma.len() - offset) / 4096;
            // Largest order that still fits in the remaining length, capped
            // at 2 MiB * 2^12 = 8 GiB (the paper's max order 21 relative to
            // 4 KiB pages).
            let max_order = 63 - remaining_pages.leading_zeros().min(63);
            let order = max_order.min(21);
            let Ok((base, got_order)) = self.buddy.alloc_with_fallback(order, 0, None) else {
                break;
            };
            let bytes = (1u64 << got_order) * 4096;
            let vstart = vma.start.add(offset);
            self.ranges.entry(pid.0).or_default().push(RangeMapping {
                virt_start: vstart,
                phys_start: base,
                bytes,
            });
            // Record mappings at the largest page granularity that tiles the
            // range so the MMU sees huge mappings where possible.
            let mut inner = 0u64;
            while inner < bytes {
                let va = vstart.add(inner);
                let pa = base.add(inner);
                let size = if bytes - inner >= PageSize::Size2M.bytes()
                    && va.is_aligned(PageSize::Size2M)
                    && pa.is_aligned(PageSize::Size2M)
                {
                    PageSize::Size2M
                } else {
                    PageSize::Size4K
                };
                self.processes[pid.0].insert_mapping(Mapping {
                    vaddr: va,
                    paddr: pa,
                    page_size: size,
                });
                if size == PageSize::Size2M {
                    self.stats.huge_mappings.inc();
                } else {
                    self.stats.base_mappings.inc();
                }
                inner += size.bytes();
            }
            offset += bytes;
        }
    }

    /// Runs the kernel's background housekeeping: refills the pre-zeroed
    /// huge-page pool (the work a background zeroing thread would do off the
    /// critical path). Call periodically from the simulation loop.
    pub fn background_tick(&mut self) {
        if self.config.thp.mode != ThpMode::Never {
            self.zeroed_pool.refill(&mut self.buddy);
        }
    }

    /// Runs one khugepaged scan pass over a process, returning the kernel
    /// instruction stream describing the background work plus the
    /// translations the pass tore down: a collapse removes base mappings
    /// whose frames are freed (and immediately reusable), so the caller
    /// must shoot them down and install the replacement huge mapping —
    /// exactly the `mmu_notifier` + TLB-flush dance `collapse_huge_page`
    /// performs in Linux.
    pub fn khugepaged_tick(
        &mut self,
        pid: ProcessId,
    ) -> (KernelInstructionStream, InvalidationBatch) {
        let (mut stream, collapses) = self.khugepaged.scan(
            &self.config.thp,
            &mut self.processes[pid.0],
            &mut self.buddy,
        );
        let mut batch = InvalidationBatch::default();
        for collapse in collapses {
            for old in &collapse.removed {
                batch.push_victim(pid, old.vaddr, old.page_size);
            }
            batch.replacements.push((pid, collapse.huge));
        }
        self.charge_shootdown(batch.victims.len() as u64, &mut stream);
        self.stats.kernel_instructions += stream.instruction_count();
        (stream, batch)
    }

    /// Records the instruction-stream cost of one shootdown round: the
    /// IPI round trip plus the per-page invalidation work, and the store
    /// of the flush descriptor every responding core reads (cross-core
    /// cacheline ping-pong of the IPI handshake).
    fn shootdown_cost_ops(&self, pages: u64, stream: &mut KernelInstructionStream) {
        const FLUSH_DESCRIPTOR: PhysAddr = PhysAddr::new(0xFFFF_E000_0000_0000);
        let cost = u64::from(self.config.shootdown_ipi_cost)
            + u64::from(self.config.shootdown_per_page_cost) * pages;
        stream.compute(cost.min(u32::MAX as u64) as u32);
        stream.store(FLUSH_DESCRIPTOR);
    }

    /// Charges one TLB-shootdown round (IPIs + per-page invalidations) to
    /// the given kernel stream. A no-op when nothing was invalidated.
    fn charge_shootdown(&mut self, pages: u64, stream: &mut KernelInstructionStream) {
        if pages == 0 {
            return;
        }
        self.stats.shootdown_ipis.inc();
        self.shootdown_cost_ops(pages, stream);
    }

    /// Handles a page fault at `vaddr` in process `pid`, implementing the
    /// memory-management flow of the paper's Fig. 6. Returns the outcome,
    /// including the established mapping and the kernel instruction stream.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::SegmentationFault`] when `vaddr` is not covered by
    /// any VMA, and [`VmError::OutOfMemory`] when physical memory and swap
    /// are both exhausted.
    pub fn handle_page_fault(
        &mut self,
        pid: ProcessId,
        vaddr: VirtAddr,
        is_write: bool,
    ) -> VmResult<PageFaultOutcome> {
        let mut invalidations = InvalidationBatch::default();
        loop {
            match self.handle_page_fault_inner(pid, vaddr, is_write, &mut invalidations) {
                Ok(mut outcome) => {
                    outcome.invalidations = invalidations;
                    return Ok(outcome);
                }
                Err(error @ VmError::OutOfMemory { .. }) if self.config.oom_kill => {
                    // Reclaim and retry could not satisfy the allocation:
                    // escalate to the OOM killer. When it finds a victim
                    // the fault is retried against the freed memory; when
                    // every other process is already dead (or empty) the
                    // fault fails for real. Each iteration kills one
                    // process, so the loop terminates.
                    if !self.oom_kill_one(pid, &mut invalidations) {
                        self.pending_invalidations.merge(invalidations);
                        return Err(error);
                    }
                }
                Err(error) => {
                    // The fault failed *after* reclaim may already have torn
                    // translations down (e.g. out of memory when evicting
                    // RestSeg pages frees no FlexSeg frames). Stash the work:
                    // the shootdowns are real even though the fault is not.
                    self.pending_invalidations.merge(invalidations);
                    return Err(error);
                }
            }
        }
    }

    /// Selects the OOM victim with the highest badness score — resident
    /// plus swapped bytes, the RSS-dominant heuristic of Linux's
    /// `oom_badness` — excluding the faulting process (the kernel
    /// sacrifices another task so the faulting one can make progress) and
    /// everything already dead. Ties go to the younger (higher) pid. Kills
    /// it and appends the torn-down translations to `batch`. Returns
    /// `false` when no victim exists.
    fn oom_kill_one(&mut self, faulter: ProcessId, batch: &mut InvalidationBatch) -> bool {
        let mut scanned = 0u64;
        let mut best: Option<(usize, u64)> = None;
        for (idx, process) in self.processes.iter().enumerate() {
            if idx == faulter.0 || process.is_exited() {
                continue;
            }
            let badness = process.resident_bytes() + process.swapped_page_count() as u64 * 4096;
            scanned += badness;
            if badness > 0 && best.is_none_or(|(_, b)| badness >= b) {
                best = Some((idx, badness));
            }
        }
        let Some((victim_idx, badness)) = best else {
            return false;
        };
        let victim = ProcessId(victim_idx);
        let mut stream = KernelInstructionStream::new(KernelRoutine::OomKill);
        // The badness scan walks every task struct (`select_bad_process`).
        stream.compute(120 * self.processes.len().max(1) as u32);
        for idx in 0..self.processes.len() {
            stream.load(PhysAddr::new(0xFFFF_C000_0000_0000 + (idx as u64) * 0x4000));
        }
        let freed = self.kill_process(victim, &mut stream, batch);
        self.stats.oom_kills.inc();
        self.stats.oom_scanned_bytes += scanned;
        self.stats.oom_freed_bytes += freed;
        self.stats.kernel_instructions += stream.instruction_count();
        self.oom_kill_log.push(OomKill {
            victim,
            badness,
            freed_bytes: freed,
            stream,
        });
        true
    }

    /// Tears a process down (`oom_kill_process` + `exit_mmap`): every
    /// resident mapping becomes a shootdown victim in `batch` and its
    /// frames return to their owner (buddy allocator, hugetlb pool or
    /// RestSeg), swap slots are released, eager ranges dropped, and the
    /// process leaves the scheduler. Its pid slot is queued for reuse.
    /// Returns the resident bytes freed.
    fn kill_process(
        &mut self,
        victim: ProcessId,
        stream: &mut KernelInstructionStream,
        batch: &mut InvalidationBatch,
    ) -> u64 {
        let asid = victim.0 as u16;
        let space = self.processes[victim.0].kill(ExitReason::OomKilled);
        let mut freed = 0u64;
        for (mapping, hugetlb) in &space.mappings {
            batch.push_victim(victim, mapping.vaddr, mapping.page_size);
            freed += mapping.page_size.bytes();
            // Unmap + free per entry (`unmap_page_range` / `free_pgtables`).
            stream.compute(60);
            if let Some(utopia) = self.utopia.as_mut() {
                if utopia.remove(asid, mapping.vaddr) {
                    // RestSeg page: no buddy frame behind it.
                    continue;
                }
            }
            if *hugetlb {
                self.stats.unreclaimable_bytes = self
                    .stats
                    .unreclaimable_bytes
                    .saturating_sub(mapping.page_size.bytes());
                self.hugetlb.release(mapping.paddr);
                continue;
            }
            self.free_mapping_frames(mapping);
        }
        for slot in space.swap_slots {
            self.swap.release_slot(slot);
        }
        // Reservation-THP frames freed above may sit inside tracked 2 MiB
        // reservations; forget them all so no later promotion resurrects a
        // frame the buddy allocator already handed out again.
        if let Some(reservation) = self.reservation.as_mut() {
            reservation.clear();
        }
        self.ranges.insert(victim.0, Vec::new());
        self.scheduler.exit(victim);
        self.free_pids.push(victim.0);
        self.charge_shootdown(space.mappings.len() as u64, stream);
        freed
    }

    /// Frees the physical span behind one mapping. A huge mapping whose
    /// frames were carved out of a larger buddy block (eager paging, a
    /// demoted gigantic page) cannot be freed at its own order; the
    /// containing block is shattered to base frames first.
    fn free_mapping_frames(&mut self, mapping: &Mapping) {
        if self
            .buddy
            .free(mapping.paddr, order_for(mapping.page_size))
            .is_ok()
        {
            return;
        }
        if self.buddy.split_allocated(mapping.paddr).is_ok() {
            let mut offset = 0u64;
            while offset < mapping.page_size.bytes() {
                let _ = self.buddy.free(mapping.paddr.add(offset), 0);
                offset += 4096;
            }
        }
    }

    /// Drains the OOM kills performed since the last call. The framework
    /// must flush each victim's ASID from every core's translation state
    /// and inject the kill's kernel stream (in detailed mode).
    pub fn take_oom_kills(&mut self) -> Vec<OomKill> {
        std::mem::take(&mut self.oom_kill_log)
    }

    /// Extra stall cycles for one remote core's shootdown IPI delivery,
    /// when fault injection decides the IPI arrives late. Returns 0 with
    /// injection disabled (without consuming injector randomness).
    pub fn injected_ipi_delay_cycles(&mut self) -> u64 {
        let delay = self.injector.ipi_delay_cycles();
        if delay > 0 {
            self.stats.injected_ipi_delays.inc();
        }
        delay
    }

    /// Drains the shootdown work accumulated by failed faults (see
    /// [`MimicOs::handle_page_fault`]). The framework must apply this
    /// after any fault that returns an error.
    pub fn take_pending_invalidations(&mut self) -> InvalidationBatch {
        std::mem::take(&mut self.pending_invalidations)
    }

    /// Builds the kernel stream for the shootdown cost of a *failed*
    /// fault's invalidation batch. The fault's own stream — which had the
    /// cost charged into it — was abandoned with the fault, but the IPIs
    /// and remote invalidations still executed; the framework injects this
    /// replacement alongside the drained batch. The IPI-round statistic is
    /// *not* re-incremented (it was counted when the victims were torn
    /// down).
    pub fn pending_shootdown_stream(&mut self, pages: u64) -> KernelInstructionStream {
        let mut stream = KernelInstructionStream::new(KernelRoutine::Reclaim);
        if pages > 0 {
            self.shootdown_cost_ops(pages, &mut stream);
            self.stats.kernel_instructions += stream.instruction_count();
        }
        stream
    }

    fn handle_page_fault_inner(
        &mut self,
        pid: ProcessId,
        vaddr: VirtAddr,
        is_write: bool,
        invalidations: &mut InvalidationBatch,
    ) -> VmResult<PageFaultOutcome> {
        let mut stream = KernelInstructionStream::new(KernelRoutine::PageFaultHandler);
        // Exception entry, register save, mmap_lock acquisition.
        stream.compute(220);

        let Some(vma) = self.processes[pid.0]
            .vmas
            .find_traced(vaddr, &mut stream)
            .cloned()
        else {
            return Err(VmError::SegmentationFault { vaddr });
        };

        // Spurious fault: another thread (or eager paging) already mapped it.
        if let Some(existing) = self.processes[pid.0].lookup_mapping(vaddr) {
            stream.compute(40);
            let outcome = self.finish_fault(
                pid,
                existing,
                Vec::new(),
                FaultKind::Spurious,
                stream,
                0.0,
                0,
                0,
                is_write,
            );
            return Ok(outcome);
        }

        let mut device_ns = 0.0;
        let mut zeroed_bytes = 0u64;
        let mut additional = Vec::new();

        // Reclaim (kswapd-style) if memory pressure is above the threshold.
        device_ns += self.reclaim_if_needed(&mut stream, invalidations)?;

        // Swapped-out page: bring it back in.
        if self.processes[pid.0].is_swapped(vaddr) {
            self.swap.trace_lookup(&mut stream);
            let slot = self.processes[pid.0]
                .take_swap_slot(vaddr)
                .expect("is_swapped implies a slot");
            let dest = self.alloc_base_frame_for(&mut stream, invalidations)?;
            let (frame, io) = self.swap.swap_in(slot, dest, &mut self.ssd)?;
            if frame != dest {
                // The page was still in the swap cache; release the frame we
                // speculatively allocated.
                let _ = self.buddy.free(dest, 0);
            }
            device_ns += io.as_nanos() + self.injected_swap_penalty_ns(io.as_nanos(), &mut stream);
            let pt_frames = self.charge_page_table_frames(pid, vaddr, &mut stream)?;
            let mapping = Mapping {
                vaddr: vaddr.page_base(PageSize::Size4K),
                paddr: frame,
                page_size: PageSize::Size4K,
            };
            self.install_mapping(pid, mapping, &mut stream);
            let outcome = self.finish_fault(
                pid,
                mapping,
                additional,
                FaultKind::SwapIn,
                stream,
                device_ns,
                zeroed_bytes,
                pt_frames,
                is_write,
            );
            return Ok(outcome);
        }

        // hugetlbfs VMAs take 2 MiB pages from the reserved pool (Fig. 6,
        // "Page in HugeTLB?").
        if vma.hugetlb {
            stream.compute(80);
            let frame = match self.hugetlb.take() {
                Some(f) => f,
                None => self.buddy.alloc_traced(ORDER_2M, Some(&mut stream))?,
            };
            zeroed_bytes += self.zero_page(frame, PageSize::Size2M.bytes(), &mut stream);
            let pt_frames = self.charge_page_table_frames(pid, vaddr, &mut stream)?;
            let mapping = Mapping {
                vaddr: vaddr.page_base(PageSize::Size2M),
                paddr: frame,
                page_size: PageSize::Size2M,
            };
            self.install_mapping(pid, mapping, &mut stream);
            // Hugetlbfs pages are pinned for the life of the mapping (Linux
            // never swaps or demotes them); only an OOM kill returns them.
            self.stats.unreclaimable_bytes += PageSize::Size2M.bytes();
            let outcome = self.finish_fault(
                pid,
                mapping,
                additional,
                FaultKind::Hugetlb,
                stream,
                device_ns,
                zeroed_bytes,
                pt_frames,
                is_write,
            );
            return Ok(outcome);
        }

        // 1 GiB path: DAX/file-backed VMAs with gigantic flags and an
        // available contiguous gigabyte (Fig. 6, step 3).
        if vma.gigantic_ok
            && vma.kind.is_file_backed()
            && self.buddy.can_alloc(ORDER_1G)
            && vaddr.page_base(PageSize::Size1G) >= vma.start
        {
            let frame = self.buddy.alloc_traced(ORDER_1G, Some(&mut stream))?;
            let pt_frames = self.charge_page_table_frames(pid, vaddr, &mut stream)?;
            let mapping = Mapping {
                vaddr: vaddr.page_base(PageSize::Size1G),
                paddr: frame,
                page_size: PageSize::Size1G,
            };
            self.install_mapping(pid, mapping, &mut stream);
            let outcome = self.finish_fault(
                pid,
                mapping,
                additional,
                FaultKind::Minor,
                stream,
                device_ns,
                zeroed_bytes,
                pt_frames,
                is_write,
            );
            return Ok(outcome);
        }

        // File-backed pages go through the page cache (Fig. 6, step 7).
        if let VmaKind::FileBacked { file_id } = vma.kind {
            let page_index = (vaddr.page_base(PageSize::Size4K).offset_from(vma.start)) / 4096;
            let mut kind = FaultKind::Minor;
            let frame = match self
                .page_cache
                .lookup_traced(file_id, page_index, &mut stream)
            {
                Some(f) => f,
                None => {
                    // Page-cache miss: read from the device (major fault).
                    let frame = self.alloc_base_frame_for(&mut stream, invalidations)?;
                    let io = self.ssd.read(file_id * (1 << 30) + page_index * 4096);
                    device_ns += io.as_nanos();
                    if let Some(evicted) = self.page_cache.insert(file_id, page_index, frame) {
                        let _ = self.buddy.free(evicted, 0);
                    }
                    kind = FaultKind::Major;
                    frame
                }
            };
            let pt_frames = self.charge_page_table_frames(pid, vaddr, &mut stream)?;
            let mapping = Mapping {
                vaddr: vaddr.page_base(PageSize::Size4K),
                paddr: frame,
                page_size: PageSize::Size4K,
            };
            self.install_mapping(pid, mapping, &mut stream);
            let outcome = self.finish_fault(
                pid,
                mapping,
                additional,
                kind,
                stream,
                device_ns,
                zeroed_bytes,
                pt_frames,
                is_write,
            );
            return Ok(outcome);
        }

        // Anonymous memory: dispatch on the allocation policy.
        let pt_frames = self.charge_page_table_frames(pid, vaddr, &mut stream)?;
        let mut restseg_placed = false;
        let mapping = match self.config.policy {
            AllocationPolicy::BuddyFourK | AllocationPolicy::EagerPaging => {
                // Eager paging normally populates at mmap time; reaching this
                // point means the eager allocation ran out of memory, so fall
                // back to on-demand 4 KiB pages.
                let frame = self.alloc_base_frame_for(&mut stream, invalidations)?;
                zeroed_bytes += self.zero_page(frame, 4096, &mut stream);
                Mapping {
                    vaddr: vaddr.page_base(PageSize::Size4K),
                    paddr: frame,
                    page_size: PageSize::Size4K,
                }
            }
            AllocationPolicy::LinuxThp => self.linux_thp_fault(
                pid,
                vaddr,
                &vma,
                &mut stream,
                &mut zeroed_bytes,
                invalidations,
            )?,
            AllocationPolicy::ConservativeReservationThp
            | AllocationPolicy::AggressiveReservationThp => self.reservation_fault(
                pid,
                vaddr,
                &mut stream,
                &mut zeroed_bytes,
                &mut additional,
                invalidations,
            )?,
            AllocationPolicy::Utopia(_) => self.utopia_fault(
                pid,
                vaddr,
                &mut stream,
                &mut zeroed_bytes,
                &mut device_ns,
                &mut restseg_placed,
                invalidations,
            )?,
        };
        self.install_mapping(pid, mapping, &mut stream);
        let mut outcome = self.finish_fault(
            pid,
            mapping,
            additional,
            FaultKind::Minor,
            stream,
            device_ns,
            zeroed_bytes,
            pt_frames,
            is_write,
        );
        outcome.restseg_placed = restseg_placed;
        Ok(outcome)
    }

    /// Linux-like THP: try a 2 MiB allocation for eligible first-touch
    /// regions, otherwise a 4 KiB page plus a khugepaged notification.
    fn linux_thp_fault(
        &mut self,
        pid: ProcessId,
        vaddr: VirtAddr,
        vma: &Vma,
        stream: &mut KernelInstructionStream,
        zeroed_bytes: &mut u64,
        batch: &mut InvalidationBatch,
    ) -> VmResult<Mapping> {
        let thp_eligible = match self.config.thp.mode {
            ThpMode::Always => true,
            ThpMode::Madvise => vma.hugetlb,
            ThpMode::Never => false,
        };
        let region_base = vaddr.page_base(PageSize::Size2M);
        let region_fits_vma =
            region_base >= vma.start && region_base.add(PageSize::Size2M.bytes()) <= vma.end;
        let region_untouched = !self.processes[pid.0].region_has_mappings(vaddr, PageSize::Size2M);

        // Keep headroom: under memory pressure Linux's huge-page allocation
        // (compaction) fails and the fault falls back to a base page, which
        // avoids THP bloat exhausting physical memory.
        let headroom_ok = self.buddy.free_bytes() > self.config.memory_bytes / 8;
        if thp_eligible
            && vma.kind.is_anonymous()
            && region_fits_vma
            && region_untouched
            && headroom_ok
        {
            stream.compute(90);
            // Prefer a pre-zeroed huge page from the pool. The pool is only
            // replenished by background work (`background_tick`), so bursts
            // of huge-page faults quickly fall back to inline zeroing — the
            // source of the THP tail latency in Figs. 2 and 16.
            if let Some(frame) = self.zeroed_pool.take() {
                stream.compute(30);
                return Ok(Mapping {
                    vaddr: region_base,
                    paddr: frame,
                    page_size: PageSize::Size2M,
                });
            }
            if self.buddy.can_alloc(ORDER_2M) {
                let frame = self.buddy.alloc_traced(ORDER_2M, Some(stream))?;
                *zeroed_bytes += self.zero_page(frame, PageSize::Size2M.bytes(), stream);
                return Ok(Mapping {
                    vaddr: region_base,
                    paddr: frame,
                    page_size: PageSize::Size2M,
                });
            }
            // Fallback path: compaction attempt failed, take a base page.
            stream.compute(400);
        }
        let frame = self.alloc_base_frame_for(stream, batch)?;
        *zeroed_bytes += self.zero_page(frame, 4096, stream);
        self.khugepaged.notify(vaddr);
        Ok(Mapping {
            vaddr: vaddr.page_base(PageSize::Size4K),
            paddr: frame,
            page_size: PageSize::Size4K,
        })
    }

    /// Reservation-based THP fault (CR-THP / AR-THP).
    fn reservation_fault(
        &mut self,
        pid: ProcessId,
        vaddr: VirtAddr,
        stream: &mut KernelInstructionStream,
        zeroed_bytes: &mut u64,
        additional: &mut Vec<Mapping>,
        batch: &mut InvalidationBatch,
    ) -> VmResult<Mapping> {
        let reservation = self
            .reservation
            .as_mut()
            .expect("reservation policy implies a tracker");
        match reservation.on_fault(vaddr, &mut self.buddy, stream) {
            Some((frame, promote)) => {
                *zeroed_bytes += self.zero_page(frame, 4096, stream);
                let base_mapping = Mapping {
                    vaddr: vaddr.page_base(PageSize::Size4K),
                    paddr: frame,
                    page_size: PageSize::Size4K,
                };
                if let Some(huge_base) = promote {
                    // Promotion: replace every 4 KiB mapping in the region
                    // with one 2 MiB mapping.
                    let region = vaddr.page_base(PageSize::Size2M);
                    let huge = Mapping {
                        vaddr: region,
                        paddr: huge_base,
                        page_size: PageSize::Size2M,
                    };
                    self.processes[pid.0].collapse_to_huge(region, huge);
                    self.stats.huge_mappings.inc();
                    additional.push(huge);
                }
                Ok(base_mapping)
            }
            None => {
                // Reservation failed (no contiguous 2 MiB region): plain page.
                let frame = self.alloc_base_frame_for(stream, batch)?;
                *zeroed_bytes += self.zero_page(frame, 4096, stream);
                Ok(Mapping {
                    vaddr: vaddr.page_base(PageSize::Size4K),
                    paddr: frame,
                    page_size: PageSize::Size4K,
                })
            }
        }
    }

    /// Utopia fault: hash-based placement into the RestSeg; collisions spill
    /// to the FlexSeg (buddy) and, under memory pressure, force swapping —
    /// the behaviour behind Fig. 20.
    #[allow(clippy::too_many_arguments)]
    fn utopia_fault(
        &mut self,
        pid: ProcessId,
        vaddr: VirtAddr,
        stream: &mut KernelInstructionStream,
        zeroed_bytes: &mut u64,
        device_ns: &mut f64,
        restseg_placed: &mut bool,
        batch: &mut InvalidationBatch,
    ) -> VmResult<Mapping> {
        let asid = pid.0 as u16;
        let utopia = self
            .utopia
            .as_mut()
            .expect("utopia policy implies segments");
        if let Some((frame, size)) = utopia.try_place(asid, vaddr, PageSize::Size4K, stream) {
            *restseg_placed = true;
            *zeroed_bytes += self.zero_page(frame, size.bytes().min(4096), stream);
            return Ok(Mapping {
                vaddr: vaddr.page_base(size),
                paddr: frame,
                page_size: size,
            });
        }
        // Collision: spill to the FlexSeg. If the FlexSeg is out of memory,
        // reclaim by swapping out resident pages first.
        let frame = match self.alloc_base_frame_for(stream, batch) {
            Ok(f) => f,
            Err(VmError::OutOfMemory { .. }) => {
                *device_ns += self.reclaim_pages(self.config.reclaim_batch, stream, batch)?;
                self.alloc_base_frame_for(stream, batch)?
            }
            Err(e) => return Err(e),
        };
        *zeroed_bytes += self.zero_page(frame, 4096, stream);
        Ok(Mapping {
            vaddr: vaddr.page_base(PageSize::Size4K),
            paddr: frame,
            page_size: PageSize::Size4K,
        })
    }

    /// Allocates one 4 KiB frame, reclaiming (swapping out) when physical
    /// memory is exhausted, like the direct-reclaim path of a real kernel.
    fn alloc_base_frame_for(
        &mut self,
        stream: &mut KernelInstructionStream,
        batch: &mut InvalidationBatch,
    ) -> VmResult<PhysAddr> {
        // An injected shortfall models a transient allocation failure (a
        // watermark breach, a CMA reservation, a race with another
        // allocator): the fault takes the same direct-reclaim path a real
        // failure would.
        let first_try = if self.injector.alloc_shortfall() {
            self.stats.injected_alloc_shortfalls.inc();
            Err(VmError::OutOfMemory {
                requested: 4096,
                free: self.buddy.free_bytes(),
            })
        } else {
            self.buddy.alloc_traced(0, Some(stream))
        };
        match first_try {
            Ok(f) => Ok(f),
            Err(VmError::OutOfMemory { .. }) => {
                self.stats.oom_reclaim_retries.inc();
                self.reclaim_pages(self.config.reclaim_batch.max(8), stream, batch)?;
                self.buddy.alloc_traced(0, Some(stream))
            }
            Err(e) => Err(e),
        }
    }

    /// Charges the slab allocations for page-table frames needed by a fault:
    /// one new frame per previously-untouched level of the region.
    fn charge_page_table_frames(
        &mut self,
        pid: ProcessId,
        vaddr: VirtAddr,
        stream: &mut KernelInstructionStream,
    ) -> VmResult<u32> {
        let mut frames = 0u32;
        for size in [PageSize::Size1G, PageSize::Size2M] {
            if !self.processes[pid.0].region_has_mappings(vaddr, size) {
                self.pt_slab.alloc(&mut self.buddy, Some(stream))?;
                frames += 1;
            }
        }
        Ok(frames)
    }

    /// Zeroes a freshly allocated page, charging the memset work.
    /// Returns the number of bytes zeroed.
    fn zero_page(
        &mut self,
        frame: PhysAddr,
        bytes: u64,
        stream: &mut KernelInstructionStream,
    ) -> u64 {
        // A rep-stos style memset: roughly one instruction per 8 bytes, plus
        // a store sample per 512 bytes so the memory system sees the traffic
        // without exploding the stream length.
        stream.compute((bytes / 8).min(u32::MAX as u64) as u32);
        let mut offset = 0;
        while offset < bytes && offset < 512 * 128 {
            stream.store(frame.add(offset));
            offset += 512;
        }
        bytes
    }

    /// Installs a mapping into the process and charges the page-table update.
    fn install_mapping(
        &mut self,
        pid: ProcessId,
        mapping: Mapping,
        stream: &mut KernelInstructionStream,
    ) {
        stream.compute(45);
        stream.store(PhysAddr::new(
            0xFFFF_D000_0000_0000 + (mapping.vaddr.raw() >> 9 & 0xF_FFF_FF8),
        ));
        self.processes[pid.0].insert_mapping(mapping);
        match mapping.page_size {
            PageSize::Size4K => self.stats.base_mappings.inc(),
            _ => self.stats.huge_mappings.inc(),
        }
    }

    /// Reclaims memory when utilization exceeds the swapping threshold.
    /// Returns the device time spent; torn-down translations are appended
    /// to `batch` for the framework to shoot down.
    fn reclaim_if_needed(
        &mut self,
        stream: &mut KernelInstructionStream,
        batch: &mut InvalidationBatch,
    ) -> VmResult<f64> {
        if self.buddy.utilization() <= self.config.swap_threshold {
            return Ok(0.0);
        }
        self.reclaim_pages(self.config.reclaim_batch, stream, batch)
    }

    /// Picks up to `count` 4 KiB reclaim victims, one page at a time
    /// round-robin across the resident processes starting at the reclaim
    /// cursor, so multiprogram pressure spreads the swap traffic instead
    /// of draining one victim process.
    fn reclaim_victims_round_robin(&mut self, count: usize) -> Vec<(ProcessId, Mapping)> {
        let n = self.processes.len();
        if n == 0 {
            return Vec::new();
        }
        let mut queues: Vec<(usize, std::collections::VecDeque<Mapping>)> = Vec::new();
        for i in 0..n {
            let idx = (self.reclaim_cursor + i) % n;
            let candidates = self.processes[idx].reclaim_candidates(count);
            if !candidates.is_empty() {
                queues.push((idx, candidates.into()));
            }
        }
        let mut victims = Vec::new();
        'fill: loop {
            let mut progressed = false;
            for (idx, queue) in &mut queues {
                if let Some(mapping) = queue.pop_front() {
                    victims.push((ProcessId(*idx), mapping));
                    progressed = true;
                    if victims.len() >= count {
                        break 'fill;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        if !victims.is_empty() {
            self.reclaim_cursor = (self.reclaim_cursor + 1) % n;
        }
        victims
    }

    /// Demotes one resident 2 MiB mapping into 512 4 KiB pieces on the
    /// same frames (`split_huge_page` + buddy split), searching processes
    /// round-robin from the cursor. When no 2 MiB mapping exists anywhere,
    /// a 1 GiB mapping is demoted instead — first into 512 2 MiB pieces,
    /// then the first of those on into 4 KiB pieces — so gigantic pages
    /// are never exempt from reclaim. The huge translation goes into
    /// `batch` as a shootdown victim (intermediate pieces never reached a
    /// TLB, so only the original mapping needs one); the 4 KiB pieces are
    /// returned so the caller can reclaim some and report the survivors
    /// as replacements.
    fn demote_one_huge(
        &mut self,
        stream: &mut KernelInstructionStream,
        batch: &mut InvalidationBatch,
    ) -> Option<(ProcessId, Vec<Mapping>)> {
        for size in [PageSize::Size2M, PageSize::Size1G] {
            let n = self.processes.len();
            for i in 0..n {
                let idx = (self.reclaim_cursor + i) % n;
                let process = &self.processes[idx];
                // Hugetlbfs mappings are pinned (counted in
                // `unreclaimable_bytes`): demotion must not touch them.
                let Some(vaddr) = process
                    .mappings()
                    .find(|m| {
                        m.page_size == size
                            && !process.vmas.find(m.vaddr).is_some_and(|v| v.hugetlb)
                    })
                    .map(|m| m.vaddr)
                else {
                    continue;
                };
                let (huge, mut pieces) = self.processes[idx]
                    .demote_mapping(vaddr)
                    .expect("a huge mapping was found above");
                // The containing buddy block (the huge allocation itself,
                // or the larger eager block it was carved from) becomes a
                // set of individually freeable frames; RestSeg and
                // gigantic-reservation frames live outside the buddy and
                // simply stay where they are.
                let _ = self.buddy.split_allocated(huge.paddr);
                let pid = ProcessId(idx);
                batch.push_victim(pid, huge.vaddr, huge.page_size);
                self.stats.thp_demotions.inc();
                // Splitting the PMD (or PUD): per-entry setup for the 512
                // new entries.
                stream.compute(512 * 3);
                if size == PageSize::Size1G {
                    // 1 GiB demotion yields 2 MiB pieces; split the first
                    // on down to reclaimable 4 KiB pages. The surviving
                    // 2 MiB pieces stay resident and ride the replacement
                    // path (they were never in any TLB — no shootdown).
                    let first = pieces[0];
                    for piece in &pieces[1..] {
                        batch.replacements.push((pid, *piece));
                    }
                    let (mid, base_pieces) = self.processes[idx]
                        .demote_mapping(first.vaddr)
                        .expect("the 2 MiB piece was just inserted");
                    let _ = self.buddy.split_allocated(mid.paddr);
                    self.stats.thp_demotions.inc();
                    stream.compute(512 * 3);
                    pieces = base_pieces;
                }
                return Some((pid, pieces));
            }
        }
        None
    }

    /// Swaps out up to `count` resident 4 KiB pages, chosen round-robin
    /// across all processes. When no base pages are resident anywhere, one
    /// huge mapping is demoted first and its pieces reclaimed. Every
    /// translation torn down is appended to `batch`, and the kernel stream
    /// is charged the configured shootdown cost (IPI round + per-page
    /// invalidation work).
    fn reclaim_pages(
        &mut self,
        count: usize,
        stream: &mut KernelInstructionStream,
        batch: &mut InvalidationBatch,
    ) -> VmResult<f64> {
        let victims_before = batch.victims.len();
        let mut device_ns = 0.0;
        stream.compute(200);
        let mut victims = self.reclaim_victims_round_robin(count);
        if victims.is_empty() {
            // No base pages anywhere: demote a huge mapping and reclaim
            // from its pieces. Pieces that survive this pass stay resident
            // as 4 KiB mappings and are reported as replacements.
            let Some((pid, pieces)) = self.demote_one_huge(stream, batch) else {
                return Ok(device_ns);
            };
            let reclaim_now = count.min(pieces.len());
            for piece in &pieces[reclaim_now..] {
                batch.replacements.push((pid, *piece));
            }
            victims = pieces[..reclaim_now].iter().map(|m| (pid, *m)).collect();
        }
        for (pid, victim) in victims {
            let Ok((slot, io)) = self.swap.swap_out(victim.paddr, &mut self.ssd) else {
                break;
            };
            let io_ns = io.as_nanos() + self.injected_swap_penalty_ns(io.as_nanos(), stream);
            self.swap.drop_swap_cache(slot);
            if self.processes[pid.0].swap_out(victim.vaddr, slot).is_some() {
                batch.push_victim(pid, victim.vaddr, victim.page_size);
                // An eagerly allocated range no longer translates the
                // victim page: trim it (both here and, via the batch, in
                // the engine's range table).
                self.trim_ranges(pid, victim.vaddr, victim.page_size.bytes());
            }
            if let Some(utopia) = self.utopia.as_mut() {
                if utopia.remove(pid.0 as u16, victim.vaddr) {
                    // Page lived in a RestSeg: no buddy frame to release.
                    device_ns += io_ns;
                    self.stats.reclaimed_pages.inc();
                    continue;
                }
            }
            if self.buddy.free(victim.paddr, 0).is_err() {
                // The frame is part of a larger allocation (an eager-paging
                // block): split the block into base frames, then release.
                if self.buddy.split_allocated(victim.paddr).is_ok() {
                    let _ = self.buddy.free(victim.paddr, 0);
                }
            }
            device_ns += io_ns;
            self.stats.reclaimed_pages.inc();
            stream.compute(80);
            stream.store(victim.paddr);
        }
        self.charge_shootdown((batch.victims.len() - victims_before) as u64, stream);
        Ok(device_ns)
    }

    /// Extra device nanoseconds injected into one swap transfer: a latency
    /// spike, a transient I/O error (the kernel retries, paying the
    /// transfer twice plus error-handling work), or both. A transfer that
    /// never touched the device (swap-cache hit) is not injectable.
    fn injected_swap_penalty_ns(
        &mut self,
        base_io_ns: f64,
        stream: &mut KernelInstructionStream,
    ) -> f64 {
        if !self.injector.is_active() || base_io_ns <= 0.0 {
            return 0.0;
        }
        let mut extra = 0.0;
        if self.injector.swap_io_error() {
            self.stats.injected_swap_io_errors.inc();
            // Completion with error status, bio re-submission.
            stream.compute(600);
            extra += base_io_ns;
        }
        if let Some(spike) = self.injector.swap_latency_spike_ns() {
            self.stats.injected_swap_latency_spikes.inc();
            extra += spike;
        }
        extra
    }

    /// Splits any eagerly allocated range of `pid` covering the reclaimed
    /// page `[vaddr, vaddr + bytes)` into its remainders.
    fn trim_ranges(&mut self, pid: ProcessId, vaddr: VirtAddr, bytes: u64) {
        let Some(ranges) = self.ranges.get_mut(&pid.0) else {
            return;
        };
        if let Some(idx) = ranges.iter().position(|r| r.covers(vaddr)) {
            let range = ranges.swap_remove(idx);
            let (left, right) = range.split_around(vaddr, bytes);
            ranges.extend(left);
            ranges.extend(right);
        }
    }

    /// Finalizes an outcome and records kernel-wide plus per-process
    /// statistics (including the read/write split of the faulting access —
    /// every handled fault, spurious ones included, counts on one side).
    #[allow(clippy::too_many_arguments)]
    fn finish_fault(
        &mut self,
        pid: ProcessId,
        mapping: Mapping,
        additional: Vec<Mapping>,
        kind: FaultKind,
        mut stream: KernelInstructionStream,
        device_ns: f64,
        zeroed_bytes: u64,
        pt_frames: u32,
        is_write: bool,
    ) -> PageFaultOutcome {
        // Exception return, TLB entry install, mmap_lock release.
        stream.compute(120);
        let software_ns = stream.estimate_latency_ns(2.0, 60.0);
        let total_ns = software_ns + device_ns;
        match kind {
            FaultKind::Minor => {
                self.stats.minor_faults.inc();
                self.stats.minor_fault_latency_ns.record(total_ns);
                self.processes[pid.0].minor_faults += 1;
            }
            FaultKind::Major => {
                self.stats.major_faults.inc();
                self.processes[pid.0].major_faults += 1;
            }
            FaultKind::SwapIn => {
                self.stats.swap_in_faults.inc();
                self.processes[pid.0].major_faults += 1;
            }
            FaultKind::Hugetlb => {
                self.stats.hugetlb_faults.inc();
                self.stats.minor_fault_latency_ns.record(total_ns);
                self.processes[pid.0].minor_faults += 1;
            }
            FaultKind::Spurious => self.stats.spurious_faults.inc(),
        }
        if is_write {
            self.stats.write_faults.inc();
            self.processes[pid.0].write_faults += 1;
        } else {
            self.stats.read_faults.inc();
            self.processes[pid.0].read_faults += 1;
        }
        self.stats.fault_latency_ns.record(total_ns);
        self.stats.total_fault_ns += total_ns;
        self.stats.kernel_instructions += stream.instruction_count();
        // Mild deterministic jitter imitating interrupt/lock interference.
        let _ = self.rng.next_u64();
        PageFaultOutcome {
            mapping,
            additional_mappings: additional,
            kind,
            stream,
            software_latency_ns: software_ns,
            device_latency_ns: device_ns,
            zeroed_bytes,
            pt_frames_allocated: pt_frames,
            restseg_placed: false,
            invalidations: InvalidationBatch::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn os_with_policy(policy: AllocationPolicy) -> MimicOs {
        let config = OsConfig {
            policy,
            ..OsConfig::small_test()
        };
        MimicOs::new(config)
    }

    fn touch(os: &mut MimicOs, pid: ProcessId, va: u64) -> PageFaultOutcome {
        os.handle_page_fault(pid, VirtAddr::new(va), true).unwrap()
    }

    #[test]
    fn fault_outside_any_vma_is_a_segfault() {
        let mut os = MimicOs::new(OsConfig::small_test());
        let pid = os.spawn_process();
        assert!(matches!(
            os.handle_page_fault(pid, VirtAddr::new(0xdead_0000), false),
            Err(VmError::SegmentationFault { .. })
        ));
    }

    #[test]
    fn anonymous_fault_with_thp_maps_a_huge_page() {
        let mut os = os_with_policy(AllocationPolicy::LinuxThp);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 64 * MB, false)
            .unwrap();
        let outcome = touch(&mut os, pid, 0x4000_0000);
        assert_eq!(outcome.mapping.page_size, PageSize::Size2M);
        assert_eq!(outcome.kind, FaultKind::Minor);
        assert!(outcome.stream.instruction_count() > 0);
        assert_eq!(os.stats().huge_mappings.get(), 1);
    }

    #[test]
    fn thp_disabled_maps_base_pages() {
        let config = OsConfig {
            thp: ThpConfig::disabled(),
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 16 * MB, false)
            .unwrap();
        let outcome = touch(&mut os, pid, 0x4000_0000);
        assert_eq!(outcome.mapping.page_size, PageSize::Size4K);
    }

    #[test]
    fn buddy_4k_policy_never_maps_huge_pages() {
        let mut os = os_with_policy(AllocationPolicy::BuddyFourK);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 16 * MB, false)
            .unwrap();
        for i in 0..32u64 {
            let outcome = touch(&mut os, pid, 0x4000_0000 + i * 4096);
            assert_eq!(outcome.mapping.page_size, PageSize::Size4K);
        }
        assert_eq!(os.stats().huge_mappings.get(), 0);
    }

    #[test]
    fn second_fault_on_same_page_is_spurious() {
        let mut os = os_with_policy(AllocationPolicy::BuddyFourK);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), MB, false)
            .unwrap();
        touch(&mut os, pid, 0x4000_0000);
        let again = touch(&mut os, pid, 0x4000_0100);
        assert_eq!(again.kind, FaultKind::Spurious);
        assert_eq!(os.stats().spurious_faults.get(), 1);
    }

    #[test]
    fn huge_page_fault_zeroes_more_bytes_than_base_fault() {
        let mut os = os_with_policy(AllocationPolicy::LinuxThp);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 64 * MB, false)
            .unwrap();
        let huge = touch(&mut os, pid, 0x4000_0000);

        let mut os2 = os_with_policy(AllocationPolicy::BuddyFourK);
        let pid2 = os2.spawn_process();
        os2.mmap_anonymous(pid2, VirtAddr::new(0x4000_0000), 64 * MB, false)
            .unwrap();
        let base = touch(&mut os2, pid2, 0x4000_0000);

        // The huge fault either consumed a pre-zeroed page from the pool
        // (zeroing skipped) or zeroed the full 2 MiB inline.
        assert!(huge.zeroed_bytes == 0 || huge.zeroed_bytes == PageSize::Size2M.bytes());
        assert_eq!(huge.mapping.page_size, PageSize::Size2M);
        assert_eq!(base.zeroed_bytes, 4096);
        if huge.zeroed_bytes == PageSize::Size2M.bytes() {
            assert!(huge.software_latency_ns > base.software_latency_ns);
        }
    }

    #[test]
    fn file_backed_fault_hits_the_page_cache_after_warming() {
        let mut os = MimicOs::new(OsConfig::small_test());
        let pid = os.spawn_process();
        os.mmap_file(pid, VirtAddr::new(0x1000_0000), 4 * MB, 3)
            .unwrap();
        let outcome = touch(&mut os, pid, 0x1000_0000);
        assert_eq!(outcome.kind, FaultKind::Minor);
        assert_eq!(outcome.device_latency_ns, 0.0);
    }

    #[test]
    fn cold_file_fault_is_major_and_pays_device_latency() {
        let config = OsConfig {
            populate_page_cache: false,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_file(pid, VirtAddr::new(0x1000_0000), 4 * MB, 3)
            .unwrap();
        let outcome = touch(&mut os, pid, 0x1000_0000);
        assert_eq!(outcome.kind, FaultKind::Major);
        assert!(outcome.device_latency_ns > 10_000.0);
        assert_eq!(os.stats().major_faults.get(), 1);
        // The second access to the same file page now hits the page cache.
        let second = touch(&mut os, pid, 0x1000_0000 + 64);
        assert_eq!(second.kind, FaultKind::Spurious);
    }

    #[test]
    fn hugetlb_vma_uses_reserved_pages() {
        let mut os = MimicOs::new(OsConfig::small_test());
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x8000_0000), 8 * MB, true)
            .unwrap();
        let outcome = touch(&mut os, pid, 0x8000_0000);
        assert_eq!(outcome.kind, FaultKind::Hugetlb);
        assert_eq!(outcome.mapping.page_size, PageSize::Size2M);
        assert_eq!(os.stats().hugetlb_faults.get(), 1);
    }

    #[test]
    fn reservation_thp_promotes_and_reports_additional_mapping() {
        let mut os = os_with_policy(AllocationPolicy::AggressiveReservationThp);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 16 * MB, false)
            .unwrap();
        let mut promoted = false;
        for i in 0..60u64 {
            let outcome = touch(&mut os, pid, 0x4000_0000 + i * 4096);
            if !outcome.additional_mappings.is_empty() {
                promoted = true;
                assert_eq!(outcome.additional_mappings[0].page_size, PageSize::Size2M);
            }
        }
        assert!(promoted, "aggressive reservation THP should promote");
        // After promotion the region resolves to the huge mapping.
        assert_eq!(
            os.process(pid)
                .lookup_mapping(VirtAddr::new(0x4000_0000 + 100 * 4096))
                .unwrap()
                .page_size,
            PageSize::Size2M
        );
    }

    #[test]
    fn eager_paging_populates_at_mmap_time() {
        let mut os = os_with_policy(AllocationPolicy::EagerPaging);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 32 * MB, false)
            .unwrap();
        assert!(!os.ranges(pid).is_empty());
        assert!(os.process(pid).resident_bytes() >= 32 * MB);
        // Faults are spurious because the memory is already mapped.
        let outcome = touch(&mut os, pid, 0x4000_0000 + 5 * MB);
        assert_eq!(outcome.kind, FaultKind::Spurious);
    }

    #[test]
    fn eager_ranges_are_contiguous_and_cover_the_vma() {
        let mut os = os_with_policy(AllocationPolicy::EagerPaging);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 16 * MB, false)
            .unwrap();
        let covered: u64 = os.ranges(pid).iter().map(|r| r.bytes).sum();
        assert_eq!(covered, 16 * MB);
    }

    #[test]
    fn utopia_policy_places_pages_in_the_restseg() {
        let policy = AllocationPolicy::Utopia(crate::utopia::UtopiaConfig::new(
            32 * MB,
            16,
            PageSize::Size4K,
        ));
        let mut os = os_with_policy(policy);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 16 * MB, false)
            .unwrap();
        let outcome = touch(&mut os, pid, 0x4000_0000);
        // RestSeg frames live above the FlexSeg (buddy) range.
        assert!(outcome.mapping.paddr.raw() >= os.buddy().capacity_bytes());
        assert!(os.utopia().unwrap().segments()[0].stats().placements.get() >= 1);
    }

    #[test]
    fn utopia_faults_are_faster_than_thp_huge_faults() {
        let policy = AllocationPolicy::Utopia(crate::utopia::UtopiaConfig::new(
            32 * MB,
            16,
            PageSize::Size4K,
        ));
        let mut ut = os_with_policy(policy);
        let mut thp = os_with_policy(AllocationPolicy::LinuxThp);
        let pid_u = ut.spawn_process();
        let pid_t = thp.spawn_process();
        ut.mmap_anonymous(pid_u, VirtAddr::new(0x4000_0000), 64 * MB, false)
            .unwrap();
        thp.mmap_anonymous(pid_t, VirtAddr::new(0x4000_0000), 64 * MB, false)
            .unwrap();
        // Compare tail latency over first-touch faults (the THP side touches
        // one address per 2 MiB region so every fault allocates a huge page).
        for i in 0..32u64 {
            touch(&mut ut, pid_u, 0x4000_0000 + i * 4096);
            touch(&mut thp, pid_t, 0x4000_0000 + i * 2 * MB);
        }
        let ut_p99 = ut.stats().minor_fault_latency_ns.quantile(0.99);
        let thp_p99 = thp.stats().minor_fault_latency_ns.quantile(0.99);
        assert!(
            ut_p99 < thp_p99,
            "utopia p99 {ut_p99} should beat THP p99 {thp_p99}"
        );
    }

    #[test]
    fn memory_pressure_triggers_swapping() {
        // 16 MB of memory, tiny swap threshold: filling it forces reclaim.
        let config = OsConfig {
            memory_bytes: 16 * MB,
            swap_bytes: 32 * MB,
            swap_threshold: 0.5,
            policy: AllocationPolicy::BuddyFourK,
            thp: ThpConfig::disabled(),
            fragmentation_target: None,
            populate_page_cache: false,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 64 * MB, false)
            .unwrap();
        for i in 0..3000u64 {
            touch(&mut os, pid, 0x4000_0000 + i * 4096);
        }
        assert!(os.stats().reclaimed_pages.get() > 0);
        assert!(os.swap().stats().swap_outs.get() > 0);
    }

    #[test]
    fn swapped_page_faults_back_in() {
        let config = OsConfig {
            memory_bytes: 16 * MB,
            swap_bytes: 32 * MB,
            swap_threshold: 0.5,
            policy: AllocationPolicy::BuddyFourK,
            thp: ThpConfig::disabled(),
            fragmentation_target: None,
            populate_page_cache: false,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 64 * MB, false)
            .unwrap();
        for i in 0..3000u64 {
            touch(&mut os, pid, 0x4000_0000 + i * 4096);
        }
        // Find a swapped page and touch it again.
        let swapped_va = (0..3000u64)
            .map(|i| VirtAddr::new(0x4000_0000 + i * 4096))
            .find(|&va| os.process(pid).is_swapped(va))
            .expect("some page must be swapped out");
        let outcome = os.handle_page_fault(pid, swapped_va, false).unwrap();
        assert_eq!(outcome.kind, FaultKind::SwapIn);
        assert!(os.stats().swap_in_faults.get() >= 1);
    }

    #[test]
    fn khugepaged_tick_collapses_after_base_faults() {
        let config = OsConfig {
            // THP mode never: faults allocate 4 KiB; khugepaged still runs.
            thp: ThpConfig {
                mode: ThpMode::Never,
                ..ThpConfig::linux_default()
            },
            policy: AllocationPolicy::LinuxThp,
            fragmentation_target: None,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 4 * MB, false)
            .unwrap();
        for i in 0..512u64 {
            touch(&mut os, pid, 0x4000_0000 + i * 4096);
        }
        let (stream, batch) = os.khugepaged_tick(pid);
        assert!(stream.instruction_count() > 0);
        assert!(os.khugepaged().collapses.get() >= 1);
        // The collapse reports the removed base translations as shootdown
        // victims and the huge page as their replacement.
        assert!(batch.victims.len() >= 512);
        assert!(batch
            .victims
            .iter()
            .all(|v| v.pid == pid && v.page_size == PageSize::Size4K));
        assert!(batch
            .replacements
            .iter()
            .any(|(p, m)| *p == pid && m.page_size == PageSize::Size2M));
        assert!(os.stats().shootdown_ipis.get() >= 1);
        assert_eq!(
            os.process(pid)
                .lookup_mapping(VirtAddr::new(0x4000_0000))
                .unwrap()
                .page_size,
            PageSize::Size2M
        );
    }

    #[test]
    fn fragmentation_limits_huge_page_allocations() {
        let config = OsConfig {
            fragmentation_target: Some(0.0),
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 64 * MB, false)
            .unwrap();
        // With no free 2 MiB regions (beyond the pre-filled zeroed pool),
        // THP faults quickly degrade to 4 KiB pages.
        let mut base_pages = 0;
        for i in 0..32u64 {
            let outcome = touch(&mut os, pid, 0x4000_0000 + i * 2 * MB);
            if outcome.mapping.page_size == PageSize::Size4K {
                base_pages += 1;
            }
        }
        assert!(base_pages > 16, "only {base_pages} base-page faults");
    }

    #[test]
    fn stats_track_fault_counts_and_latency() {
        let mut os = os_with_policy(AllocationPolicy::BuddyFourK);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), MB, false)
            .unwrap();
        for i in 0..16u64 {
            touch(&mut os, pid, 0x4000_0000 + i * 4096);
        }
        let stats = os.stats();
        assert_eq!(stats.minor_faults.get(), 16);
        assert_eq!(stats.total_faults(), 16);
        assert_eq!(stats.fault_latency_ns.count(), 16);
        assert!(stats.total_fault_ns > 0.0);
        assert!(stats.kernel_instructions > 16 * 300);
    }

    #[test]
    fn faults_are_split_by_access_kind() {
        let mut os = os_with_policy(AllocationPolicy::BuddyFourK);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), MB, false)
            .unwrap();
        for i in 0..10u64 {
            os.handle_page_fault(pid, VirtAddr::new(0x4000_0000 + i * 4096), i < 3)
                .unwrap();
        }
        assert_eq!(os.stats().write_faults.get(), 3);
        assert_eq!(os.stats().read_faults.get(), 7);
        assert_eq!(os.process(pid).write_faults, 3);
        assert_eq!(os.process(pid).read_faults, 7);
    }

    #[test]
    fn reclaim_reports_shootdown_victims_and_charges_the_ipi() {
        let config = OsConfig {
            memory_bytes: 16 * MB,
            swap_bytes: 32 * MB,
            swap_threshold: 0.5,
            policy: AllocationPolicy::BuddyFourK,
            thp: ThpConfig::disabled(),
            fragmentation_target: None,
            populate_page_cache: false,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 64 * MB, false)
            .unwrap();
        let mut batched_victims = 0usize;
        for i in 0..3000u64 {
            let outcome = touch(&mut os, pid, 0x4000_0000 + i * 4096);
            for victim in &outcome.invalidations.victims {
                assert_eq!(victim.pid, pid);
                assert!(os.process(pid).is_swapped(victim.vaddr));
                batched_victims += 1;
            }
        }
        assert!(batched_victims > 0, "pressure must produce victims");
        assert_eq!(batched_victims as u64, os.stats().reclaimed_pages.get());
        assert!(os.stats().shootdown_ipis.get() > 0);
    }

    #[test]
    fn multiprogram_reclaim_spreads_victims_round_robin() {
        let config = OsConfig {
            memory_bytes: 16 * MB,
            swap_bytes: 64 * MB,
            swap_threshold: 0.5,
            policy: AllocationPolicy::BuddyFourK,
            thp: ThpConfig::disabled(),
            fragmentation_target: None,
            populate_page_cache: false,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let a = os.spawn_process();
        let b = os.spawn_process();
        for pid in [a, b] {
            os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 32 * MB, false)
                .unwrap();
        }
        // Both processes establish a small resident set, then process A
        // alone drives the memory pressure.
        for i in 0..500u64 {
            touch(&mut os, a, 0x4000_0000 + i * 4096);
            touch(&mut os, b, 0x4000_0000 + i * 4096);
        }
        for i in 500..4000u64 {
            touch(&mut os, a, 0x4000_0000 + i * 4096);
        }
        let swapped_a = os.process(a).swapped_page_count();
        let swapped_b = os.process(b).swapped_page_count();
        assert!(
            swapped_a > 0 && swapped_b > 0,
            "round-robin reclaim must hit both processes (a: {swapped_a}, b: {swapped_b})"
        );
    }

    #[test]
    fn demotion_splits_huge_pages_and_reports_replacements() {
        // All-huge resident set under pressure: reclaim must demote.
        let config = OsConfig {
            memory_bytes: 32 * MB,
            swap_bytes: 64 * MB,
            swap_threshold: 0.5,
            policy: AllocationPolicy::LinuxThp,
            fragmentation_target: None,
            populate_page_cache: false,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 128 * MB, false)
            .unwrap();
        let mut saw_demotion_batch = false;
        for i in 0..48u64 {
            let outcome = touch(&mut os, pid, 0x4000_0000 + i * 2 * MB);
            let huge_victims = outcome
                .invalidations
                .victims
                .iter()
                .filter(|v| v.page_size == PageSize::Size2M)
                .count();
            if huge_victims > 0 {
                saw_demotion_batch = true;
                assert!(
                    !outcome.invalidations.replacements.is_empty(),
                    "a demoted region keeps resident 4 KiB pieces"
                );
                for (rpid, piece) in &outcome.invalidations.replacements {
                    assert_eq!(*rpid, pid);
                    assert_eq!(piece.page_size, PageSize::Size4K);
                    // Every replacement is still resident and translates
                    // exactly as the process table says.
                    assert_eq!(
                        os.process(pid).lookup_mapping(piece.vaddr).map(|m| m.paddr),
                        Some(piece.paddr)
                    );
                }
            }
        }
        assert!(saw_demotion_batch, "pressure on huge pages must demote");
        assert!(os.stats().thp_demotions.get() > 0);
        assert!(os.swap().stats().swap_outs.get() > 0);
    }

    #[test]
    fn gigantic_mappings_demote_under_pressure() {
        // A 1 GiB mapping must not be exempt from reclaim: when gigantic
        // pages are the only resident memory left, pressure demotes them
        // (1 GiB -> 512 x 2 MiB, then one piece on to 4 KiB) instead of
        // failing the fault with the gigabyte still pinned.
        let config = OsConfig {
            memory_bytes: 1040 * MB,
            swap_bytes: 64 * MB,
            swap_threshold: 0.5,
            policy: AllocationPolicy::BuddyFourK,
            thp: ThpConfig::disabled(),
            fragmentation_target: None,
            populate_page_cache: false,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        let gig = Vma {
            kind: VmaKind::Dax,
            gigantic_ok: true,
            ..Vma::anonymous(VirtAddr::new(0x40_0000_0000), 1024 * MB)
        };
        os.process_mut(pid).vmas.insert(gig).unwrap();
        let first = touch(&mut os, pid, 0x40_0000_0000);
        assert_eq!(first.mapping.page_size, PageSize::Size1G);

        // With the gigabyte resident, almost nothing is free; the next
        // fault anywhere else must reclaim, and the only reclaimable
        // memory is the gigantic page.
        os.mmap_anonymous(pid, VirtAddr::new(0x9000_0000), 4 * MB, false)
            .unwrap();
        let outcome = touch(&mut os, pid, 0x9000_0000);
        assert!(
            outcome
                .invalidations
                .victims
                .iter()
                .any(|v| v.page_size == PageSize::Size1G),
            "the gigantic translation must be shot down on demotion"
        );
        assert!(
            outcome
                .invalidations
                .replacements
                .iter()
                .any(|(rpid, m)| *rpid == pid && m.page_size == PageSize::Size2M),
            "surviving 2 MiB pieces stay resident as replacements"
        );
        // Two split levels: PUD -> PMDs, then one PMD -> PTEs.
        assert!(os.stats().thp_demotions.get() >= 2);
        assert!(os.swap().stats().swap_outs.get() > 0);
        // The demoted region still translates piece-by-piece where not
        // swapped: a 2 MiB piece covers addresses past the split head.
        let tail = os
            .process(pid)
            .lookup_mapping(VirtAddr::new(0x40_0000_0000 + 512 * MB))
            .expect("demoted pieces stay resident");
        assert_eq!(tail.page_size, PageSize::Size2M);
    }

    #[test]
    fn reclaim_trims_eager_ranges_around_victims() {
        let config = OsConfig {
            memory_bytes: 16 * MB,
            swap_bytes: 64 * MB,
            swap_threshold: 0.5,
            policy: AllocationPolicy::EagerPaging,
            thp: ThpConfig::disabled(),
            fragmentation_target: None,
            populate_page_cache: false,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 8 * MB, false)
            .unwrap();
        assert!(!os.ranges(pid).is_empty());
        // Drive pressure until eager pages of this process get reclaimed.
        os.mmap_anonymous(pid, VirtAddr::new(0x8000_0000), 32 * MB, false)
            .unwrap();
        for i in 0..3000u64 {
            touch(&mut os, pid, 0x8000_0000 + i * 4096);
        }
        let swapped: Vec<VirtAddr> = (0..2048u64)
            .map(|i| VirtAddr::new(0x4000_0000 + i * 4096))
            .filter(|&va| os.process(pid).is_swapped(va))
            .collect();
        assert!(!swapped.is_empty(), "eager pages must be reclaimable");
        // No surviving range may still cover a swapped-out page.
        for va in swapped {
            assert!(
                !os.ranges(pid).iter().any(|r| r.covers(va)),
                "range still covers swapped-out {va}"
            );
        }
    }

    #[test]
    fn range_split_around_produces_exact_remainders() {
        let range = RangeMapping {
            virt_start: VirtAddr::new(0x1000_0000),
            phys_start: PhysAddr::new(0x8000_0000),
            bytes: 16 * 4096,
        };
        // Middle page: two remainders, phys offsets preserved.
        let (l, r) = range.split_around(VirtAddr::new(0x1000_4000), 4096);
        let l = l.unwrap();
        let r = r.unwrap();
        assert_eq!(l.virt_start.raw(), 0x1000_0000);
        assert_eq!(l.bytes, 4 * 4096);
        assert_eq!(r.virt_start.raw(), 0x1000_5000);
        assert_eq!(r.phys_start.raw(), 0x8000_5000);
        assert_eq!(r.bytes, 11 * 4096);
        // First page: only a right remainder; last page: only a left one.
        let (l, r) = range.split_around(VirtAddr::new(0x1000_0000), 4096);
        assert!(l.is_none());
        assert_eq!(r.unwrap().bytes, 15 * 4096);
        let (l, r) = range.split_around(VirtAddr::new(0x1000_F000), 4096);
        assert_eq!(l.unwrap().bytes, 15 * 4096);
        assert!(r.is_none());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad_mem = OsConfig {
            memory_bytes: 1000,
            ..OsConfig::small_test()
        };
        assert!(MimicOs::try_new(bad_mem).is_err());
        let bad_threshold = OsConfig {
            swap_threshold: 1.5,
            ..OsConfig::small_test()
        };
        assert!(MimicOs::try_new(bad_threshold).is_err());
        let bad_utopia = OsConfig {
            policy: AllocationPolicy::Utopia(crate::utopia::UtopiaConfig::new(
                1 << 40,
                16,
                PageSize::Size4K,
            )),
            ..OsConfig::small_test()
        };
        assert!(MimicOs::try_new(bad_utopia).is_err());
        let unaligned_restseg = OsConfig {
            policy: AllocationPolicy::Utopia(crate::utopia::UtopiaConfig::new(
                93_952_409, // 70 % of 128 MiB — not a whole frame count
                16,
                PageSize::Size4K,
            )),
            ..OsConfig::small_test()
        };
        assert!(MimicOs::try_new(unaligned_restseg).is_err());
    }

    #[test]
    fn overlapping_mmap_is_rejected() {
        let mut os = MimicOs::new(OsConfig::small_test());
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), MB, false)
            .unwrap();
        assert!(os
            .mmap_anonymous(pid, VirtAddr::new(0x4000_0000), MB, false)
            .is_err());
    }

    #[test]
    fn multiple_processes_have_independent_address_spaces() {
        let mut os = os_with_policy(AllocationPolicy::BuddyFourK);
        let a = os.spawn_process();
        let b = os.spawn_process();
        os.mmap_anonymous(a, VirtAddr::new(0x4000_0000), MB, false)
            .unwrap();
        os.mmap_anonymous(b, VirtAddr::new(0x4000_0000), MB, false)
            .unwrap();
        let out_a = touch(&mut os, a, 0x4000_0000);
        let out_b = touch(&mut os, b, 0x4000_0000);
        assert_ne!(out_a.mapping.paddr, out_b.mapping.paddr);
        assert!(os.process(b).is_mapped(VirtAddr::new(0x4000_0000)));
    }

    /// 4 MiB of memory, no swap: reclaim can free nothing, so sustained
    /// allocation escalates straight to the OOM killer.
    fn pressure_os() -> MimicOs {
        let config = OsConfig {
            memory_bytes: 4 * MB,
            swap_bytes: 0,
            policy: AllocationPolicy::BuddyFourK,
            thp: ThpConfig::disabled(),
            fragmentation_target: None,
            populate_page_cache: false,
            ..OsConfig::small_test()
        };
        MimicOs::new(config)
    }

    #[test]
    fn oom_kill_sacrifices_the_biggest_process_and_the_fault_succeeds() {
        let mut os = pressure_os();
        let hog = os.spawn_process();
        let light = os.spawn_process();
        os.mmap_anonymous(hog, VirtAddr::new(0x4000_0000), 3 * MB, false)
            .unwrap();
        os.mmap_anonymous(light, VirtAddr::new(0x4000_0000), 2 * MB, false)
            .unwrap();
        for i in 0..640u64 {
            touch(&mut os, hog, 0x4000_0000 + i * 4096);
        }
        // The light process now cannot fit without a kill; every one of its
        // faults must nevertheless succeed.
        let mut hog_victims = 0;
        for i in 0..512u64 {
            let outcome = touch(&mut os, light, 0x4000_0000 + i * 4096);
            hog_victims += outcome
                .invalidations
                .victims
                .iter()
                .filter(|v| v.pid == hog)
                .count();
        }
        assert_eq!(os.stats().oom_kills.get(), 1);
        assert!(os.stats().oom_reclaim_retries.get() > 0);
        assert_eq!(os.process(hog).exit_reason(), Some(ExitReason::OomKilled));
        assert_eq!(os.process(hog).resident_bytes(), 0);
        assert!(!os.process(light).is_exited());
        // Every translation of the victim rode the shootdown batch.
        assert_eq!(hog_victims, 640);
        let kills = os.take_oom_kills();
        assert_eq!(kills.len(), 1);
        assert_eq!(kills[0].victim, hog);
        assert_eq!(kills[0].freed_bytes, 640 * 4096);
        assert_eq!(kills[0].badness, 640 * 4096);
        assert!(kills[0].stream.instruction_count() > 0);
        assert!(os.take_oom_kills().is_empty(), "the log drains");
    }

    #[test]
    fn the_faulting_process_is_never_the_oom_victim() {
        let mut os = pressure_os();
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 8 * MB, false)
            .unwrap();
        let mut oom = false;
        for i in 0..2048u64 {
            match os.handle_page_fault(pid, VirtAddr::new(0x4000_0000 + i * 4096), true) {
                Ok(_) => {}
                Err(VmError::OutOfMemory { .. }) => {
                    oom = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(oom, "4 MiB cannot hold 8 MiB without swap");
        assert!(!os.process(pid).is_exited());
        assert_eq!(os.stats().oom_kills.get(), 0);
    }

    #[test]
    fn oom_killed_pids_are_recycled_with_a_clean_address_space() {
        let mut os = pressure_os();
        let hog = os.spawn_process();
        let light = os.spawn_process();
        os.mmap_anonymous(hog, VirtAddr::new(0x4000_0000), 3 * MB, false)
            .unwrap();
        os.mmap_anonymous(light, VirtAddr::new(0x4000_0000), 2 * MB, false)
            .unwrap();
        for i in 0..640u64 {
            touch(&mut os, hog, 0x4000_0000 + i * 4096);
        }
        for i in 0..512u64 {
            touch(&mut os, light, 0x4000_0000 + i * 4096);
        }
        assert_eq!(os.stats().oom_kills.get(), 1);
        // The victim's pid slot is reborn as a fresh process that can map
        // and fault immediately.
        let reborn = os.spawn_process();
        assert_eq!(reborn, hog);
        assert!(!os.process(reborn).is_exited());
        assert_eq!(os.process(reborn).resident_bytes(), 0);
        os.mmap_anonymous(reborn, VirtAddr::new(0x7000_0000), MB, false)
            .unwrap();
        let outcome = touch(&mut os, reborn, 0x7000_0000);
        assert_eq!(outcome.mapping.page_size, PageSize::Size4K);
    }

    #[test]
    fn hugetlb_pages_are_unreclaimable_until_their_owner_is_killed() {
        let mut os = MimicOs::new(OsConfig::small_test());
        let a = os.spawn_process();
        os.mmap_anonymous(a, VirtAddr::new(0x8000_0000), 8 * MB, true)
            .unwrap();
        for i in 0..4u64 {
            touch(&mut os, a, 0x8000_0000 + i * 2 * MB);
        }
        assert_eq!(os.stats().unreclaimable_bytes, 8 * MB);
        // Demotion skips pinned hugetlbfs mappings even though they are the
        // only huge mappings resident.
        let mut stream = KernelInstructionStream::new(KernelRoutine::Reclaim);
        let mut batch = InvalidationBatch::default();
        assert!(os.demote_one_huge(&mut stream, &mut batch).is_none());
        assert!(batch.victims.is_empty());
        // An OOM kill is the one path that unpins them, returning the
        // frames to the hugetlb pool.
        let mut kill_stream = KernelInstructionStream::new(KernelRoutine::OomKill);
        let freed = os.kill_process(a, &mut kill_stream, &mut batch);
        assert_eq!(freed, 8 * MB);
        assert_eq!(os.stats().unreclaimable_bytes, 0);
        assert_eq!(batch.victims.len(), 4);
        // The recycled pool serves the next hugetlbfs tenant.
        let b = os.spawn_process();
        os.mmap_anonymous(b, VirtAddr::new(0x8000_0000), 8 * MB, true)
            .unwrap();
        let outcome = touch(&mut os, b, 0x8000_0000);
        assert_eq!(outcome.kind, FaultKind::Hugetlb);
        assert_eq!(os.stats().unreclaimable_bytes, 2 * MB);
    }

    #[test]
    fn injected_alloc_shortfalls_hit_the_reclaim_retry_path() {
        let config = OsConfig {
            policy: AllocationPolicy::BuddyFourK,
            thp: ThpConfig::disabled(),
            fault_injection: FaultInjectionConfig {
                scripted_alloc_shortfalls: vec![0],
                ..FaultInjectionConfig::default()
            },
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pid = os.spawn_process();
        os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), MB, false)
            .unwrap();
        touch(&mut os, pid, 0x4000_0000);
        assert_eq!(os.stats().injected_alloc_shortfalls.get(), 1);
        assert_eq!(os.stats().oom_reclaim_retries.get(), 1);
        // Memory is plentiful: the retry allocates and nobody dies.
        assert_eq!(os.stats().oom_kills.get(), 0);
    }

    #[test]
    fn injected_runs_are_bit_reproducible() {
        let config = OsConfig {
            memory_bytes: 8 * MB,
            swap_bytes: 32 * MB,
            policy: AllocationPolicy::BuddyFourK,
            thp: ThpConfig::disabled(),
            fragmentation_target: None,
            populate_page_cache: false,
            fault_injection: FaultInjectionConfig {
                alloc_shortfall_rate: 0.05,
                swap_io_error_rate: 0.3,
                swap_latency_spike_rate: 0.3,
                swap_latency_spike_ns: 50_000.0,
                ..FaultInjectionConfig::default()
            },
            ..OsConfig::small_test()
        };
        let run = |cfg: OsConfig| {
            let mut os = MimicOs::new(cfg);
            let pid = os.spawn_process();
            os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 16 * MB, false)
                .unwrap();
            let mut total_ns = 0.0;
            for i in 0..3000u64 {
                let va = VirtAddr::new(0x4000_0000 + (i % 4096) * 4096);
                let outcome = os.handle_page_fault(pid, va, true).unwrap();
                total_ns += outcome.software_latency_ns + outcome.device_latency_ns;
            }
            (os.stats().clone(), total_ns)
        };
        let first = run(config.clone());
        let second = run(config);
        assert_eq!(first.0, second.0);
        assert_eq!(first.1.to_bits(), second.1.to_bits());
        assert!(first.0.injected_alloc_shortfalls.get() > 0);
        assert!(first.0.injected_swap_io_errors.get() > 0);
        assert!(first.0.injected_swap_latency_spikes.get() > 0);
    }
}
