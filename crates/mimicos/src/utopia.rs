//! The Utopia physical-memory organisation (Kanellopoulos et al., MICRO
//! 2023): physical memory is split into *restrictive segments* (RestSegs)
//! that use a hash-based, set-associative virtual-to-physical mapping — so a
//! fault can compute the frame address with a lightweight hash instead of
//! walking allocator free lists — and a *flexible segment* (FlexSeg) that
//! retains the conventional buddy-allocated mapping for pages that do not
//! fit in a RestSeg.
//!
//! The paper evaluates Utopia as (i) an allocation policy that shortens page
//! faults (Fig. 16), (ii) an MMU design whose translation-metadata lookups
//! get slower as the RestSeg grows (Fig. 19), and (iii) a design whose hash
//! collisions cause swapping when RestSegs cover most of memory (Fig. 20).
//! This module provides the allocator side; the `mmu-sim` crate models the
//! RestSeg walkers and caches.

use crate::kernel_stream::{KernelInstructionStream, KernelRoutine};
use serde::{Deserialize, Serialize};
use vm_types::{Counter, PageSize, PhysAddr, VirtAddr};

/// Configuration of one restrictive segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtopiaConfig {
    /// Total RestSeg size in bytes.
    pub size_bytes: u64,
    /// Set associativity of the hash-based mapping.
    pub ways: u32,
    /// Page size stored in this RestSeg.
    pub page_size: PageSize,
}

impl UtopiaConfig {
    /// The paper's default pair (Table 4): one 8 GB RestSeg of 4 KiB pages —
    /// scaled here by the caller's physical memory budget.
    pub fn new(size_bytes: u64, ways: u32, page_size: PageSize) -> Self {
        UtopiaConfig {
            size_bytes,
            ways,
            page_size,
        }
    }

    /// Number of sets in the RestSeg.
    pub fn sets(&self) -> u64 {
        (self.size_bytes / self.page_size.bytes() / self.ways as u64).max(1)
    }

    /// Total number of page slots.
    pub fn slots(&self) -> u64 {
        self.sets() * self.ways as u64
    }
}

/// Statistics for one RestSeg.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestSegStats {
    /// Pages successfully placed in the RestSeg.
    pub placements: Counter,
    /// Placement attempts that failed because the set was full (hash
    /// collision); the page spills to the FlexSeg or, under memory pressure,
    /// to swap.
    pub collisions: Counter,
    /// Pages removed.
    pub removals: Counter,
}

/// One restrictive segment: a set-associative, hash-indexed region of
/// physical memory.
///
/// Slots are tagged by `(asid, vpn)`: two processes mapping the same
/// virtual page occupy — and release — distinct ways. Tagging by the
/// virtual page number alone let process A's reclaim free the slot that
/// backed process B's page whenever their virtual layouts overlapped
/// (the occupancy is machine-wide, not per-address-space).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RestSeg {
    config: UtopiaConfig,
    /// Physical base address of the segment.
    base: PhysAddr,
    /// Occupancy: for each slot, the owning `(asid, virtual page number)`
    /// tag, if any.
    slots: Vec<Option<(u16, u64)>>,
    stats: RestSegStats,
}

impl RestSeg {
    /// Creates a RestSeg occupying `[base, base + config.size_bytes)`.
    pub fn new(config: UtopiaConfig, base: PhysAddr) -> Self {
        RestSeg {
            slots: vec![None; config.slots() as usize],
            config,
            base,
            stats: RestSegStats::default(),
        }
    }

    /// The segment's configuration.
    pub fn config(&self) -> &UtopiaConfig {
        &self.config
    }

    /// The segment's statistics.
    pub fn stats(&self) -> &RestSegStats {
        &self.stats
    }

    /// Fraction of slots currently occupied.
    pub fn occupancy(&self) -> f64 {
        let used = self.slots.iter().filter(|s| s.is_some()).count();
        used as f64 / self.slots.len() as f64
    }

    /// The hash used to index the RestSeg: a cheap multiplicative hash of
    /// the virtual page number (stand-in for the CityHash the paper uses).
    fn set_index(&self, vpn: u64) -> u64 {
        let h = vpn.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 17) % self.config.sets()
    }

    fn slot_paddr(&self, set: u64, way: u32) -> PhysAddr {
        let idx = set * self.config.ways as u64 + way as u64;
        self.base.add(idx * self.config.page_size.bytes())
    }

    /// Attempts to place the page containing `vaddr` into the RestSeg.
    /// Returns the frame address on success; `None` on a set-conflict, in
    /// which case the caller must fall back to the FlexSeg.
    ///
    /// The placement work (tag probe + allocation-bitmap update) is recorded
    /// into `stream`; it is deliberately much cheaper than a buddy-allocator
    /// walk, which is what makes Utopia's page faults fast in Fig. 16.
    pub fn try_place(
        &mut self,
        asid: u16,
        vaddr: VirtAddr,
        stream: &mut KernelInstructionStream,
    ) -> Option<PhysAddr> {
        let vpn = vaddr.page_number(self.config.page_size).number();
        let set = self.set_index(vpn);
        stream.compute(12);
        // Probe the set's tag array: contiguous metadata, one load per way
        // group of 8 tags.
        let tag_probes = (self.config.ways as u64).div_ceil(8);
        for i in 0..tag_probes {
            stream.load(self.tag_array_addr(set, i));
        }
        for way in 0..self.config.ways {
            let idx = (set * self.config.ways as u64 + way as u64) as usize;
            if self.slots[idx].is_none() {
                self.slots[idx] = Some((asid, vpn));
                self.stats.placements.inc();
                stream.compute(8);
                stream.store(self.tag_array_addr(set, way as u64 / 8));
                return Some(self.slot_paddr(set, way));
            }
        }
        self.stats.collisions.inc();
        None
    }

    /// Looks up the frame backing `vaddr` in address space `asid`, if it was
    /// placed in this RestSeg.
    pub fn lookup(&self, asid: u16, vaddr: VirtAddr) -> Option<PhysAddr> {
        let vpn = vaddr.page_number(self.config.page_size).number();
        let set = self.set_index(vpn);
        for way in 0..self.config.ways {
            let idx = (set * self.config.ways as u64 + way as u64) as usize;
            if self.slots[idx] == Some((asid, vpn)) {
                return Some(self.slot_paddr(set, way));
            }
        }
        None
    }

    /// Removes the page containing `vaddr` in address space `asid` from the
    /// RestSeg (e.g. when it is swapped out). Returns `true` if it was
    /// present.
    pub fn remove(&mut self, asid: u16, vaddr: VirtAddr) -> bool {
        let vpn = vaddr.page_number(self.config.page_size).number();
        let set = self.set_index(vpn);
        for way in 0..self.config.ways {
            let idx = (set * self.config.ways as u64 + way as u64) as usize;
            if self.slots[idx] == Some((asid, vpn)) {
                self.slots[idx] = None;
                self.stats.removals.inc();
                return true;
            }
        }
        false
    }

    /// Physical address of the tag-array metadata for a set (the "RSW"
    /// structure whose growing footprint slows translation for large
    /// RestSegs, Fig. 19).
    pub fn tag_array_addr(&self, set: u64, group: u64) -> PhysAddr {
        self.base
            .add(self.config.size_bytes)
            .add(set * 64 * (self.config.ways as u64).div_ceil(8) + group * 64)
    }

    /// Size in bytes of the translation metadata (virtual tags for every
    /// slot), which grows linearly with the RestSeg size.
    pub fn metadata_bytes(&self) -> u64 {
        self.config.slots() * 8
    }
}

/// The Utopia allocator: an ordered list of RestSegs tried in turn, with
/// spill accounting toward the FlexSeg.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtopiaAllocator {
    segs: Vec<RestSeg>,
    /// Pages that spilled to the FlexSeg because every RestSeg collided.
    pub flexseg_spills: Counter,
}

impl UtopiaAllocator {
    /// Creates an allocator from a list of RestSegs.
    pub fn new(segs: Vec<RestSeg>) -> Self {
        UtopiaAllocator {
            segs,
            flexseg_spills: Counter::new(),
        }
    }

    /// The paper's Table 4 configuration: two 8 GB RestSegs (one of 4 KiB
    /// pages, one of 2 MiB pages), 16-way, carved out of physical memory
    /// starting at `base`.
    pub fn paper_default(base: PhysAddr) -> Self {
        const GB: u64 = 1024 * 1024 * 1024;
        let seg4k = RestSeg::new(UtopiaConfig::new(8 * GB, 16, PageSize::Size4K), base);
        let seg2m = RestSeg::new(
            UtopiaConfig::new(8 * GB, 16, PageSize::Size2M),
            base.add(9 * GB),
        );
        UtopiaAllocator::new(vec![seg4k, seg2m])
    }

    /// Access to the individual RestSegs.
    pub fn segments(&self) -> &[RestSeg] {
        &self.segs
    }

    /// Total bytes covered by all RestSegs.
    pub fn restseg_bytes(&self) -> u64 {
        self.segs.iter().map(|s| s.config().size_bytes).sum()
    }

    /// Attempts to place `vaddr` (a base page) into the first RestSeg with a
    /// free way. Returns the frame and the page size of the hosting segment,
    /// or `None` if every candidate set is full (FlexSeg fallback).
    pub fn try_place(
        &mut self,
        asid: u16,
        vaddr: VirtAddr,
        preferred: PageSize,
        stream: &mut KernelInstructionStream,
    ) -> Option<(PhysAddr, PageSize)> {
        // Try the segment matching the preferred size first, then the rest.
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..self.segs.len()).collect();
            idx.sort_by_key(|&i| (self.segs[i].config().page_size != preferred) as u8);
            idx
        };
        for i in order {
            let size = self.segs[i].config().page_size;
            if let Some(frame) = self.segs[i].try_place(asid, vaddr, stream) {
                return Some((frame, size));
            }
        }
        self.flexseg_spills.inc();
        None
    }

    /// Looks up `(asid, vaddr)` across every RestSeg.
    pub fn lookup(&self, asid: u16, vaddr: VirtAddr) -> Option<(PhysAddr, PageSize)> {
        self.segs
            .iter()
            .find_map(|s| s.lookup(asid, vaddr).map(|pa| (pa, s.config().page_size)))
    }

    /// Removes `(asid, vaddr)` from whichever RestSeg holds it.
    pub fn remove(&mut self, asid: u16, vaddr: VirtAddr) -> bool {
        self.segs.iter_mut().any(|s| s.remove(asid, vaddr))
    }

    /// Builds a kernel stream tagged as Utopia allocation work.
    pub fn new_stream() -> KernelInstructionStream {
        KernelInstructionStream::new(KernelRoutine::UtopiaAlloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn small_seg(ways: u32) -> RestSeg {
        RestSeg::new(
            UtopiaConfig::new(4 * MB, ways, PageSize::Size4K),
            PhysAddr::new(0x1_0000_0000),
        )
    }

    #[test]
    fn config_geometry() {
        let cfg = UtopiaConfig::new(32 * MB, 16, PageSize::Size4K);
        assert_eq!(cfg.slots(), 32 * MB / 4096);
        assert_eq!(cfg.sets() * 16, cfg.slots());
    }

    #[test]
    fn place_then_lookup_roundtrip() {
        let mut seg = small_seg(8);
        let mut s = UtopiaAllocator::new_stream();
        let va = VirtAddr::new(0x7000_1000);
        let pa = seg.try_place(1, va, &mut s).unwrap();
        assert_eq!(seg.lookup(1, va), Some(pa));
        assert!(pa.raw() >= 0x1_0000_0000);
        assert_eq!(seg.stats().placements.get(), 1);
    }

    #[test]
    fn placements_are_unique_frames() {
        let mut seg = small_seg(8);
        let mut s = UtopiaAllocator::new_stream();
        let mut frames = std::collections::HashSet::new();
        for i in 0..500u64 {
            if let Some(pa) = seg.try_place(1, VirtAddr::new(i * 4096), &mut s) {
                assert!(frames.insert(pa.raw()), "duplicate frame {pa}");
            }
        }
    }

    #[test]
    fn collisions_occur_when_set_fills() {
        // 1-way RestSeg with few sets: collisions are inevitable.
        let mut seg = RestSeg::new(
            UtopiaConfig::new(64 * 4096, 1, PageSize::Size4K),
            PhysAddr::new(0),
        );
        let mut s = UtopiaAllocator::new_stream();
        let mut failures = 0;
        for i in 0..256u64 {
            if seg.try_place(1, VirtAddr::new(i * 4096), &mut s).is_none() {
                failures += 1;
            }
        }
        assert!(failures > 0);
        assert_eq!(seg.stats().collisions.get(), failures);
        // Occupancy can never exceed 1.
        assert!(seg.occupancy() <= 1.0);
    }

    #[test]
    fn higher_associativity_reduces_collisions() {
        let mut low = RestSeg::new(
            UtopiaConfig::new(256 * 4096, 1, PageSize::Size4K),
            PhysAddr::new(0),
        );
        let mut high = RestSeg::new(
            UtopiaConfig::new(256 * 4096, 16, PageSize::Size4K),
            PhysAddr::new(0),
        );
        let mut s = UtopiaAllocator::new_stream();
        for i in 0..200u64 {
            let va = VirtAddr::new(i * 0x13_000);
            low.try_place(1, va, &mut s);
            high.try_place(1, va, &mut s);
        }
        assert!(high.stats().collisions.get() <= low.stats().collisions.get());
    }

    #[test]
    fn remove_frees_the_way() {
        let mut seg = RestSeg::new(
            UtopiaConfig::new(64 * 4096, 1, PageSize::Size4K),
            PhysAddr::new(0),
        );
        let mut s = UtopiaAllocator::new_stream();
        let va = VirtAddr::new(0x5000);
        seg.try_place(1, va, &mut s).unwrap();
        assert!(seg.remove(1, va));
        assert!(!seg.remove(1, va));
        // The slot can be reused.
        assert!(seg.try_place(1, va, &mut s).is_some());
    }

    #[test]
    fn occupancy_is_keyed_by_asid_and_va() {
        // Two address spaces at the same VA: both fit in one 2-way set,
        // occupy distinct frames, and removing one leaves the other's
        // residency — removal of a VA never crosses address spaces.
        let mut seg = small_seg(2);
        let mut s = UtopiaAllocator::new_stream();
        let va = VirtAddr::new(0x7000_1000);
        let pa1 = seg.try_place(1, va, &mut s).unwrap();
        let pa2 = seg.try_place(2, va, &mut s).unwrap();
        assert_ne!(pa1, pa2, "same VA in two ASIDs must get distinct frames");
        assert_eq!(seg.lookup(1, va), Some(pa1));
        assert_eq!(seg.lookup(2, va), Some(pa2));

        assert!(seg.remove(1, va));
        assert_eq!(seg.lookup(1, va), None);
        assert_eq!(
            seg.lookup(2, va),
            Some(pa2),
            "ASID 2's residency must survive ASID 1's reclaim of the same VA"
        );
        assert!(!seg.remove(1, va), "double-remove must not hit ASID 2");
        assert!(seg.remove(2, va));
    }

    #[test]
    fn allocator_spills_to_flexseg_when_full() {
        let seg = RestSeg::new(
            UtopiaConfig::new(8 * 4096, 1, PageSize::Size4K),
            PhysAddr::new(0),
        );
        let mut alloc = UtopiaAllocator::new(vec![seg]);
        let mut s = UtopiaAllocator::new_stream();
        let mut spilled = 0;
        for i in 0..64u64 {
            if alloc
                .try_place(1, VirtAddr::new(i * 4096), PageSize::Size4K, &mut s)
                .is_none()
            {
                spilled += 1;
            }
        }
        assert!(spilled > 0);
        assert_eq!(alloc.flexseg_spills.get(), spilled);
    }

    #[test]
    fn paper_default_has_two_segments() {
        let alloc = UtopiaAllocator::paper_default(PhysAddr::new(0x10_0000_0000));
        assert_eq!(alloc.segments().len(), 2);
        assert_eq!(alloc.restseg_bytes(), 16 * 1024 * 1024 * 1024);
    }

    #[test]
    fn metadata_grows_with_segment_size() {
        let small = RestSeg::new(
            UtopiaConfig::new(8 * MB, 16, PageSize::Size4K),
            PhysAddr::new(0),
        );
        let large = RestSeg::new(
            UtopiaConfig::new(64 * MB, 16, PageSize::Size4K),
            PhysAddr::new(0),
        );
        assert!(large.metadata_bytes() > small.metadata_bytes());
    }

    #[test]
    fn placement_stream_is_cheap_compared_to_buddy() {
        use crate::buddy::BuddyAllocator;
        let mut seg = small_seg(16);
        let mut utopia_stream = UtopiaAllocator::new_stream();
        seg.try_place(1, VirtAddr::new(0x9000), &mut utopia_stream)
            .unwrap();

        let mut buddy = BuddyAllocator::new(64 * MB);
        let mut buddy_stream = BuddyAllocator::new_alloc_stream();
        buddy.alloc_traced(0, Some(&mut buddy_stream)).unwrap();

        assert!(utopia_stream.instruction_count() < buddy_stream.instruction_count());
    }
}
