//! A slab allocator for kernel objects, imitating the Linux slab/SLUB
//! allocator that MimicOS uses to allocate page-table frames (Fig. 6, step 2).
//!
//! The slab allocator requests whole 4 KiB frames from the buddy allocator
//! and carves them into fixed-size objects. Page-table frames are themselves
//! 4 KiB, so each "slab" holds exactly one object in that configuration, but
//! the allocator also serves smaller kernel objects (VMA descriptors, swap
//! entries) used when emitting realistic kernel work.

use crate::buddy::BuddyAllocator;
use crate::kernel_stream::{KernelInstructionStream, KernelRoutine};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vm_types::{Counter, PhysAddr, VmResult};

/// A slab cache serving objects of one size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlabAllocator {
    object_bytes: u64,
    objects_per_slab: u64,
    /// Free objects ready to be handed out.
    free_objects: VecDeque<PhysAddr>,
    /// Slabs (4 KiB frames) owned by this cache, kept so they can be
    /// released on drop/teardown accounting.
    slabs: Vec<PhysAddr>,
    stats: SlabStats,
}

/// Slab allocator statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlabStats {
    /// Objects handed out.
    pub allocations: Counter,
    /// Objects returned.
    pub frees: Counter,
    /// New slabs requested from the buddy allocator.
    pub slab_refills: Counter,
}

impl SlabAllocator {
    /// Creates a slab cache for objects of `object_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `object_bytes` is zero or larger than 4 KiB.
    pub fn new(object_bytes: u64) -> Self {
        assert!(object_bytes > 0, "object size must be non-zero");
        assert!(
            object_bytes <= 4096,
            "objects larger than a frame are unsupported"
        );
        SlabAllocator {
            object_bytes,
            objects_per_slab: 4096 / object_bytes,
            free_objects: VecDeque::new(),
            slabs: Vec::new(),
            stats: SlabStats::default(),
        }
    }

    /// A slab cache for 4 KiB page-table frames.
    pub fn for_page_table_frames() -> Self {
        SlabAllocator::new(4096)
    }

    /// Object size served by this cache.
    pub fn object_bytes(&self) -> u64 {
        self.object_bytes
    }

    /// Statistics.
    pub fn stats(&self) -> &SlabStats {
        &self.stats
    }

    /// Number of objects currently sitting on the free list.
    pub fn free_object_count(&self) -> usize {
        self.free_objects.len()
    }

    /// Allocates one object, refilling from the buddy allocator if the free
    /// list is empty. Records the kernel work into `stream` when provided.
    ///
    /// # Errors
    ///
    /// Propagates [`vm_types::VmError::OutOfMemory`] from the buddy
    /// allocator when a refill is needed but physical memory is exhausted.
    pub fn alloc(
        &mut self,
        buddy: &mut BuddyAllocator,
        mut stream: Option<&mut KernelInstructionStream>,
    ) -> VmResult<PhysAddr> {
        if let Some(s) = stream.as_deref_mut() {
            // kmem_cache_alloc fast path.
            s.compute(25);
        }
        if self.free_objects.is_empty() {
            let slab = buddy.alloc_traced(0, stream.as_deref_mut())?;
            self.slabs.push(slab);
            self.stats.slab_refills.inc();
            for i in 0..self.objects_per_slab {
                self.free_objects.push_back(slab.add(i * self.object_bytes));
            }
            if let Some(s) = stream.as_deref_mut() {
                // Slab construction: initialize the freelist.
                s.compute(40);
                s.store(slab);
            }
        }
        let obj = self
            .free_objects
            .pop_front()
            .expect("free list refilled above");
        self.stats.allocations.inc();
        if let Some(s) = stream {
            s.load(obj);
        }
        Ok(obj)
    }

    /// Returns an object to the cache.
    pub fn free(&mut self, obj: PhysAddr, stream: Option<&mut KernelInstructionStream>) {
        self.free_objects.push_back(obj);
        self.stats.frees.inc();
        if let Some(s) = stream {
            s.compute(20);
            s.store(obj);
        }
    }

    /// Creates a kernel stream tagged as slab work.
    pub fn new_stream() -> KernelInstructionStream {
        KernelInstructionStream::new(KernelRoutine::SlabAlloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn allocates_distinct_objects() {
        let mut buddy = BuddyAllocator::new(16 * MB);
        let mut slab = SlabAllocator::new(256);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let obj = slab.alloc(&mut buddy, None).unwrap();
            assert!(seen.insert(obj.raw()));
        }
        assert_eq!(slab.stats().allocations.get(), 100);
    }

    #[test]
    fn refills_in_whole_frames() {
        let mut buddy = BuddyAllocator::new(16 * MB);
        let mut slab = SlabAllocator::new(256);
        // 4096/256 = 16 objects per slab: 17 allocations need 2 refills.
        for _ in 0..17 {
            slab.alloc(&mut buddy, None).unwrap();
        }
        assert_eq!(slab.stats().slab_refills.get(), 2);
    }

    #[test]
    fn freed_objects_are_reused() {
        let mut buddy = BuddyAllocator::new(16 * MB);
        let mut slab = SlabAllocator::for_page_table_frames();
        let a = slab.alloc(&mut buddy, None).unwrap();
        slab.free(a, None);
        let b = slab.alloc(&mut buddy, None).unwrap();
        assert_eq!(a, b);
        // Only one buddy frame was ever requested.
        assert_eq!(slab.stats().slab_refills.get(), 1);
    }

    #[test]
    fn page_table_frame_cache_uses_full_frames() {
        let slab = SlabAllocator::for_page_table_frames();
        assert_eq!(slab.object_bytes(), 4096);
    }

    #[test]
    fn traced_allocation_emits_work() {
        let mut buddy = BuddyAllocator::new(16 * MB);
        let mut slab = SlabAllocator::for_page_table_frames();
        let mut stream = SlabAllocator::new_stream();
        slab.alloc(&mut buddy, Some(&mut stream)).unwrap();
        assert!(stream.instruction_count() > 25);
        assert!(stream.memory_references() >= 1);
    }

    #[test]
    fn out_of_memory_propagates() {
        let mut buddy = BuddyAllocator::new(4096 * 2);
        let mut slab = SlabAllocator::for_page_table_frames();
        slab.alloc(&mut buddy, None).unwrap();
        slab.alloc(&mut buddy, None).unwrap();
        assert!(slab.alloc(&mut buddy, None).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_sized_objects_rejected() {
        let _ = SlabAllocator::new(0);
    }
}
