//! Virtual memory areas (VMAs) and the per-process VMA tree, imitating
//! Linux's `vm_area_struct` and `find_vma()`.
//!
//! The VMA tree is the first structure the page-fault handler consults
//! (Fig. 6, step "Find Virtual Memory Area"), and the distribution of VMA
//! sizes in a workload drives Midgard's frontend translation behaviour
//! (Fig. 17 and the BC VMA histogram of Fig. 18).

use crate::kernel_stream::KernelInstructionStream;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vm_types::{Histogram, PageSize, PhysAddr, VirtAddr, VmError, VmResult};

/// What backs a virtual memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmaKind {
    /// Anonymous memory (heap, stack, `mmap(MAP_ANONYMOUS)`).
    Anonymous,
    /// File-backed memory served through the page cache.
    FileBacked {
        /// Identifier of the backing file.
        file_id: u64,
    },
    /// DAX / direct-access memory (bypasses the page cache, eligible for
    /// 1 GiB mappings in the Fig. 6 flow).
    Dax,
}

impl VmaKind {
    /// `true` for anonymous memory.
    pub const fn is_anonymous(self) -> bool {
        matches!(self, VmaKind::Anonymous)
    }

    /// `true` for file-backed or DAX memory.
    pub const fn is_file_backed(self) -> bool {
        matches!(self, VmaKind::FileBacked { .. } | VmaKind::Dax)
    }
}

/// A virtual memory area: a contiguous virtual address range with uniform
/// backing and policy flags.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    /// Inclusive start of the range.
    pub start: VirtAddr,
    /// Exclusive end of the range.
    pub end: VirtAddr,
    /// Backing kind.
    pub kind: VmaKind,
    /// Mapped through hugetlbfs (explicit huge-page reservation via
    /// `mmap(MAP_HUGETLB)` / `shmget(SHM_HUGETLB)`).
    pub hugetlb: bool,
    /// 1 GiB allocation flags set (DAX or explicit request).
    pub gigantic_ok: bool,
    /// Eager paging requested (RMM-style: allocate the whole range up front).
    pub eager_paging: bool,
}

impl Vma {
    /// Creates an anonymous VMA covering `[start, start + len)`.
    pub fn anonymous(start: VirtAddr, len: u64) -> Self {
        Vma {
            start,
            end: start.add(len),
            kind: VmaKind::Anonymous,
            hugetlb: false,
            gigantic_ok: false,
            eager_paging: false,
        }
    }

    /// Creates a file-backed VMA covering `[start, start + len)`.
    pub fn file_backed(start: VirtAddr, len: u64, file_id: u64) -> Self {
        Vma {
            kind: VmaKind::FileBacked { file_id },
            ..Vma::anonymous(start, len)
        }
    }

    /// Length of the VMA in bytes.
    pub fn len(&self) -> u64 {
        self.end.offset_from(self.start)
    }

    /// `true` if the VMA covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if `addr` lies inside the VMA.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Number of base pages spanned by the VMA.
    pub fn base_pages(&self) -> u64 {
        self.len().div_ceil(PageSize::Size4K.bytes())
    }
}

/// The per-process tree of VMAs, keyed by start address.
///
/// # Examples
///
/// ```
/// use mimic_os::{Vma, VmaTree};
/// use vm_types::VirtAddr;
///
/// let mut tree = VmaTree::new();
/// tree.insert(Vma::anonymous(VirtAddr::new(0x1000), 0x4000)).unwrap();
/// assert!(tree.find(VirtAddr::new(0x2000)).is_some());
/// assert!(tree.find(VirtAddr::new(0x8000)).is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmaTree {
    vmas: BTreeMap<u64, Vma>,
}

impl VmaTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        VmaTree::default()
    }

    /// Number of VMAs.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// `true` if the tree holds no VMAs.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    /// Total bytes covered by all VMAs.
    pub fn total_bytes(&self) -> u64 {
        self.vmas.values().map(Vma::len).sum()
    }

    /// Inserts a VMA.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidVma`] if the VMA is empty or overlaps an
    /// existing one.
    pub fn insert(&mut self, vma: Vma) -> VmResult<()> {
        if vma.is_empty() {
            return Err(VmError::InvalidVma {
                reason: "zero-length region".to_string(),
            });
        }
        if self.overlaps(&vma) {
            return Err(VmError::InvalidVma {
                reason: format!("region {}..{} overlaps an existing vma", vma.start, vma.end),
            });
        }
        self.vmas.insert(vma.start.raw(), vma);
        Ok(())
    }

    fn overlaps(&self, vma: &Vma) -> bool {
        // Check the predecessor and any VMA starting inside the new range.
        if let Some((_, prev)) = self.vmas.range(..=vma.start.raw()).next_back() {
            if prev.end > vma.start {
                return true;
            }
        }
        self.vmas
            .range(vma.start.raw()..vma.end.raw())
            .next()
            .is_some()
    }

    /// Finds the VMA containing `addr`, imitating `find_vma()`.
    pub fn find(&self, addr: VirtAddr) -> Option<&Vma> {
        let (_, candidate) = self.vmas.range(..=addr.raw()).next_back()?;
        candidate.contains(addr).then_some(candidate)
    }

    /// Finds the VMA containing `addr` while recording the lookup work
    /// (tree descent) into a kernel instruction stream.
    pub fn find_traced(
        &self,
        addr: VirtAddr,
        stream: &mut KernelInstructionStream,
    ) -> Option<&Vma> {
        // Model the rb-tree / maple-tree descent: ~log2(n) node visits, each
        // a load plus a handful of compare/branch instructions.
        let depth = (self.vmas.len().max(1) as f64).log2().ceil() as u32 + 1;
        for level in 0..depth {
            stream.compute(8);
            stream.load(PhysAddr::new(0xFFFF_8800_0000_0000 + (level as u64) * 64));
        }
        self.find(addr)
    }

    /// Removes the VMA starting exactly at `start`, returning it.
    pub fn remove(&mut self, start: VirtAddr) -> Option<Vma> {
        self.vmas.remove(&start.raw())
    }

    /// Iterates over all VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Histogram of VMA sizes using the bucket bounds of the paper's
    /// Fig. 18: ≤4 KB, <128 KB, <256 KB, <512 KB, <1 MB, <8 MB, <16 MB,
    /// <32 MB, <1 GB, ≥1 GB (overflow bucket).
    pub fn size_histogram(&self) -> Histogram {
        const KB: u64 = 1024;
        const MB: u64 = 1024 * KB;
        const GB: u64 = 1024 * MB;
        let mut h = Histogram::new(&[
            4 * KB,
            128 * KB,
            256 * KB,
            512 * KB,
            MB,
            8 * MB,
            16 * MB,
            32 * MB,
            GB,
        ]);
        for vma in self.vmas.values() {
            h.record(vma.len());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_stream::KernelRoutine;

    fn va(x: u64) -> VirtAddr {
        VirtAddr::new(x)
    }

    #[test]
    fn insert_and_find() {
        let mut tree = VmaTree::new();
        tree.insert(Vma::anonymous(va(0x1000), 0x3000)).unwrap();
        tree.insert(Vma::file_backed(va(0x10_0000), 0x1000, 7))
            .unwrap();
        assert!(tree.find(va(0x1000)).is_some());
        assert!(tree.find(va(0x3fff)).is_some());
        assert!(tree.find(va(0x4000)).is_none());
        assert_eq!(
            tree.find(va(0x10_0800)).unwrap().kind,
            VmaKind::FileBacked { file_id: 7 }
        );
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn overlapping_insert_rejected() {
        let mut tree = VmaTree::new();
        tree.insert(Vma::anonymous(va(0x1000), 0x3000)).unwrap();
        assert!(tree.insert(Vma::anonymous(va(0x2000), 0x1000)).is_err());
        assert!(tree.insert(Vma::anonymous(va(0x0), 0x1001)).is_err());
        // Adjacent (non-overlapping) regions are fine.
        assert!(tree.insert(Vma::anonymous(va(0x4000), 0x1000)).is_ok());
    }

    #[test]
    fn zero_length_vma_rejected() {
        let mut tree = VmaTree::new();
        assert!(matches!(
            tree.insert(Vma::anonymous(va(0x1000), 0)),
            Err(VmError::InvalidVma { .. })
        ));
    }

    #[test]
    fn remove_returns_vma() {
        let mut tree = VmaTree::new();
        tree.insert(Vma::anonymous(va(0x1000), 0x1000)).unwrap();
        let vma = tree.remove(va(0x1000)).unwrap();
        assert_eq!(vma.len(), 0x1000);
        assert!(tree.is_empty());
    }

    #[test]
    fn vma_properties() {
        let vma = Vma::anonymous(va(0x1000), 0x2000);
        assert_eq!(vma.len(), 0x2000);
        assert_eq!(vma.base_pages(), 2);
        assert!(vma.contains(va(0x2fff)));
        assert!(!vma.contains(va(0x3000)));
        assert!(vma.kind.is_anonymous());
        assert!(!vma.kind.is_file_backed());
        assert!(VmaKind::Dax.is_file_backed());
    }

    #[test]
    fn traced_find_records_tree_descent() {
        let mut tree = VmaTree::new();
        for i in 0..64u64 {
            tree.insert(Vma::anonymous(va(0x1_0000 + i * 0x10_000), 0x1000))
                .unwrap();
        }
        let mut stream = KernelInstructionStream::new(KernelRoutine::FindVma);
        tree.find_traced(va(0x1_0000), &mut stream);
        assert!(
            stream.memory_references() >= 6,
            "log2(64)+1 levels expected"
        );
    }

    #[test]
    fn size_histogram_matches_fig18_buckets() {
        let mut tree = VmaTree::new();
        tree.insert(Vma::anonymous(va(0x1000), 4 * 1024)).unwrap();
        tree.insert(Vma::anonymous(va(0x100_0000), 64 * 1024))
            .unwrap();
        tree.insert(Vma::anonymous(va(0x2_0000_0000), 77 * 1024 * 1024 * 1024))
            .unwrap();
        let h = tree.size_histogram();
        assert_eq!(h.total(), 3);
        assert_eq!(h.bucket_counts()[0], 1); // 4 KB
        assert_eq!(h.bucket_counts()[1], 1); // 64 KB < 128 KB
        assert_eq!(*h.bucket_counts().last().unwrap(), 1); // 77 GB overflow
    }

    #[test]
    fn total_bytes_sums_all_vmas() {
        let mut tree = VmaTree::new();
        tree.insert(Vma::anonymous(va(0x1000), 0x1000)).unwrap();
        tree.insert(Vma::anonymous(va(0x10_000), 0x2000)).unwrap();
        assert_eq!(tree.total_bytes(), 0x3000);
    }
}
