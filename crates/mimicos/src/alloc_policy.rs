//! Physical memory allocation policies evaluated by the paper (Fig. 16):
//! plain 4 KiB buddy allocation, the Linux-like THP policy, conservative and
//! aggressive reservation-based THP, eager paging (RMM) and the Utopia
//! restrictive-segment allocator.

use crate::utopia::UtopiaConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use vm_types::PageSize;

/// The physical memory allocation policy the kernel applies on page faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AllocationPolicy {
    /// `BD`: the buddy allocator only ever provides 4 KiB pages.
    BuddyFourK,
    /// Linux-like transparent huge pages: try a 2 MiB allocation on the
    /// first fault of an eligible region, fall back to 4 KiB, and let
    /// khugepaged collapse later (the paper's baseline MimicOS policy).
    #[default]
    LinuxThp,
    /// `CR-THP`: reservation-based THP that promotes a reserved 2 MiB region
    /// once more than 50 % of its 4 KiB pages are populated.
    ConservativeReservationThp,
    /// `AR-THP`: reservation-based THP that promotes once more than 10 % of
    /// the region is populated.
    AggressiveReservationThp,
    /// RMM-style eager paging: allocate the entire VMA as the largest
    /// available contiguous physical ranges at `mmap` time.
    EagerPaging,
    /// `UT`: Utopia restrictive segments with the given RestSeg geometry.
    Utopia(UtopiaConfig),
}

impl AllocationPolicy {
    /// The Utopia configuration the paper finds best for LLM serving
    /// (32 MB RestSeg, 16-way, 4 KiB pages).
    pub fn utopia_32mb_16way() -> Self {
        AllocationPolicy::Utopia(UtopiaConfig::new(32 * 1024 * 1024, 16, PageSize::Size4K))
    }

    /// `true` if the policy may create 2 MiB mappings at fault time.
    pub fn allocates_huge_pages(&self) -> bool {
        matches!(
            self,
            AllocationPolicy::LinuxThp
                | AllocationPolicy::ConservativeReservationThp
                | AllocationPolicy::AggressiveReservationThp
        )
    }

    /// `true` for the reservation-based THP variants.
    pub fn is_reservation_based(&self) -> bool {
        matches!(
            self,
            AllocationPolicy::ConservativeReservationThp
                | AllocationPolicy::AggressiveReservationThp
        )
    }

    /// The promotion threshold of reservation-based policies.
    pub fn reservation_threshold(&self) -> Option<f64> {
        match self {
            AllocationPolicy::ConservativeReservationThp => Some(0.5),
            AllocationPolicy::AggressiveReservationThp => Some(0.1),
            _ => None,
        }
    }

    /// Short label used in result tables (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            AllocationPolicy::BuddyFourK => "BD".to_string(),
            AllocationPolicy::LinuxThp => "THP".to_string(),
            AllocationPolicy::ConservativeReservationThp => "CR-THP".to_string(),
            AllocationPolicy::AggressiveReservationThp => "AR-THP".to_string(),
            AllocationPolicy::EagerPaging => "Eager".to_string(),
            AllocationPolicy::Utopia(cfg) => {
                format!("UT-{}MB/{}-way", cfg.size_bytes / (1024 * 1024), cfg.ways)
            }
        }
    }
}

impl fmt::Display for AllocationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(AllocationPolicy::BuddyFourK.label(), "BD");
        assert_eq!(
            AllocationPolicy::ConservativeReservationThp.label(),
            "CR-THP"
        );
        assert_eq!(AllocationPolicy::AggressiveReservationThp.label(), "AR-THP");
        assert_eq!(
            AllocationPolicy::utopia_32mb_16way().label(),
            "UT-32MB/16-way"
        );
    }

    #[test]
    fn huge_page_capability() {
        assert!(!AllocationPolicy::BuddyFourK.allocates_huge_pages());
        assert!(AllocationPolicy::LinuxThp.allocates_huge_pages());
        assert!(AllocationPolicy::AggressiveReservationThp.allocates_huge_pages());
    }

    #[test]
    fn reservation_thresholds() {
        assert_eq!(
            AllocationPolicy::ConservativeReservationThp.reservation_threshold(),
            Some(0.5)
        );
        assert_eq!(
            AllocationPolicy::AggressiveReservationThp.reservation_threshold(),
            Some(0.1)
        );
        assert_eq!(AllocationPolicy::LinuxThp.reservation_threshold(), None);
    }

    #[test]
    fn default_is_linux_thp() {
        assert_eq!(AllocationPolicy::default(), AllocationPolicy::LinuxThp);
    }

    #[test]
    fn display_uses_label() {
        assert_eq!(AllocationPolicy::EagerPaging.to_string(), "Eager");
    }
}
