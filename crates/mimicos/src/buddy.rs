//! The buddy physical-frame allocator, imitating Linux's zoned buddy
//! allocator, with controllable external fragmentation.
//!
//! The allocator manages physical memory as 4 KiB base frames grouped into
//! power-of-two blocks up to 1 GiB (order 18). Allocation requests of a
//! given order split larger blocks; frees coalesce buddies back together.
//!
//! Two features matter for the paper's experiments:
//!
//! * **Fragmentation injection** ([`BuddyAllocator::fragment`]): the paper
//!   defines memory fragmentation as the percentage of free 2 MB regions out
//!   of all 2 MB regions and sweeps it in Figs. 13 and 21. The allocator can
//!   be pre-fragmented to a target level by pinning single 4 KiB frames
//!   inside a fraction of the 2 MB blocks.
//! * **Kernel-work emission**: every allocation/free can report the
//!   free-list manipulations it performed as a [`KernelInstructionStream`]
//!   so the framework can charge the core model for them.

use crate::kernel_stream::{KernelInstructionStream, KernelRoutine};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use vm_types::{Counter, DetRng, PageSize, PhysAddr, VmError, VmResult};

/// Order of a 4 KiB frame.
pub const ORDER_4K: u32 = 0;
/// Order of a 2 MiB block.
pub const ORDER_2M: u32 = 9;
/// Order of a 1 GiB block.
pub const ORDER_1G: u32 = 18;
/// Largest order managed by the allocator.
pub const MAX_ORDER: u32 = ORDER_1G;

const FRAME_BYTES: u64 = 4096;

/// Statistics maintained by the buddy allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuddyStats {
    /// Successful allocations, by any order.
    pub allocations: Counter,
    /// Frees.
    pub frees: Counter,
    /// Block splits performed while allocating.
    pub splits: Counter,
    /// Buddy merges performed while freeing.
    pub merges: Counter,
    /// Allocation requests that could not be satisfied.
    pub failures: Counter,
    /// Allocations that had to fall back to a smaller order than requested.
    pub fallbacks: Counter,
}

/// The buddy allocator.
///
/// # Examples
///
/// ```
/// use mimic_os::buddy::{BuddyAllocator, ORDER_2M};
///
/// let mut buddy = BuddyAllocator::new(64 * 1024 * 1024); // 64 MB
/// let frame = buddy.alloc(0).unwrap();
/// let huge = buddy.alloc(ORDER_2M).unwrap();
/// buddy.free(frame, 0).unwrap();
/// buddy.free(huge, ORDER_2M).unwrap();
/// assert_eq!(buddy.free_bytes(), 64 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuddyAllocator {
    total_frames: u64,
    /// Free lists: for each order, the set of free block start frames.
    free_lists: Vec<BTreeSet<u64>>,
    /// Allocated blocks: start frame → order (for validation on free).
    allocated: BTreeMap<u64, u32>,
    free_frames: u64,
    stats: BuddyStats,
    /// Frames pinned by fragmentation injection (never freed by callers).
    pinned: Vec<u64>,
}

impl BuddyAllocator {
    /// Creates an allocator managing `capacity_bytes` of physical memory
    /// starting at physical address 0.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is not a multiple of 4 KiB or is zero.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "capacity must be non-zero");
        assert_eq!(
            capacity_bytes % FRAME_BYTES,
            0,
            "capacity must be a multiple of 4 KiB"
        );
        let total_frames = capacity_bytes / FRAME_BYTES;
        let mut alloc = BuddyAllocator {
            total_frames,
            free_lists: vec![BTreeSet::new(); (MAX_ORDER + 1) as usize],
            allocated: BTreeMap::new(),
            free_frames: total_frames,
            stats: BuddyStats::default(),
            pinned: Vec::new(),
        };
        // Seed the free lists with the largest blocks that fit.
        let mut frame = 0;
        while frame < total_frames {
            let mut order = MAX_ORDER;
            loop {
                let block = 1u64 << order;
                if frame % block == 0 && frame + block <= total_frames {
                    break;
                }
                order -= 1;
            }
            alloc.free_lists[order as usize].insert(frame);
            frame += 1 << order;
        }
        alloc
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_frames * FRAME_BYTES
    }

    /// Currently free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free_frames * FRAME_BYTES
    }

    /// Fraction of memory currently in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        1.0 - self.free_frames as f64 / self.total_frames as f64
    }

    /// Allocator statistics.
    pub fn stats(&self) -> &BuddyStats {
        &self.stats
    }

    /// Number of free blocks of exactly the given order currently on the
    /// free list (not counting larger blocks that could be split).
    pub fn free_blocks_of_order(&self, order: u32) -> usize {
        self.free_lists[order as usize].len()
    }

    /// Whether a block of the given order could be allocated right now.
    pub fn can_alloc(&self, order: u32) -> bool {
        (order..=MAX_ORDER).any(|o| !self.free_lists[o as usize].is_empty())
    }

    /// Number of *available* 2 MiB regions: free blocks of order ≥ 9,
    /// counted in units of 2 MiB. This is the numerator of the paper's
    /// fragmentation metric.
    pub fn available_2mb_regions(&self) -> u64 {
        (ORDER_2M..=MAX_ORDER)
            .map(|o| self.free_lists[o as usize].len() as u64 * (1u64 << (o - ORDER_2M)))
            .sum()
    }

    /// Total number of 2 MiB regions in the managed memory.
    pub fn total_2mb_regions(&self) -> u64 {
        self.total_frames >> ORDER_2M
    }

    /// The paper's memory-fragmentation metric: percentage of 2 MiB regions
    /// that are fully free, in `[0, 1]`.
    pub fn huge_page_availability(&self) -> f64 {
        if self.total_2mb_regions() == 0 {
            return 0.0;
        }
        self.available_2mb_regions() as f64 / self.total_2mb_regions() as f64
    }

    /// The sizes (in bytes) of the `n` largest free contiguous regions,
    /// in descending order — used by RMM's eager-paging fragmentation metric.
    pub fn largest_free_regions(&self, n: usize) -> Vec<u64> {
        let mut sizes: Vec<u64> = (0..=MAX_ORDER)
            .flat_map(|o| {
                self.free_lists[o as usize]
                    .iter()
                    .map(move |_| (1u64 << o) * FRAME_BYTES)
            })
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes.truncate(n);
        sizes
    }

    /// Allocates a block of `2^order` frames, splitting larger blocks as
    /// needed. Returns the physical address of the block.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] when no block of the requested order
    /// (or larger) is free.
    pub fn alloc(&mut self, order: u32) -> VmResult<PhysAddr> {
        self.alloc_traced(order, None)
    }

    /// Like [`BuddyAllocator::alloc`], recording the free-list work into the
    /// supplied kernel instruction stream.
    pub fn alloc_traced(
        &mut self,
        order: u32,
        mut stream: Option<&mut KernelInstructionStream>,
    ) -> VmResult<PhysAddr> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        if let Some(s) = stream.as_deref_mut() {
            // Fast-path bookkeeping of alloc_pages(): gfp checks, zone
            // selection, per-cpu list check.
            s.compute(60);
        }
        // Find the smallest order with a free block.
        let found = (order..=MAX_ORDER).find(|&o| !self.free_lists[o as usize].is_empty());
        let Some(mut cur_order) = found else {
            self.stats.failures.inc();
            return Err(VmError::OutOfMemory {
                requested: (1u64 << order) * FRAME_BYTES,
                free: self.free_bytes(),
            });
        };
        let frame = *self.free_lists[cur_order as usize]
            .iter()
            .next()
            .expect("free list non-empty");
        self.free_lists[cur_order as usize].remove(&frame);
        if let Some(s) = stream.as_deref_mut() {
            s.load(self.freelist_node_addr(frame));
        }
        // Split down to the requested order.
        while cur_order > order {
            cur_order -= 1;
            let buddy = frame + (1u64 << cur_order);
            self.free_lists[cur_order as usize].insert(buddy);
            self.stats.splits.inc();
            if let Some(s) = stream.as_deref_mut() {
                s.compute(15);
                s.store(self.freelist_node_addr(buddy));
            }
        }
        self.allocated.insert(frame, order);
        self.free_frames -= 1 << order;
        self.stats.allocations.inc();
        Ok(PhysAddr::new(frame * FRAME_BYTES))
    }

    /// Allocates preferring `order`, falling back to progressively smaller
    /// orders down to `min_order`. Returns the block address and the order
    /// actually obtained.
    pub fn alloc_with_fallback(
        &mut self,
        order: u32,
        min_order: u32,
        stream: Option<&mut KernelInstructionStream>,
    ) -> VmResult<(PhysAddr, u32)> {
        let mut stream = stream;
        for o in (min_order..=order).rev() {
            if self.can_alloc(o) {
                let addr = self.alloc_traced(o, stream.as_deref_mut())?;
                if o != order {
                    self.stats.fallbacks.inc();
                }
                return Ok((addr, o));
            }
        }
        self.stats.failures.inc();
        Err(VmError::OutOfMemory {
            requested: (1u64 << min_order) * FRAME_BYTES,
            free: self.free_bytes(),
        })
    }

    /// Splits the *allocated* block covering `addr` into individually
    /// allocated 4 KiB frames (pure accounting — no frame becomes free).
    /// This is the allocator side of THP demotion (`split_huge_page`):
    /// after the split, each base frame can be freed on its own as reclaim
    /// swaps individual pages out, and later frees coalesce back normally.
    /// Works on any block order, so a 2 MiB mapping carved out of a larger
    /// eager-paging allocation splits its whole containing block.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidFree`] if no allocated block covers
    /// `addr` (e.g. a Utopia RestSeg frame outside the buddy's memory).
    pub fn split_allocated(&mut self, addr: PhysAddr) -> VmResult<()> {
        let frame = addr.raw() / FRAME_BYTES;
        let Some((&start, &order)) = self
            .allocated
            .range(..=frame)
            .next_back()
            .filter(|(&start, &order)| frame < start + (1u64 << order))
        else {
            return Err(VmError::InvalidFree { paddr: addr });
        };
        if order == 0 {
            return Ok(()); // already a base frame
        }
        self.allocated.remove(&start);
        for i in 0..(1u64 << order) {
            self.allocated.insert(start + i, 0);
        }
        // Shattering an order-k block into base frames is 2^k - 1 buddy
        // splits, mirroring the 2^k - 1 merges the frees will record.
        self.stats.splits.add((1u64 << order) - 1);
        Ok(())
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`] with
    /// the same order, coalescing buddies.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidFree`] if the block was not allocated with
    /// that order.
    pub fn free(&mut self, addr: PhysAddr, order: u32) -> VmResult<()> {
        self.free_traced(addr, order, None)
    }

    /// Like [`BuddyAllocator::free`], recording the free-list work.
    pub fn free_traced(
        &mut self,
        addr: PhysAddr,
        order: u32,
        mut stream: Option<&mut KernelInstructionStream>,
    ) -> VmResult<()> {
        let frame = addr.raw() / FRAME_BYTES;
        match self.allocated.get(&frame) {
            Some(&o) if o == order => {}
            _ => return Err(VmError::InvalidFree { paddr: addr }),
        }
        self.allocated.remove(&frame);
        self.free_frames += 1 << order;
        self.stats.frees.inc();
        if let Some(s) = stream.as_deref_mut() {
            s.compute(40);
        }

        // Coalesce with the buddy while possible.
        let mut frame = frame;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = frame ^ (1u64 << order);
            if self.free_lists[order as usize].remove(&buddy) {
                self.stats.merges.inc();
                frame = frame.min(buddy);
                order += 1;
                if let Some(s) = stream.as_deref_mut() {
                    s.compute(10);
                    s.store(self.freelist_node_addr(frame));
                }
            } else {
                break;
            }
        }
        self.free_lists[order as usize].insert(frame);
        if let Some(s) = stream {
            s.store(self.freelist_node_addr(frame));
        }
        Ok(())
    }

    /// Pre-fragments memory so that only `target_free_fraction` of the 2 MiB
    /// regions remain fully free (the paper's fragmentation knob). This pins
    /// one 4 KiB frame inside each sacrificed 2 MiB region.
    ///
    /// Fragmentation can only be increased (the fraction can only go down);
    /// calling with a fraction above the current availability is a no-op.
    pub fn fragment(&mut self, target_free_fraction: f64, rng: &mut DetRng) {
        let target_free_fraction = target_free_fraction.clamp(0.0, 1.0);
        let total = self.total_2mb_regions();
        let target_free = (total as f64 * target_free_fraction).round() as u64;
        // Candidate regions: all currently fully-free 2 MiB regions.
        let mut candidates: Vec<u64> = Vec::new();
        for order in ORDER_2M..=MAX_ORDER {
            for &start in &self.free_lists[order as usize] {
                let regions = 1u64 << (order - ORDER_2M);
                for r in 0..regions {
                    candidates.push(start + r * (1 << ORDER_2M));
                }
            }
        }
        let currently_free = candidates.len() as u64;
        if currently_free <= target_free {
            return;
        }
        let to_break = (currently_free - target_free) as usize;
        rng.shuffle(&mut candidates);
        let victims: Vec<u64> = candidates.into_iter().take(to_break).collect();
        for region_start in victims {
            // Pin one 4 KiB frame at a random offset inside the region.
            let offset = rng.gen_range(0, 512);
            if let Some(addr) = self.alloc_specific_frame(region_start + offset) {
                self.pinned.push(addr.raw() / FRAME_BYTES);
            }
        }
    }

    /// Allocates one specific 4 KiB frame by splitting whatever free block
    /// contains it. Returns `None` if the frame is not currently free.
    fn alloc_specific_frame(&mut self, frame: u64) -> Option<PhysAddr> {
        // Find the free block containing `frame`.
        let mut containing: Option<(u32, u64)> = None;
        for order in 0..=MAX_ORDER {
            let block = 1u64 << order;
            let start = frame & !(block - 1);
            if self.free_lists[order as usize].contains(&start) {
                containing = Some((order, start));
                break;
            }
        }
        let (order, start) = containing?;
        self.free_lists[order as usize].remove(&start);
        // Split repeatedly, keeping the half that contains `frame`.
        let mut cur_order = order;
        let mut cur_start = start;
        while cur_order > 0 {
            cur_order -= 1;
            let half = 1u64 << cur_order;
            let (keep, give) = if frame < cur_start + half {
                (cur_start, cur_start + half)
            } else {
                (cur_start + half, cur_start)
            };
            self.free_lists[cur_order as usize].insert(give);
            self.stats.splits.inc();
            cur_start = keep;
        }
        debug_assert_eq!(cur_start, frame);
        self.allocated.insert(frame, 0);
        self.free_frames -= 1;
        Some(PhysAddr::new(frame * FRAME_BYTES))
    }

    /// Physical address of the free-list node metadata for a block starting
    /// at `frame` (the `struct page` of its first frame). Used to emit
    /// realistic kernel memory references.
    fn freelist_node_addr(&self, frame: u64) -> PhysAddr {
        // struct page array lives at the top of physical memory in the model:
        // 64 bytes per frame.
        PhysAddr::new(self.total_frames * FRAME_BYTES + frame * 64)
    }

    /// Builds a kernel stream describing a standalone buddy allocation, for
    /// callers that want the work without performing it inline.
    pub fn new_alloc_stream() -> KernelInstructionStream {
        KernelInstructionStream::new(KernelRoutine::BuddyAlloc)
    }
}

/// Converts a page size to its buddy order.
pub fn order_for(size: PageSize) -> u32 {
    size.order_4k()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn fresh_allocator_is_fully_free() {
        let b = BuddyAllocator::new(256 * MB);
        assert_eq!(b.free_bytes(), 256 * MB);
        assert_eq!(b.utilization(), 0.0);
        assert!((b.huge_page_availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_allocated_lets_base_frames_free_individually() {
        let mut b = BuddyAllocator::new(64 * MB);
        let huge = b.alloc(ORDER_2M).unwrap();
        // Whole-block accounting: freeing a 4 KiB piece is invalid...
        assert!(b.free(huge, 0).is_err());
        b.split_allocated(huge).unwrap();
        // ...until the block is split; then each piece frees on its own.
        // A second split is a no-op (the frame is already order 0).
        assert!(b.split_allocated(huge).is_ok());
        let free_before = b.free_bytes();
        for i in 0..512u64 {
            b.free(huge.add(i * 4096), 0).unwrap();
        }
        assert_eq!(b.free_bytes(), free_before + 2 * MB);
        // The pieces coalesced back: the full 2 MiB block is allocatable.
        assert!(b.can_alloc(ORDER_2M));
        // An interior address of a larger block splits the whole block.
        let big = b.alloc(ORDER_2M + 2).unwrap();
        b.split_allocated(big.add(3 * 2 * MB)).unwrap();
        b.free(big.add(5 * 4096), 0).unwrap();
        // Addresses the buddy does not manage are rejected.
        assert!(b.split_allocated(PhysAddr::new(1 << 40)).is_err());
    }

    #[test]
    fn alloc_free_roundtrip_restores_capacity() {
        let mut b = BuddyAllocator::new(64 * MB);
        let a = b.alloc(0).unwrap();
        let c = b.alloc(ORDER_2M).unwrap();
        assert_eq!(b.free_bytes(), 64 * MB - 4096 - 2 * MB);
        b.free(a, 0).unwrap();
        b.free(c, ORDER_2M).unwrap();
        assert_eq!(b.free_bytes(), 64 * MB);
        // After coalescing everything the allocator must again be able to
        // hand out the largest block it started with.
        assert!(b.can_alloc(ORDER_2M));
    }

    #[test]
    fn allocations_are_aligned_to_their_order() {
        let mut b = BuddyAllocator::new(512 * MB);
        let huge = b.alloc(ORDER_2M).unwrap();
        assert!(huge.is_aligned(PageSize::Size2M));
        let frame = b.alloc(0).unwrap();
        assert!(frame.is_aligned(PageSize::Size4K));
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut b = BuddyAllocator::new(16 * MB);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let a = b.alloc(0).unwrap();
            assert!(seen.insert(a.raw()), "frame {a} handed out twice");
        }
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut b = BuddyAllocator::new(8 * MB);
        let mut held = Vec::new();
        loop {
            match b.alloc(ORDER_2M) {
                Ok(a) => held.push(a),
                Err(VmError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(held.len(), 4);
        assert_eq!(b.stats().failures.get(), 1);
    }

    #[test]
    fn double_free_is_rejected() {
        let mut b = BuddyAllocator::new(8 * MB);
        let a = b.alloc(0).unwrap();
        b.free(a, 0).unwrap();
        assert!(matches!(b.free(a, 0), Err(VmError::InvalidFree { .. })));
    }

    #[test]
    fn wrong_order_free_is_rejected() {
        let mut b = BuddyAllocator::new(8 * MB);
        let a = b.alloc(ORDER_2M).unwrap();
        assert!(matches!(b.free(a, 0), Err(VmError::InvalidFree { .. })));
    }

    #[test]
    fn splitting_and_merging_are_symmetric() {
        let mut b = BuddyAllocator::new(4 * MB);
        let a = b.alloc(0).unwrap();
        let splits = b.stats().splits.get();
        assert!(splits > 0);
        b.free(a, 0).unwrap();
        assert_eq!(b.stats().merges.get(), splits);
    }

    #[test]
    fn fallback_allocation_reports_actual_order() {
        let mut b = BuddyAllocator::new(4 * MB);
        // Fragment: pin a frame so no full 2MB block exists in one region.
        let mut rng = DetRng::new(1);
        b.fragment(0.0, &mut rng);
        let (_, order) = b.alloc_with_fallback(ORDER_2M, 0, None).unwrap();
        assert!(order < ORDER_2M);
        assert!(b.stats().fallbacks.get() > 0);
    }

    #[test]
    fn fragmentation_hits_target() {
        let mut b = BuddyAllocator::new(512 * MB);
        let mut rng = DetRng::new(7);
        b.fragment(0.25, &mut rng);
        let avail = b.huge_page_availability();
        assert!((avail - 0.25).abs() < 0.02, "availability {avail}");
        // Fragmenting "up" is a no-op.
        b.fragment(0.9, &mut rng);
        assert!(b.huge_page_availability() <= 0.26);
    }

    #[test]
    fn fragmentation_preserves_most_capacity() {
        let mut b = BuddyAllocator::new(512 * MB);
        let mut rng = DetRng::new(7);
        b.fragment(0.5, &mut rng);
        // Only one 4KB frame per broken 2MB region is pinned.
        let pinned_bytes = 512 * MB - b.free_bytes();
        assert!(pinned_bytes <= (b.total_2mb_regions() / 2 + 1) * 4096);
    }

    #[test]
    fn traced_alloc_emits_memory_references() {
        let mut b = BuddyAllocator::new(64 * MB);
        let mut stream = KernelInstructionStream::new(KernelRoutine::BuddyAlloc);
        b.alloc_traced(0, Some(&mut stream)).unwrap();
        assert!(stream.instruction_count() > 0);
        assert!(stream.memory_references() > 0);
    }

    #[test]
    fn largest_free_regions_sorted_descending() {
        let mut b = BuddyAllocator::new(64 * MB);
        let _ = b.alloc(0).unwrap();
        let regions = b.largest_free_regions(5);
        assert!(!regions.is_empty());
        for w in regions.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn available_2mb_counts_larger_blocks() {
        let b = BuddyAllocator::new(64 * MB);
        // 64 MB entirely free => 32 available 2MB regions.
        assert_eq!(b.available_2mb_regions(), 32);
        assert_eq!(b.total_2mb_regions(), 32);
    }

    #[test]
    fn order_for_matches_page_sizes() {
        assert_eq!(order_for(PageSize::Size4K), 0);
        assert_eq!(order_for(PageSize::Size2M), 9);
        assert_eq!(order_for(PageSize::Size1G), 18);
    }
}
