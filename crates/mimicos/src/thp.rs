//! Transparent huge pages: the Linux-like THP fault policy, the
//! `khugepaged` background collapser, hugetlbfs reservations and
//! reservation-based THP (Navarro et al., OSDI 2002), which the paper
//! evaluates as CR-THP / AR-THP in Fig. 16.

use crate::buddy::{BuddyAllocator, ORDER_2M};
use crate::kernel_stream::{KernelInstructionStream, KernelRoutine};
use crate::process::Process;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use vm_types::{Counter, PageSize, PhysAddr, VirtAddr};

/// System-wide THP mode, mirroring
/// `/sys/kernel/mm/transparent_hugepage/enabled`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThpMode {
    /// Never allocate huge pages transparently.
    Never,
    /// Allocate a huge page on fault whenever possible (Linux `always`).
    Always,
    /// Only `madvise`d VMAs get huge pages; in the model this behaves like
    /// `Never` for ordinary VMAs and `Always` for VMAs with `hugetlb` set.
    Madvise,
}

/// Configuration of the THP machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThpConfig {
    /// System-wide mode.
    pub mode: ThpMode,
    /// Number of pre-zeroed 2 MiB pages kept ready by the background zeroing
    /// thread. A fault that finds one skips the zeroing cost.
    pub zeroed_pool_capacity: u32,
    /// How many 2 MiB regions khugepaged scans per invocation.
    pub khugepaged_scan_batch: usize,
    /// Minimum fraction of 4 KiB pages present in a region before khugepaged
    /// collapses it (Linux default: about 1/2 with `max_ptes_none`).
    pub khugepaged_collapse_threshold: f64,
}

impl ThpConfig {
    /// Linux-like defaults with THP enabled.
    pub fn linux_default() -> Self {
        ThpConfig {
            mode: ThpMode::Always,
            zeroed_pool_capacity: 8,
            khugepaged_scan_batch: 8,
            khugepaged_collapse_threshold: 0.5,
        }
    }

    /// THP disabled.
    pub fn disabled() -> Self {
        ThpConfig {
            mode: ThpMode::Never,
            ..ThpConfig::linux_default()
        }
    }
}

impl Default for ThpConfig {
    fn default() -> Self {
        ThpConfig::linux_default()
    }
}

/// The pool of pre-zeroed 2 MiB pages maintained by a background zeroing
/// thread. Faults that can take a page from the pool skip the ~2 MiB memset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ZeroedPagePool {
    pages: Vec<PhysAddr>,
    capacity: u32,
    /// Pages handed out from the pool (zeroing skipped).
    pub pool_hits: Counter,
    /// Requests that found the pool empty (zeroing paid inline).
    pub pool_misses: Counter,
}

impl ZeroedPagePool {
    /// Creates a pool with the given capacity.
    pub fn new(capacity: u32) -> Self {
        ZeroedPagePool {
            capacity,
            ..ZeroedPagePool::default()
        }
    }

    /// Takes a pre-zeroed page if one is available.
    pub fn take(&mut self) -> Option<PhysAddr> {
        match self.pages.pop() {
            Some(p) => {
                self.pool_hits.inc();
                Some(p)
            }
            None => {
                self.pool_misses.inc();
                None
            }
        }
    }

    /// Refills the pool from the buddy allocator (background work, not
    /// charged to any fault).
    pub fn refill(&mut self, buddy: &mut BuddyAllocator) {
        while (self.pages.len() as u32) < self.capacity {
            match buddy.alloc(ORDER_2M) {
                Ok(p) => self.pages.push(p),
                Err(_) => break,
            }
        }
    }

    /// Number of zeroed pages currently pooled.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` when no zeroed pages are pooled.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// One region collapse performed by khugepaged: the 4 KiB mappings that
/// were removed (whose frames were freed — any cached translation of them
/// is stale and must be shot down) and the 2 MiB mapping that replaced
/// them on a *new* physical frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollapseEvent {
    /// The huge mapping now covering the region.
    pub huge: crate::fault::Mapping,
    /// The base mappings the collapse removed and copied out of.
    pub removed: Vec<crate::fault::Mapping>,
}

/// The khugepaged background daemon: scans process address spaces and
/// collapses runs of 4 KiB pages into 2 MiB pages (Fig. 6's "KHugePage
/// Scanning" box).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KhugepagedDaemon {
    /// Regions (2 MiB-aligned virtual addresses) queued for scanning.
    queue: VecDeque<VirtAddr>,
    /// Successful collapses performed.
    pub collapses: Counter,
    /// Regions scanned but not collapsed.
    pub rejected_scans: Counter,
}

impl KhugepagedDaemon {
    /// Creates an idle daemon.
    pub fn new() -> Self {
        KhugepagedDaemon::default()
    }

    /// Notifies the daemon that a 4 KiB page was faulted into the 2 MiB
    /// region containing `addr` (Linux calls this from the fault path).
    pub fn notify(&mut self, addr: VirtAddr) {
        let region = addr.page_base(PageSize::Size2M);
        if !self.queue.contains(&region) {
            self.queue.push_back(region);
        }
    }

    /// Number of regions pending scan.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Scans up to `config.khugepaged_scan_batch` queued regions of
    /// `process`, collapsing those whose 4 KiB population exceeds the
    /// threshold and for which a free 2 MiB page can be allocated. Returns
    /// the kernel instruction stream describing the work (for injection)
    /// and one [`CollapseEvent`] per collapsed region — the caller must
    /// shoot down the removed base translations (their frames were freed)
    /// and install the replacement huge mapping.
    pub fn scan(
        &mut self,
        config: &ThpConfig,
        process: &mut Process,
        buddy: &mut BuddyAllocator,
    ) -> (KernelInstructionStream, Vec<CollapseEvent>) {
        let mut stream = KernelInstructionStream::new(KernelRoutine::Khugepaged);
        let mut collapses = Vec::new();
        for _ in 0..config.khugepaged_scan_batch {
            let Some(region) = self.queue.pop_front() else {
                break;
            };
            // Scanning the 512 PTEs of the region.
            stream.compute(512 * 4);
            for i in 0..8u64 {
                stream.load(PhysAddr::new(0xFFFF_B000_0000_0000 + i * 64));
            }
            let present = process.mapped_4k_in_region(region);
            let threshold = (PageSize::Size2M.base_pages() as f64
                * config.khugepaged_collapse_threshold) as u64;
            if present == 0 || present < threshold {
                self.rejected_scans.inc();
                continue;
            }
            let Ok(huge_frame) = buddy.alloc(ORDER_2M) else {
                self.rejected_scans.inc();
                continue;
            };
            // Copy all present 4 KiB pages into the huge page and release
            // their frames.
            let huge = crate::fault::Mapping {
                vaddr: region,
                paddr: huge_frame,
                page_size: PageSize::Size2M,
            };
            let removed = process.collapse_to_huge(region, huge);
            for (i, old) in removed.iter().enumerate() {
                // Copying one 4 KiB page: 64 cache lines read + written.
                stream.compute(32);
                stream.load(old.paddr);
                stream.store(huge_frame.add(i as u64 * 4096));
                let _ = buddy.free(old.paddr, 0);
            }
            self.collapses.inc();
            collapses.push(CollapseEvent { huge, removed });
        }
        (stream, collapses)
    }
}

/// Reservation-based THP (the CR-THP / AR-THP allocators of Fig. 16):
/// on the first 4 KiB fault in a 2 MiB region, a whole 2 MiB physical region
/// is reserved; 4 KiB pages are handed out from within it; once the
/// populated fraction crosses `promote_threshold`, the region is promoted to
/// a single 2 MiB mapping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReservationThp {
    /// Fraction of 4 KiB pages that must be populated before promotion
    /// (0.5 for the conservative allocator, 0.1 for the aggressive one).
    pub promote_threshold: f64,
    /// Active reservations: 2 MiB-aligned virtual region → reservation.
    reservations: BTreeMap<u64, Reservation>,
    /// Promotions performed.
    pub promotions: Counter,
    /// Reservations broken because physical memory ran out.
    pub broken_reservations: Counter,
}

/// One 2 MiB physical reservation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Reservation {
    phys_base: PhysAddr,
    populated: u64,
    promoted: bool,
}

impl ReservationThp {
    /// Creates a reservation tracker with the given promotion threshold.
    pub fn new(promote_threshold: f64) -> Self {
        ReservationThp {
            promote_threshold,
            reservations: BTreeMap::new(),
            promotions: Counter::new(),
            broken_reservations: Counter::new(),
        }
    }

    /// The conservative allocator of the paper (promotes at 50%).
    pub fn conservative() -> Self {
        ReservationThp::new(0.5)
    }

    /// The aggressive allocator of the paper (promotes at 10%).
    pub fn aggressive() -> Self {
        ReservationThp::new(0.1)
    }

    /// Number of active (unpromoted) reservations.
    pub fn active_reservations(&self) -> usize {
        self.reservations.values().filter(|r| !r.promoted).count()
    }

    /// Handles a 4 KiB fault at `addr` under reservation-based THP.
    ///
    /// Returns `(frame, promote_to)` where `frame` is the 4 KiB frame to map
    /// and `promote_to` is `Some(huge_mapping_base)` when this fault crossed
    /// the promotion threshold and the whole region should now be mapped as
    /// one 2 MiB page.
    pub fn on_fault(
        &mut self,
        addr: VirtAddr,
        buddy: &mut BuddyAllocator,
        stream: &mut KernelInstructionStream,
    ) -> Option<(PhysAddr, Option<PhysAddr>)> {
        let region = addr.page_base(PageSize::Size2M);
        let offset_pages = (addr.raw() - region.raw()) / 4096;
        stream.compute(50);
        stream.load(PhysAddr::new(
            0xFFFF_C000_0000_0000 + (region.raw() >> 12) % 4096,
        ));

        let entry = self.reservations.entry(region.raw());
        let reservation = match entry {
            std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => {
                // Reserve a fresh 2 MiB physical region.
                match buddy.alloc_traced(ORDER_2M, Some(stream)) {
                    Ok(base) => v.insert(Reservation {
                        phys_base: base,
                        populated: 0,
                        promoted: false,
                    }),
                    Err(_) => {
                        self.broken_reservations.inc();
                        return None;
                    }
                }
            }
        };
        if reservation.promoted {
            // Already promoted: the caller should find the huge mapping.
            return Some((reservation.phys_base.add(offset_pages * 4096), None));
        }
        reservation.populated += 1;
        let frame = reservation.phys_base.add(offset_pages * 4096);
        let threshold =
            (PageSize::Size2M.base_pages() as f64 * self.promote_threshold).max(1.0) as u64;
        let promote = if reservation.populated >= threshold {
            reservation.promoted = true;
            self.promotions.inc();
            stream.compute(512 * 2);
            Some(reservation.phys_base)
        } else {
            None
        };
        Some((frame, promote))
    }

    /// Forgets every reservation. Used when the OOM killer tears a process
    /// down: victim frames inside reserved regions go back to the buddy
    /// allocator, so keeping the reservations would let a later promotion
    /// hand out frames the allocator already reuses. Unfaulted portions of
    /// surviving processes' reservations stay allocated (they leak until
    /// those regions fault through fresh reservations) — safe, if wasteful,
    /// which is the right trade under an OOM kill.
    pub fn clear(&mut self) {
        self.reservations.clear();
    }
}

/// hugetlbfs: explicit huge-page reservations made at `mmap` time. The pool
/// holds pre-allocated 2 MiB pages that faults in hugetlb VMAs consume.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HugetlbPool {
    pages: Vec<PhysAddr>,
    /// Faults served from the pool.
    pub served: Counter,
}

impl HugetlbPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        HugetlbPool::default()
    }

    /// Reserves `count` huge pages from the buddy allocator. Returns how
    /// many were actually reserved.
    pub fn reserve(&mut self, count: usize, buddy: &mut BuddyAllocator) -> usize {
        let mut reserved = 0;
        for _ in 0..count {
            match buddy.alloc(ORDER_2M) {
                Ok(p) => {
                    self.pages.push(p);
                    reserved += 1;
                }
                Err(_) => break,
            }
        }
        reserved
    }

    /// Takes one reserved huge page.
    pub fn take(&mut self) -> Option<PhysAddr> {
        let p = self.pages.pop();
        if p.is_some() {
            self.served.inc();
        }
        p
    }

    /// Returns a huge page to the pool (a hugetlb mapping torn down when
    /// its owner exited or was killed). The frame stays reserved for future
    /// hugetlb faults instead of going back to the buddy allocator,
    /// mirroring how Linux keeps hugetlbfs pages in the free hugepage pool.
    pub fn release(&mut self, frame: PhysAddr) {
        self.pages.push(frame);
    }

    /// Number of reserved pages remaining.
    pub fn available(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Mapping;

    const MB: u64 = 1024 * 1024;

    fn stream() -> KernelInstructionStream {
        KernelInstructionStream::new(KernelRoutine::ThpReservation)
    }

    #[test]
    fn zeroed_pool_hits_and_misses() {
        let mut buddy = BuddyAllocator::new(64 * MB);
        let mut pool = ZeroedPagePool::new(2);
        assert!(pool.take().is_none());
        assert_eq!(pool.pool_misses.get(), 1);
        pool.refill(&mut buddy);
        assert_eq!(pool.len(), 2);
        assert!(pool.take().is_some());
        assert_eq!(pool.pool_hits.get(), 1);
    }

    #[test]
    fn khugepaged_collapses_populated_regions() {
        let mut buddy = BuddyAllocator::new(256 * MB);
        let mut process = Process::new();
        let mut daemon = KhugepagedDaemon::new();
        let config = ThpConfig::linux_default();
        let region = VirtAddr::new(0x4000_0000);
        // Populate 400 of 512 pages (above the 50% threshold).
        for i in 0..400u64 {
            let frame = buddy.alloc(0).unwrap();
            process.insert_mapping(Mapping {
                vaddr: region.add(i * 4096),
                paddr: frame,
                page_size: PageSize::Size4K,
            });
            daemon.notify(region.add(i * 4096));
        }
        assert_eq!(daemon.pending(), 1);
        let (stream, collapses) = daemon.scan(&config, &mut process, &mut buddy);
        assert_eq!(daemon.collapses.get(), 1);
        assert!(stream.instruction_count() > 1000);
        // The collapse is reported so the caller can shoot down the 400
        // removed base translations and install the huge replacement.
        assert_eq!(collapses.len(), 1);
        assert_eq!(collapses[0].removed.len(), 400);
        assert_eq!(collapses[0].huge.page_size, PageSize::Size2M);
        assert_eq!(collapses[0].huge.vaddr, region);
        assert_eq!(
            process
                .lookup_mapping(region.add(0x5000))
                .unwrap()
                .page_size,
            PageSize::Size2M
        );
    }

    #[test]
    fn khugepaged_skips_sparse_regions() {
        let mut buddy = BuddyAllocator::new(64 * MB);
        let mut process = Process::new();
        let mut daemon = KhugepagedDaemon::new();
        let config = ThpConfig::linux_default();
        let region = VirtAddr::new(0x4000_0000);
        for i in 0..10u64 {
            let frame = buddy.alloc(0).unwrap();
            process.insert_mapping(Mapping {
                vaddr: region.add(i * 4096),
                paddr: frame,
                page_size: PageSize::Size4K,
            });
        }
        daemon.notify(region);
        let (_, collapses) = daemon.scan(&config, &mut process, &mut buddy);
        assert!(collapses.is_empty());
        assert_eq!(daemon.collapses.get(), 0);
        assert_eq!(daemon.rejected_scans.get(), 1);
    }

    #[test]
    fn reservation_thp_promotes_at_threshold() {
        let mut buddy = BuddyAllocator::new(64 * MB);
        let mut thp = ReservationThp::aggressive();
        let region = VirtAddr::new(0x8000_0000);
        let mut promoted = None;
        // 10% of 512 = 52 (rounded); fault 52 distinct pages.
        for i in 0..52u64 {
            let mut s = stream();
            let (frame, promote) = thp
                .on_fault(region.add(i * 4096), &mut buddy, &mut s)
                .unwrap();
            assert!(
                frame.raw() < 64 * MB,
                "frame must come from the reservation"
            );
            if promote.is_some() {
                promoted = promote;
            }
        }
        assert!(promoted.is_some(), "aggressive THP should promote at ~10%");
        assert_eq!(thp.promotions.get(), 1);
    }

    #[test]
    fn conservative_promotes_later_than_aggressive() {
        let mut buddy_a = BuddyAllocator::new(64 * MB);
        let mut buddy_c = BuddyAllocator::new(64 * MB);
        let mut aggressive = ReservationThp::aggressive();
        let mut conservative = ReservationThp::conservative();
        let region = VirtAddr::new(0x8000_0000);
        let mut first_promote_a = None;
        let mut first_promote_c = None;
        for i in 0..512u64 {
            let mut s = stream();
            if let Some((_, Some(_))) =
                aggressive.on_fault(region.add(i * 4096), &mut buddy_a, &mut s)
            {
                first_promote_a.get_or_insert(i);
            }
            let mut s = stream();
            if let Some((_, Some(_))) =
                conservative.on_fault(region.add(i * 4096), &mut buddy_c, &mut s)
            {
                first_promote_c.get_or_insert(i);
            }
        }
        assert!(first_promote_a.unwrap() < first_promote_c.unwrap());
    }

    #[test]
    fn reservation_falls_back_when_memory_exhausted() {
        // Tiny memory: a single 2 MiB region, already consumed.
        let mut buddy = BuddyAllocator::new(2 * MB);
        let _hold = buddy.alloc(ORDER_2M).unwrap();
        let mut thp = ReservationThp::conservative();
        let mut s = stream();
        assert!(thp
            .on_fault(VirtAddr::new(0x8000_0000), &mut buddy, &mut s)
            .is_none());
        assert_eq!(thp.broken_reservations.get(), 1);
    }

    #[test]
    fn hugetlb_pool_reserves_and_serves() {
        let mut buddy = BuddyAllocator::new(16 * MB);
        let mut pool = HugetlbPool::new();
        let reserved = pool.reserve(4, &mut buddy);
        assert_eq!(reserved, 4);
        assert_eq!(pool.available(), 4);
        assert!(pool.take().is_some());
        assert_eq!(pool.served.get(), 1);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn hugetlb_reserve_stops_at_capacity() {
        let mut buddy = BuddyAllocator::new(4 * MB);
        let mut pool = HugetlbPool::new();
        assert_eq!(pool.reserve(10, &mut buddy), 2);
    }
}
