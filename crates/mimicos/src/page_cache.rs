//! The page cache: an in-memory cache of file-backed pages, imitating the
//! Linux radix-tree (xarray) page cache consulted by the fault handler for
//! file-backed VMAs (Fig. 6, step 7).

use crate::kernel_stream::KernelInstructionStream;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use vm_types::{Counter, PhysAddr};

/// Key identifying one file page: (file id, page index within the file).
pub type FilePage = (u64, u64);

/// Statistics for the page cache.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageCacheStats {
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses (require a disk read).
    pub misses: Counter,
    /// Insertions.
    pub insertions: Counter,
    /// Evictions due to the capacity limit.
    pub evictions: Counter,
}

/// The page cache, with FIFO-approximated LRU eviction at a fixed capacity
/// (in pages).
///
/// # Examples
///
/// ```
/// use mimic_os::PageCache;
/// use vm_types::PhysAddr;
///
/// let mut cache = PageCache::new(1024);
/// assert!(cache.lookup(3, 0).is_none());
/// cache.insert(3, 0, PhysAddr::new(0x10_0000));
/// assert_eq!(cache.lookup(3, 0), Some(PhysAddr::new(0x10_0000)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageCache {
    capacity_pages: usize,
    entries: BTreeMap<FilePage, PhysAddr>,
    order: VecDeque<FilePage>,
    stats: PageCacheStats,
}

impl PageCache {
    /// Creates a page cache holding at most `capacity_pages` pages.
    pub fn new(capacity_pages: usize) -> Self {
        PageCache {
            capacity_pages: capacity_pages.max(1),
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            stats: PageCacheStats::default(),
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics.
    pub fn stats(&self) -> &PageCacheStats {
        &self.stats
    }

    /// Looks up a file page, updating hit/miss statistics.
    pub fn lookup(&mut self, file_id: u64, page_index: u64) -> Option<PhysAddr> {
        match self.entries.get(&(file_id, page_index)) {
            Some(&pa) => {
                self.stats.hits.inc();
                Some(pa)
            }
            None => {
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Looks up a file page, recording the xarray walk into `stream`.
    pub fn lookup_traced(
        &mut self,
        file_id: u64,
        page_index: u64,
        stream: &mut KernelInstructionStream,
    ) -> Option<PhysAddr> {
        // Model the xarray descent: ~4 node loads for a 64-bit index.
        for level in 0..4u64 {
            stream.compute(6);
            stream.load(PhysAddr::new(0xFFFF_9000_0000_0000 + level * 64));
        }
        self.lookup(file_id, page_index)
    }

    /// Inserts a file page backed by `frame`, evicting the oldest entry if
    /// at capacity. Returns the evicted frame, if any (the caller frees it).
    pub fn insert(&mut self, file_id: u64, page_index: u64, frame: PhysAddr) -> Option<PhysAddr> {
        let key = (file_id, page_index);
        let mut evicted = None;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity_pages {
            while let Some(old) = self.order.pop_front() {
                if let Some(pa) = self.entries.remove(&old) {
                    self.stats.evictions.inc();
                    evicted = Some(pa);
                    break;
                }
            }
        }
        if self.entries.insert(key, frame).is_none() {
            self.order.push_back(key);
        }
        self.stats.insertions.inc();
        evicted
    }

    /// Pre-populates the cache with `pages` pages of `file_id`, starting at
    /// frame address `base`, imitating the paper's methodology of warming
    /// the page cache before execution so that short-running workloads take
    /// minor (not major) faults.
    pub fn populate(&mut self, file_id: u64, pages: u64, base: PhysAddr) {
        for i in 0..pages {
            self.insert(file_id, i, base.add(i * 4096));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_stream::KernelRoutine;

    #[test]
    fn miss_then_insert_then_hit() {
        let mut c = PageCache::new(16);
        assert!(c.lookup(1, 5).is_none());
        c.insert(1, 5, PhysAddr::new(0x5000));
        assert_eq!(c.lookup(1, 5), Some(PhysAddr::new(0x5000)));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn different_files_do_not_collide() {
        let mut c = PageCache::new(16);
        c.insert(1, 0, PhysAddr::new(0x1000));
        c.insert(2, 0, PhysAddr::new(0x2000));
        assert_eq!(c.lookup(1, 0), Some(PhysAddr::new(0x1000)));
        assert_eq!(c.lookup(2, 0), Some(PhysAddr::new(0x2000)));
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let mut c = PageCache::new(2);
        c.insert(1, 0, PhysAddr::new(0x1000));
        c.insert(1, 1, PhysAddr::new(0x2000));
        let evicted = c.insert(1, 2, PhysAddr::new(0x3000));
        assert_eq!(evicted, Some(PhysAddr::new(0x1000)));
        assert!(c.lookup(1, 0).is_none());
        assert!(c.lookup(1, 2).is_some());
        assert_eq!(c.stats().evictions.get(), 1);
    }

    #[test]
    fn populate_warms_the_cache() {
        let mut c = PageCache::new(1024);
        c.populate(9, 100, PhysAddr::new(0x100_0000));
        assert_eq!(c.len(), 100);
        assert_eq!(c.lookup(9, 99), Some(PhysAddr::new(0x100_0000 + 99 * 4096)));
    }

    #[test]
    fn traced_lookup_records_xarray_walk() {
        let mut c = PageCache::new(4);
        let mut s = KernelInstructionStream::new(KernelRoutine::PageCache);
        c.lookup_traced(1, 0, &mut s);
        assert_eq!(s.memory_references(), 4);
    }

    #[test]
    fn reinserting_same_page_does_not_grow_cache() {
        let mut c = PageCache::new(4);
        c.insert(1, 0, PhysAddr::new(0x1000));
        c.insert(1, 0, PhysAddr::new(0x9000));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(1, 0), Some(PhysAddr::new(0x9000)));
    }
}
