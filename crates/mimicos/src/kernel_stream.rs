//! Kernel instruction streams: the imitation counterpart of dynamically
//! instrumenting MimicOS with Pin/DynamoRIO.
//!
//! In the paper, every OS routine that runs in MimicOS is instrumented and
//! its disassembled instruction stream is injected into the simulator's core
//! model through the *instruction stream channel*, so that the core and the
//! memory hierarchy are charged for the kernel's work (latency, cache
//! pollution, DRAM contention). In this Rust reproduction the kernel
//! routines *emit* their instruction streams directly: as a routine touches
//! its data structures it records the corresponding loads/stores and an
//! estimate of the surrounding compute instructions. The resulting
//! [`KernelInstructionStream`] is handed to the framework, which injects it
//! into the core model exactly as the paper describes.

use serde::{Deserialize, Serialize};
use vm_types::{AccessType, PhysAddr};

/// Which kernel routine produced a stream segment. Used for reporting and
/// for the correlation experiment of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelRoutine {
    /// `do_page_fault` and its callees (the minor/major fault path).
    PageFaultHandler,
    /// VMA lookup in the maple tree / rb-tree.
    FindVma,
    /// Buddy-allocator frame allocation.
    BuddyAlloc,
    /// Buddy-allocator frame free.
    BuddyFree,
    /// Slab allocation of a page-table frame.
    SlabAlloc,
    /// Page-table update (insert / upgrade of an entry).
    PageTableUpdate,
    /// Zeroing a newly allocated page.
    PageZeroing,
    /// Page-cache lookup and insertion.
    PageCache,
    /// Swap-cache lookup, swap-in or swap-out.
    Swap,
    /// khugepaged scanning and collapsing.
    Khugepaged,
    /// Reservation-based THP bookkeeping.
    ThpReservation,
    /// Utopia restrictive-segment allocation.
    UtopiaAlloc,
    /// Memory reclaim (kswapd-style).
    Reclaim,
    /// mmap / munmap system call work.
    Mmap,
    /// Scheduler context switch (`__schedule`, `switch_mm`, `switch_to`).
    ContextSwitch,
    /// The out-of-memory killer: badness scan, victim teardown
    /// (`out_of_memory` / `oom_kill_process` / `exit_mmap`).
    OomKill,
}

/// One operation in a kernel instruction stream: either a block of
/// non-memory instructions or a single memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelOp {
    /// `count` non-memory (ALU/branch) instructions.
    Compute {
        /// Number of non-memory instructions in the block.
        count: u32,
    },
    /// One memory reference performed by the kernel.
    Memory {
        /// Physical address touched (kernel structures are physically
        /// addressed in the model).
        paddr: PhysAddr,
        /// Load or store.
        kind: AccessType,
    },
}

/// The instruction stream produced by one kernel routine invocation.
///
/// # Examples
///
/// ```
/// use mimic_os::{KernelInstructionStream, KernelRoutine};
/// use vm_types::{AccessType, PhysAddr};
///
/// let mut stream = KernelInstructionStream::new(KernelRoutine::PageFaultHandler);
/// stream.compute(120);
/// stream.load(PhysAddr::new(0x1000));
/// stream.store(PhysAddr::new(0x1040));
/// assert_eq!(stream.instruction_count(), 122);
/// assert_eq!(stream.memory_references(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelInstructionStream {
    routine: KernelRoutine,
    ops: Vec<KernelOp>,
}

impl KernelInstructionStream {
    /// Creates an empty stream for the given routine.
    pub fn new(routine: KernelRoutine) -> Self {
        KernelInstructionStream {
            routine,
            // A page fault emits a few dozen ops (VMA walk, buddy, slab,
            // page-table update, zeroing samples); pre-sizing skips the
            // doubling reallocations that otherwise run on every fault.
            ops: Vec::with_capacity(64),
        }
    }

    /// The routine that produced this stream.
    pub fn routine(&self) -> KernelRoutine {
        self.routine
    }

    /// The raw operations in program order.
    pub fn ops(&self) -> &[KernelOp] {
        &self.ops
    }

    /// Appends a block of `count` non-memory instructions.
    pub fn compute(&mut self, count: u32) {
        if count == 0 {
            return;
        }
        // Coalesce with a preceding compute block to keep streams compact.
        if let Some(KernelOp::Compute { count: last }) = self.ops.last_mut() {
            *last = last.saturating_add(count);
        } else {
            self.ops.push(KernelOp::Compute { count });
        }
    }

    /// Appends a kernel load from `paddr`.
    pub fn load(&mut self, paddr: PhysAddr) {
        self.ops.push(KernelOp::Memory {
            paddr,
            kind: AccessType::Read,
        });
    }

    /// Appends a kernel store to `paddr`.
    pub fn store(&mut self, paddr: PhysAddr) {
        self.ops.push(KernelOp::Memory {
            paddr,
            kind: AccessType::Write,
        });
    }

    /// Appends every operation of `other` to this stream (used when a
    /// routine calls a sub-routine, e.g. the fault handler invoking the
    /// buddy allocator).
    pub fn append(&mut self, other: &KernelInstructionStream) {
        for op in &other.ops {
            match *op {
                KernelOp::Compute { count } => self.compute(count),
                KernelOp::Memory { .. } => self.ops.push(*op),
            }
        }
    }

    /// Total number of instructions (memory + non-memory) in the stream.
    pub fn instruction_count(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                KernelOp::Compute { count } => *count as u64,
                KernelOp::Memory { .. } => 1,
            })
            .sum()
    }

    /// Number of memory references in the stream.
    pub fn memory_references(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, KernelOp::Memory { .. }))
            .count() as u64
    }

    /// `true` if the stream contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// A quick standalone latency estimate in nanoseconds, used when the
    /// stream is *not* injected into a detailed core model (emulation mode):
    /// non-memory instructions retire at `ipc` instructions per cycle and
    /// every memory reference costs `mem_latency_cycles`, at a 2.9 GHz clock.
    pub fn estimate_latency_ns(&self, ipc: f64, mem_latency_cycles: f64) -> f64 {
        let compute: u64 = self
            .ops
            .iter()
            .map(|op| match op {
                KernelOp::Compute { count } => *count as u64,
                KernelOp::Memory { .. } => 0,
            })
            .sum();
        let mem = self.memory_references() as f64;
        let cycles = compute as f64 / ipc.max(0.1) + mem * mem_latency_cycles;
        cycles / 2.9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_blocks_are_coalesced() {
        let mut s = KernelInstructionStream::new(KernelRoutine::FindVma);
        s.compute(10);
        s.compute(5);
        assert_eq!(s.ops().len(), 1);
        assert_eq!(s.instruction_count(), 15);
    }

    #[test]
    fn zero_compute_is_ignored() {
        let mut s = KernelInstructionStream::new(KernelRoutine::FindVma);
        s.compute(0);
        assert!(s.is_empty());
    }

    #[test]
    fn memory_ops_break_coalescing() {
        let mut s = KernelInstructionStream::new(KernelRoutine::BuddyAlloc);
        s.compute(10);
        s.load(PhysAddr::new(0x40));
        s.compute(5);
        assert_eq!(s.ops().len(), 3);
        assert_eq!(s.instruction_count(), 16);
        assert_eq!(s.memory_references(), 1);
    }

    #[test]
    fn append_merges_streams() {
        let mut outer = KernelInstructionStream::new(KernelRoutine::PageFaultHandler);
        outer.compute(100);
        let mut inner = KernelInstructionStream::new(KernelRoutine::BuddyAlloc);
        inner.compute(20);
        inner.store(PhysAddr::new(0x80));
        outer.append(&inner);
        assert_eq!(outer.instruction_count(), 121);
        assert_eq!(outer.memory_references(), 1);
        assert_eq!(outer.routine(), KernelRoutine::PageFaultHandler);
    }

    #[test]
    fn latency_estimate_scales_with_memory_references() {
        let mut small = KernelInstructionStream::new(KernelRoutine::PageZeroing);
        small.compute(100);
        let mut big = KernelInstructionStream::new(KernelRoutine::PageZeroing);
        big.compute(100);
        for i in 0..64 {
            big.store(PhysAddr::new(i * 64));
        }
        assert!(big.estimate_latency_ns(2.0, 50.0) > small.estimate_latency_ns(2.0, 50.0));
    }
}
