//! Types describing the outcome of a page fault handled by MimicOS,
//! including the translations the kernel tore down along the way (the
//! shootdown work the framework must mirror into the MMU).

use crate::kernel::ProcessId;
use crate::kernel_stream::KernelInstructionStream;
use serde::{Deserialize, Serialize};
use std::fmt;
use vm_types::{PageSize, PhysAddr, VirtAddr};

/// One established virtual-to-physical mapping.
///
/// # Examples
///
/// ```
/// use mimic_os::Mapping;
/// use vm_types::{PageSize, PhysAddr, VirtAddr};
///
/// let m = Mapping {
///     vaddr: VirtAddr::new(0x20_0000),
///     paddr: PhysAddr::new(0x4000_0000),
///     page_size: PageSize::Size2M,
/// };
/// assert_eq!(m.translate(VirtAddr::new(0x20_1234)).raw(), 0x4000_1234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// Base virtual address of the page (aligned to `page_size`).
    pub vaddr: VirtAddr,
    /// Base physical address of the backing frame (aligned to `page_size`).
    pub paddr: PhysAddr,
    /// Page size of the mapping.
    pub page_size: PageSize,
}

impl Mapping {
    /// Translates an address that falls inside this mapping.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `vaddr` lies within the mapped page.
    pub fn translate(&self, vaddr: VirtAddr) -> PhysAddr {
        debug_assert_eq!(vaddr.page_base(self.page_size), self.vaddr);
        self.paddr.add(vaddr.page_offset(self.page_size))
    }

    /// `true` if `addr` falls inside this mapping.
    pub fn covers(&self, addr: VirtAddr) -> bool {
        addr.page_base(self.page_size) == self.vaddr
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} ({})", self.vaddr, self.paddr, self.page_size)
    }
}

/// Classification of a handled page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Minor fault: the page was allocated and mapped without device I/O.
    Minor,
    /// Major fault: the data had to be read from the storage device (page
    /// cache miss on a file-backed page).
    Major,
    /// The faulting page was swapped out and had to be brought back in.
    SwapIn,
    /// The fault was served from a hugetlbfs reservation.
    Hugetlb,
    /// The page was already mapped when the handler looked (e.g. a racing
    /// thread mapped it); no work was needed.
    Spurious,
}

impl FaultKind {
    /// `true` for faults that performed storage I/O.
    pub const fn is_major(self) -> bool {
        matches!(self, FaultKind::Major | FaultKind::SwapIn)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Minor => "minor",
            FaultKind::Major => "major",
            FaultKind::SwapIn => "swap-in",
            FaultKind::Hugetlb => "hugetlb",
            FaultKind::Spurious => "spurious",
        };
        write!(f, "{s}")
    }
}

/// One translation torn down by the kernel (swap-out, huge-page demotion,
/// khugepaged collapse). The framework must shoot it down in the MMU: any
/// TLB entry, page-walk-cache line, page-table leaf or engine-resident
/// translation (RMM range, Utopia RestSeg residency, Midgard backend
/// mapping) still covering the page is stale the moment the kernel removes
/// it from the process's mapping table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvalidationVictim {
    /// Process whose address space lost the translation (its pid doubles
    /// as the ASID in the framework).
    pub pid: ProcessId,
    /// Base virtual address of the torn-down page.
    pub vaddr: VirtAddr,
    /// Page size of the torn-down mapping.
    pub page_size: PageSize,
}

/// The batch of invalidations one kernel operation (a page-fault handler
/// invocation that reclaimed memory, or a khugepaged pass) performed.
///
/// Produced by MimicOS, consumed by the framework (`virtuoso::System`),
/// which applies every victim through `TranslationEngine::invalidate` and
/// installs every replacement — the imitation counterpart of the IPI-driven
/// TLB shootdown a real kernel performs before reusing a reclaimed frame.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InvalidationBatch {
    /// Translations that must be shot down.
    pub victims: Vec<InvalidationVictim>,
    /// Mappings re-established in the same operation (the 4 KiB pieces a
    /// THP demotion leaves resident, or the huge page a khugepaged
    /// collapse installs over the removed base pages). Installed by the
    /// framework after the victims are shot down.
    pub replacements: Vec<(ProcessId, Mapping)>,
}

impl InvalidationBatch {
    /// `true` when the batch carries no work.
    pub fn is_empty(&self) -> bool {
        self.victims.is_empty() && self.replacements.is_empty()
    }

    /// Records a torn-down translation.
    pub fn push_victim(&mut self, pid: ProcessId, vaddr: VirtAddr, page_size: PageSize) {
        self.victims.push(InvalidationVictim {
            pid,
            vaddr,
            page_size,
        });
    }

    /// Appends all of `other`'s work to this batch.
    pub fn merge(&mut self, other: InvalidationBatch) {
        self.victims.extend(other.victims);
        self.replacements.extend(other.replacements);
    }
}

/// Everything the kernel reports back to the simulator after handling a
/// page fault — the payload of the functional channel response, plus the
/// instruction stream for the instruction-stream channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageFaultOutcome {
    /// The mapping established for the faulting address.
    pub mapping: Mapping,
    /// Additional mappings established as a side effect (eager paging maps
    /// whole ranges; reservation THP promotion replaces 4 KiB mappings).
    pub additional_mappings: Vec<Mapping>,
    /// Classification of the fault.
    pub kind: FaultKind,
    /// The kernel work performed, for injection into the core model.
    pub stream: KernelInstructionStream,
    /// Standalone latency estimate of the handler in nanoseconds (software
    /// work only, excluding device I/O). Used in emulation mode and for
    /// reporting; the detailed mode derives latency from the injected stream.
    pub software_latency_ns: f64,
    /// Storage-device latency incurred (zero for minor faults).
    pub device_latency_ns: f64,
    /// Bytes zeroed while preparing the page (the dominant cost of huge-page
    /// faults).
    pub zeroed_bytes: u64,
    /// Number of page-table frames newly allocated for this fault.
    pub pt_frames_allocated: u32,
    /// The page was placed in a Utopia RestSeg (engine-specific install
    /// metadata: the RestSeg walkers — not the page table — resolve the
    /// page from now on). Always `false` outside the Utopia policy.
    pub restseg_placed: bool,
    /// Translations the kernel tore down while handling this fault
    /// (reclaim under memory pressure, huge-page demotion). Empty on the
    /// steady-state path.
    pub invalidations: InvalidationBatch,
}

impl PageFaultOutcome {
    /// Total fault latency estimate (software + device) in nanoseconds.
    pub fn total_latency_ns(&self) -> f64 {
        self.software_latency_ns + self.device_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_stream::KernelRoutine;

    #[test]
    fn mapping_translate_preserves_offset() {
        let m = Mapping {
            vaddr: VirtAddr::new(0x4000_0000),
            paddr: PhysAddr::new(0x8000_0000),
            page_size: PageSize::Size1G,
        };
        assert_eq!(m.translate(VirtAddr::new(0x4123_4567)).raw(), 0x8123_4567);
        assert!(m.covers(VirtAddr::new(0x7fff_ffff)));
        assert!(!m.covers(VirtAddr::new(0x8000_0000)));
    }

    #[test]
    fn fault_kind_major_classification() {
        assert!(FaultKind::Major.is_major());
        assert!(FaultKind::SwapIn.is_major());
        assert!(!FaultKind::Minor.is_major());
        assert!(!FaultKind::Hugetlb.is_major());
        assert_eq!(FaultKind::Minor.to_string(), "minor");
    }

    #[test]
    fn outcome_total_latency_sums_components() {
        let outcome = PageFaultOutcome {
            mapping: Mapping {
                vaddr: VirtAddr::new(0x1000),
                paddr: PhysAddr::new(0x2000),
                page_size: PageSize::Size4K,
            },
            additional_mappings: Vec::new(),
            kind: FaultKind::Major,
            stream: KernelInstructionStream::new(KernelRoutine::PageFaultHandler),
            software_latency_ns: 1500.0,
            device_latency_ns: 70_000.0,
            zeroed_bytes: 0,
            pt_frames_allocated: 2,
            restseg_placed: false,
            invalidations: InvalidationBatch::default(),
        };
        assert_eq!(outcome.total_latency_ns(), 71_500.0);
    }

    #[test]
    fn invalidation_batch_tracks_emptiness() {
        let mut batch = InvalidationBatch::default();
        assert!(batch.is_empty());
        batch.push_victim(ProcessId(3), VirtAddr::new(0x4000), PageSize::Size4K);
        assert!(!batch.is_empty());
        assert_eq!(batch.victims[0].pid, ProcessId(3));
        let replace_only = InvalidationBatch {
            victims: Vec::new(),
            replacements: vec![(
                ProcessId(0),
                Mapping {
                    vaddr: VirtAddr::new(0x20_0000),
                    paddr: PhysAddr::new(0x40_0000),
                    page_size: PageSize::Size2M,
                },
            )],
        };
        assert!(!replace_only.is_empty());
    }

    #[test]
    fn mapping_display_mentions_size() {
        let m = Mapping {
            vaddr: VirtAddr::new(0x1000),
            paddr: PhysAddr::new(0x2000),
            page_size: PageSize::Size2M,
        };
        assert!(m.to_string().contains("2MB"));
    }
}
