//! The swap subsystem: swap-slot management, the swap cache, and the
//! interaction with the SSD model for swap-in/swap-out — the machinery
//! behind the paper's swapping study (Fig. 20).

use crate::kernel_stream::KernelInstructionStream;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vm_types::{Counter, Nanoseconds, PhysAddr, VmError, VmResult};

/// Statistics for the swap subsystem.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SwapStats {
    /// Pages written out to the swap device.
    pub swap_outs: Counter,
    /// Pages read back in from the swap device.
    pub swap_ins: Counter,
    /// Swap-cache hits (page found in memory without a device read).
    pub swap_cache_hits: Counter,
    /// Total nanoseconds spent on swap device I/O.
    pub total_io_ns: f64,
}

impl SwapStats {
    /// Total swap I/O operations.
    pub fn total_ops(&self) -> u64 {
        self.swap_outs.get() + self.swap_ins.get()
    }
}

/// Manages swap slots on the swap device and the in-memory swap cache.
///
/// # Examples
///
/// ```
/// use mimic_os::SwapManager;
/// use ssd_sim::{SsdConfig, SsdModel};
/// use vm_types::PhysAddr;
///
/// let mut ssd = SsdModel::new(SsdConfig::nvme_datacenter());
/// let mut swap = SwapManager::new(4 * 1024 * 1024 * 1024); // 4 GB swap
/// let (slot, out_io) = swap.swap_out(PhysAddr::new(0x1000), &mut ssd).unwrap();
/// assert!(out_io.as_micros() > 0.0);
/// // The page is still in the swap cache, so swapping it back in is free.
/// let (_frame, in_io) = swap.swap_in(slot, PhysAddr::new(0x2000), &mut ssd).unwrap();
/// assert_eq!(in_io.as_micros(), 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwapManager {
    total_slots: u64,
    next_free: u64,
    free_slots: Vec<u64>,
    /// Swap cache: slot → frame still resident in memory (dirty data not yet
    /// discarded), allowing swap-ins without device reads.
    swap_cache: BTreeMap<u64, PhysAddr>,
    stats: SwapStats,
}

impl SwapManager {
    /// Creates a swap area of `swap_bytes` bytes (4 KiB slots).
    pub fn new(swap_bytes: u64) -> Self {
        SwapManager {
            total_slots: swap_bytes / 4096,
            next_free: 0,
            free_slots: Vec::new(),
            swap_cache: BTreeMap::new(),
            stats: SwapStats::default(),
        }
    }

    /// Total number of swap slots.
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Slots currently in use.
    pub fn used_slots(&self) -> u64 {
        self.next_free - self.free_slots.len() as u64
    }

    /// Statistics.
    pub fn stats(&self) -> &SwapStats {
        &self.stats
    }

    fn allocate_slot(&mut self) -> VmResult<u64> {
        if let Some(slot) = self.free_slots.pop() {
            return Ok(slot);
        }
        if self.next_free >= self.total_slots {
            return Err(VmError::SwapFull);
        }
        let slot = self.next_free;
        self.next_free += 1;
        Ok(slot)
    }

    /// Writes the page at `frame` out to a fresh swap slot, returning the
    /// slot and the device latency.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::SwapFull`] when no slot is available.
    pub fn swap_out(
        &mut self,
        frame: PhysAddr,
        ssd: &mut ssd_sim::SsdModel,
    ) -> VmResult<(u64, Nanoseconds)> {
        let slot = self.allocate_slot()?;
        let io = ssd.write(slot * 4096);
        self.swap_cache.insert(slot, frame);
        self.stats.swap_outs.inc();
        self.stats.total_io_ns += io.as_nanos();
        Ok((slot, io))
    }

    /// Reads the page stored in `slot` back into memory at `dest_frame`.
    /// If the page is still in the swap cache the device read is skipped.
    /// Returns the frame the data now lives in and the I/O latency.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidFree`] if the slot was never written.
    pub fn swap_in(
        &mut self,
        slot: u64,
        dest_frame: PhysAddr,
        ssd: &mut ssd_sim::SsdModel,
    ) -> VmResult<(PhysAddr, Nanoseconds)> {
        if slot >= self.next_free {
            return Err(VmError::InvalidFree {
                paddr: PhysAddr::new(slot * 4096),
            });
        }
        self.stats.swap_ins.inc();
        let io = if let Some(cached) = self.swap_cache.remove(&slot) {
            self.stats.swap_cache_hits.inc();
            self.free_slots.push(slot);
            return Ok((cached, Nanoseconds::ZERO));
        } else {
            ssd.read(slot * 4096)
        };
        self.free_slots.push(slot);
        self.stats.total_io_ns += io.as_nanos();
        Ok((dest_frame, io))
    }

    /// Drops a slot's swap-cache entry (the in-memory copy has been
    /// reclaimed); a later swap-in will pay the device read.
    pub fn drop_swap_cache(&mut self, slot: u64) {
        self.swap_cache.remove(&slot);
    }

    /// Releases a slot without reading it back (`swap_free` when an exiting
    /// or killed process abandons its swapped-out pages). The slot's data is
    /// simply discarded; any swap-cache entry goes with it.
    pub fn release_slot(&mut self, slot: u64) {
        if slot >= self.next_free || self.free_slots.contains(&slot) {
            return;
        }
        self.swap_cache.remove(&slot);
        self.free_slots.push(slot);
    }

    /// Records the swap-cache lookup work into a kernel stream.
    pub fn trace_lookup(&self, stream: &mut KernelInstructionStream) {
        // Swap-cache xarray lookup plus swap_info bookkeeping.
        stream.compute(30);
        stream.load(PhysAddr::new(0xFFFF_A000_0000_0000));
        stream.load(PhysAddr::new(0xFFFF_A000_0000_0100));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_sim::{SsdConfig, SsdModel};

    fn ssd() -> SsdModel {
        SsdModel::new(SsdConfig::nvme_datacenter())
    }

    #[test]
    fn swap_out_then_in_roundtrip() {
        let mut ssd = ssd();
        let mut swap = SwapManager::new(1024 * 4096);
        let (slot, out_io) = swap.swap_out(PhysAddr::new(0x1000), &mut ssd).unwrap();
        assert!(out_io.as_micros() > 0.0);
        assert_eq!(swap.used_slots(), 1);
        // Swap cache still holds the page: swap-in is free.
        let (frame, in_io) = swap.swap_in(slot, PhysAddr::new(0x9000), &mut ssd).unwrap();
        assert_eq!(frame, PhysAddr::new(0x1000));
        assert_eq!(in_io, Nanoseconds::ZERO);
        assert_eq!(swap.stats().swap_cache_hits.get(), 1);
        assert_eq!(swap.used_slots(), 0);
    }

    #[test]
    fn swap_in_after_cache_drop_reads_device() {
        let mut ssd = ssd();
        let mut swap = SwapManager::new(1024 * 4096);
        let (slot, _) = swap.swap_out(PhysAddr::new(0x1000), &mut ssd).unwrap();
        swap.drop_swap_cache(slot);
        let (frame, io) = swap.swap_in(slot, PhysAddr::new(0x9000), &mut ssd).unwrap();
        assert_eq!(frame, PhysAddr::new(0x9000));
        assert!(io.as_micros() > 10.0);
    }

    #[test]
    fn swap_full_is_reported() {
        let mut ssd = ssd();
        let mut swap = SwapManager::new(2 * 4096);
        swap.swap_out(PhysAddr::new(0x1000), &mut ssd).unwrap();
        swap.swap_out(PhysAddr::new(0x2000), &mut ssd).unwrap();
        assert!(matches!(
            swap.swap_out(PhysAddr::new(0x3000), &mut ssd),
            Err(VmError::SwapFull)
        ));
    }

    #[test]
    fn invalid_slot_swap_in_rejected() {
        let mut ssd = ssd();
        let mut swap = SwapManager::new(16 * 4096);
        assert!(swap.swap_in(5, PhysAddr::new(0x9000), &mut ssd).is_err());
    }

    #[test]
    fn slots_are_recycled() {
        let mut ssd = ssd();
        let mut swap = SwapManager::new(2 * 4096);
        let (slot, _) = swap.swap_out(PhysAddr::new(0x1000), &mut ssd).unwrap();
        swap.swap_in(slot, PhysAddr::new(0x2000), &mut ssd).unwrap();
        // Freed slot can be used again even though next_free is exhausted.
        swap.swap_out(PhysAddr::new(0x3000), &mut ssd).unwrap();
        swap.swap_out(PhysAddr::new(0x4000), &mut ssd).unwrap();
        assert_eq!(swap.used_slots(), 2);
    }

    #[test]
    fn io_time_accumulates() {
        let mut ssd = ssd();
        let mut swap = SwapManager::new(64 * 4096);
        for i in 0..8u64 {
            swap.swap_out(PhysAddr::new(0x1000 + i * 4096), &mut ssd)
                .unwrap();
        }
        assert!(swap.stats().total_io_ns > 0.0);
        assert_eq!(swap.stats().total_ops(), 8);
    }
}
