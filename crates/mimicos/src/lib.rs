//! **MimicOS**: a lightweight userspace kernel that imitates the Linux
//! memory-management subsystem, following the paper's imitation-based OS
//! simulation methodology (§4–§5 of the Virtuoso paper).
//!
//! MimicOS is *not* an operating system — it is a library that mimics the
//! behaviour, data-structure footprint and work performed by the Linux
//! kernel's memory-management code, so that an architectural simulator can
//! charge the core and memory system for that work. Its major components
//! mirror Fig. 6 of the paper:
//!
//! * virtual memory areas and per-process address spaces ([`vma`], [`process`]),
//! * the buddy physical-frame allocator with controllable fragmentation
//!   ([`buddy`]) and the slab allocator for page-table frames ([`slab`]),
//! * the page cache and swap subsystem backed by an SSD model ([`page_cache`],
//!   [`swap`]),
//! * transparent huge pages: the Linux-like THP policy, `khugepaged`,
//!   hugetlbfs and reservation-based THP ([`thp`]),
//! * the Utopia restrictive-segment allocator ([`utopia`]),
//! * physical memory allocation policies ([`alloc_policy`]),
//! * the page-fault handler that ties everything together ([`fault`]),
//! * emission of kernel instruction streams for injection into the core
//!   model ([`kernel_stream`]) — the imitation counterpart of dynamically
//!   instrumenting the kernel binary with Pin/DynamoRIO.
//!
//! The top-level [`MimicOs`] type owns all of the above and exposes the
//! "system call / interrupt" surface that the Virtuoso framework drives
//! through its functional channel.
//!
//! # Examples
//!
//! ```
//! use mimic_os::{MimicOs, OsConfig};
//! use vm_types::{PageSize, VirtAddr};
//!
//! let mut os = MimicOs::new(OsConfig::small_test());
//! let pid = os.spawn_process();
//! os.mmap_anonymous(pid, VirtAddr::new(0x1000_0000), 64 * 1024 * 1024, false).unwrap();
//! let outcome = os.handle_page_fault(pid, VirtAddr::new(0x1000_0000), true).unwrap();
//! assert!(outcome.mapping.page_size >= PageSize::Size4K);
//! ```

pub mod alloc_policy;
pub mod buddy;
pub mod fault;
pub mod inject;
pub mod kernel;
pub mod kernel_stream;
pub mod page_cache;
pub mod process;
pub mod sched;
pub mod slab;
pub mod swap;
pub mod thp;
pub mod utopia;
pub mod vma;

pub use alloc_policy::AllocationPolicy;
pub use buddy::{BuddyAllocator, BuddyStats};
pub use fault::{FaultKind, InvalidationBatch, InvalidationVictim, Mapping, PageFaultOutcome};
pub use inject::{FaultInjectionConfig, FaultInjector};
pub use kernel::{MimicOs, OomKill, OsConfig, OsStats, ProcessId};
pub use kernel_stream::{KernelInstructionStream, KernelOp, KernelRoutine};
pub use page_cache::PageCache;
pub use process::{ExitReason, Process};
pub use sched::{ContextSwitch, SchedStats, Scheduler};
pub use slab::SlabAllocator;
pub use swap::{SwapManager, SwapStats};
pub use thp::{CollapseEvent, KhugepagedDaemon, ThpConfig, ThpMode};
pub use utopia::{RestSeg, UtopiaAllocator, UtopiaConfig};
pub use vma::{Vma, VmaKind, VmaTree};
