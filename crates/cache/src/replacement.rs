//! Cache replacement policies: LRU and SRRIP.
//!
//! The paper's baseline (Table 4) uses LRU in the L1 caches and SRRIP
//! (static re-reference interval prediction, Jaleel et al., ISCA 2010) in
//! the L2/L3.

use serde::{Deserialize, Serialize};

/// Replacement policy selector for a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    #[default]
    Lru,
    /// Static re-reference interval prediction with 2-bit RRPV counters.
    Srrip,
}

/// Per-way replacement metadata. For LRU this is an age stamp; for SRRIP it
/// is the re-reference prediction value (RRPV).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WayMeta {
    value: u32,
}

/// Maximum RRPV for 2-bit SRRIP.
const SRRIP_MAX: u32 = 3;
/// RRPV assigned on insertion ("long re-reference interval").
const SRRIP_INSERT: u32 = 2;

/// Replacement state for one cache set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetReplacement {
    policy: ReplacementPolicy,
    meta: Vec<WayMeta>,
    clock: u32,
}

impl SetReplacement {
    /// Creates replacement state for a set with `ways` ways (at most 64,
    /// so way validity fits one machine word on the victim-selection fast
    /// path).
    pub fn new(policy: ReplacementPolicy, ways: usize) -> Self {
        assert!(ways <= 64, "at most 64 ways per set (got {ways})");
        let init = match policy {
            ReplacementPolicy::Lru => 0,
            ReplacementPolicy::Srrip => SRRIP_MAX,
        };
        SetReplacement {
            policy,
            meta: vec![WayMeta { value: init }; ways],
            clock: 0,
        }
    }

    /// Notifies the policy that `way` was accessed (hit).
    pub fn on_hit(&mut self, way: usize) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.clock += 1;
                self.meta[way].value = self.clock;
            }
            ReplacementPolicy::Srrip => {
                self.meta[way].value = 0;
            }
        }
    }

    /// Notifies the policy that a new line was inserted into `way`.
    pub fn on_insert(&mut self, way: usize) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.clock += 1;
                self.meta[way].value = self.clock;
            }
            ReplacementPolicy::Srrip => {
                self.meta[way].value = SRRIP_INSERT;
            }
        }
    }

    /// Chooses a victim way among the ways whose validity is given by
    /// `valid`. Invalid ways are always preferred.
    pub fn choose_victim(&mut self, valid: &[bool]) -> usize {
        debug_assert_eq!(valid.len(), self.meta.len());
        let mut mask = 0u64;
        for (way, &v) in valid.iter().enumerate() {
            if v {
                mask |= 1 << way;
            }
        }
        self.choose_victim_mask(mask)
    }

    /// Chooses a victim way given the validity of each way as a bitmask
    /// (bit `i` set ⇔ way `i` holds a valid line). Invalid ways are always
    /// preferred. This is the allocation-free fast path of
    /// [`choose_victim`](Self::choose_victim): the per-fill `Vec<bool>` it
    /// replaced was one of the steady-state loop's hottest allocations.
    pub fn choose_victim_mask(&mut self, valid_mask: u64) -> usize {
        let ways = self.meta.len();
        debug_assert!(ways <= 64, "bitmask replacement supports at most 64 ways");
        let full = if ways == 64 {
            u64::MAX
        } else {
            (1 << ways) - 1
        };
        let invalid = !valid_mask & full;
        if invalid != 0 {
            return invalid.trailing_zeros() as usize;
        }
        match self.policy {
            ReplacementPolicy::Lru => self
                .meta
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.value)
                .map(|(i, _)| i)
                .unwrap_or(0),
            ReplacementPolicy::Srrip => loop {
                if let Some(way) = self.meta.iter().position(|m| m.value >= SRRIP_MAX) {
                    break way;
                }
                for m in &mut self.meta {
                    m.value += 1;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut set = SetReplacement::new(ReplacementPolicy::Lru, 4);
        let valid = vec![true; 4];
        for way in 0..4 {
            set.on_insert(way);
        }
        set.on_hit(0);
        set.on_hit(2);
        set.on_hit(3);
        // Way 1 was inserted earliest and never touched again.
        assert_eq!(set.choose_victim(&valid), 1);
    }

    #[test]
    fn invalid_ways_are_preferred_victims() {
        let mut set = SetReplacement::new(ReplacementPolicy::Srrip, 4);
        let valid = vec![true, true, false, true];
        assert_eq!(set.choose_victim(&valid), 2);
    }

    #[test]
    fn srrip_protects_rereferenced_lines() {
        let mut set = SetReplacement::new(ReplacementPolicy::Srrip, 2);
        let valid = vec![true, true];
        set.on_insert(0);
        set.on_insert(1);
        // Way 0 is re-referenced (RRPV=0), way 1 is not (RRPV=2).
        set.on_hit(0);
        assert_eq!(set.choose_victim(&valid), 1);
    }

    #[test]
    fn srrip_eventually_finds_a_victim_even_when_all_hot() {
        let mut set = SetReplacement::new(ReplacementPolicy::Srrip, 4);
        let valid = vec![true; 4];
        for way in 0..4 {
            set.on_insert(way);
            set.on_hit(way);
        }
        let victim = set.choose_victim(&valid);
        assert!(victim < 4);
    }

    #[test]
    fn mask_and_slice_victim_selection_agree() {
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Srrip] {
            let mut by_slice = SetReplacement::new(policy, 4);
            let mut by_mask = SetReplacement::new(policy, 4);
            for way in 0..4 {
                by_slice.on_insert(way);
                by_mask.on_insert(way);
            }
            by_slice.on_hit(1);
            by_mask.on_hit(1);
            let valid = [true, true, false, true];
            let mask = 0b1011u64;
            assert_eq!(
                by_slice.choose_victim(&valid),
                by_mask.choose_victim_mask(mask),
                "{policy:?}"
            );
            let all = [true; 4];
            assert_eq!(
                by_slice.choose_victim(&all),
                by_mask.choose_victim_mask(0b1111),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn mask_prefers_lowest_invalid_way() {
        let mut set = SetReplacement::new(ReplacementPolicy::Lru, 8);
        assert_eq!(set.choose_victim_mask(0b1111_0101), 1);
        assert_eq!(set.choose_victim_mask(0), 0);
    }

    #[test]
    fn full_64_way_mask_is_supported() {
        let mut set = SetReplacement::new(ReplacementPolicy::Lru, 64);
        for way in 0..64 {
            set.on_insert(way);
        }
        set.on_hit(0);
        let victim = set.choose_victim_mask(u64::MAX);
        assert!(victim > 0 && victim < 64);
    }

    #[test]
    fn lru_victim_rotates_under_streaming() {
        let mut set = SetReplacement::new(ReplacementPolicy::Lru, 2);
        let valid = vec![true; 2];
        set.on_insert(0);
        set.on_insert(1);
        let v1 = set.choose_victim(&valid);
        set.on_insert(v1);
        let v2 = set.choose_victim(&valid);
        assert_ne!(v1, v2);
    }
}
