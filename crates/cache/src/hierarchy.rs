//! The three-level cache hierarchy (L1I, L1D, L2, L3) with prefetchers,
//! mirroring the paper's baseline configuration (Table 4).

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::prefetch::{IpStridePrefetcher, PrefetchTargets, Prefetcher, StreamPrefetcher};
use serde::{Deserialize, Serialize};
use vm_types::{AccessType, Cycles, FixedVec, PhysAddr, Requestor, VirtAddr};

/// Cache-line addresses fetched from DRAM by one hierarchy access: the
/// demand line plus any prefetch targets that missed. Inline capacity
/// covers 1 demand + the baseline prefetchers' combined degree.
pub type DramFetchList = FixedVec<PhysAddr, 8>;

/// Dirty lines written back to DRAM by one hierarchy access: at most one
/// per fill (3 demand fills + 2 per prefetch target).
pub type WritebackList = FixedVec<PhysAddr, 16>;

/// Cache levels, from closest to the core to closest to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// L1 instruction cache.
    L1I,
    /// L1 data cache.
    L1D,
    /// Unified L2.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory (the access missed everywhere).
    Memory,
}

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache configuration.
    pub l1i: CacheConfig,
    /// L1 data cache configuration.
    pub l1d: CacheConfig,
    /// Unified L2 configuration.
    pub l2: CacheConfig,
    /// Last-level cache configuration.
    pub l3: CacheConfig,
    /// Enable the L1 IP-stride prefetcher.
    pub l1_prefetcher: bool,
    /// Enable the L2 stream prefetcher.
    pub l2_prefetcher: bool,
    /// Allow page-table entries to be cached in the data caches.
    pub cache_page_table: bool,
}

impl HierarchyConfig {
    /// The paper's baseline hierarchy (Table 4).
    pub fn paper_baseline() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1_instruction(),
            l1d: CacheConfig::l1_data(),
            l2: CacheConfig::l2(),
            l3: CacheConfig::l3(),
            l1_prefetcher: true,
            l2_prefetcher: true,
            cache_page_table: true,
        }
    }

    /// A small hierarchy for fast unit tests.
    pub fn small_test() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::tiny("L1I"),
            l1d: CacheConfig::tiny("L1D"),
            l2: CacheConfig {
                capacity_bytes: 4096,
                ..CacheConfig::tiny("L2")
            },
            l3: CacheConfig {
                capacity_bytes: 8192,
                ..CacheConfig::tiny("L3")
            },
            l1_prefetcher: false,
            l2_prefetcher: false,
            cache_page_table: true,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper_baseline()
    }
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyAccess {
    /// Level at which the access was satisfied.
    pub hit_level: Level,
    /// Total latency of the access through the hierarchy, excluding DRAM.
    pub latency: Cycles,
    /// Cache-line addresses that must be fetched from DRAM (the demand line
    /// when the access missed everywhere, plus any prefetches that missed).
    /// Stored inline — building this list allocates nothing.
    pub dram_fetches: DramFetchList,
    /// Dirty lines that must be written back to DRAM. Stored inline.
    pub writebacks: WritebackList,
}

impl HierarchyAccess {
    /// `true` when the demand access requires a DRAM fetch.
    pub fn needs_dram(&self) -> bool {
        self.hit_level == Level::Memory
    }
}

/// Aggregated statistics of the whole hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// L3 statistics.
    pub l3: CacheStats,
}

/// The cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    l1_prefetcher: Option<IpStridePrefetcher>,
    l2_prefetcher: Option<StreamPrefetcher>,
}

impl CacheHierarchy {
    /// Builds the hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            l1i: Cache::new(config.l1i.clone()),
            l1d: Cache::new(config.l1d.clone()),
            l2: Cache::new(config.l2.clone()),
            l3: Cache::new(config.l3.clone()),
            l1_prefetcher: config.l1_prefetcher.then(IpStridePrefetcher::default),
            l2_prefetcher: config.l2_prefetcher.then(StreamPrefetcher::default),
            config,
        }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Snapshot of all per-level statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats().clone(),
            l1d: self.l1d.stats().clone(),
            l2: self.l2.stats().clone(),
            l3: self.l3.stats().clone(),
        }
    }

    /// Resets statistics in every level.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
    }

    /// Performs a data access (load/store) through L1D → L2 → L3.
    pub fn access(
        &mut self,
        paddr: PhysAddr,
        kind: AccessType,
        requestor: Requestor,
    ) -> HierarchyAccess {
        self.access_with_pc(VirtAddr::ZERO, paddr, kind, requestor)
    }

    /// Performs a data access, supplying the program counter so the
    /// IP-stride prefetcher can train.
    pub fn access_with_pc(
        &mut self,
        pc: VirtAddr,
        paddr: PhysAddr,
        kind: AccessType,
        requestor: Requestor,
    ) -> HierarchyAccess {
        let is_write = kind.is_write();
        let is_fetch = kind == AccessType::Fetch;
        let mut latency = Cycles::ZERO;
        let mut writebacks = WritebackList::new();
        let mut dram_fetches = DramFetchList::new();

        let l1 = if is_fetch {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        latency += l1.latency();
        let hit_level = if l1.lookup(paddr, is_write, requestor).is_hit() {
            if is_fetch {
                Level::L1I
            } else {
                Level::L1D
            }
        } else {
            latency += self.l2.latency();
            if self.l2.lookup(paddr, is_write, requestor).is_hit() {
                // Fill into L1.
                let l1 = if is_fetch {
                    &mut self.l1i
                } else {
                    &mut self.l1d
                };
                writebacks.extend(l1.fill(paddr, is_write, false));
                Level::L2
            } else {
                latency += self.l3.latency();
                if self.l3.lookup(paddr, is_write, requestor).is_hit() {
                    writebacks.extend(self.l2.fill(paddr, false, false));
                    let l1 = if is_fetch {
                        &mut self.l1i
                    } else {
                        &mut self.l1d
                    };
                    writebacks.extend(l1.fill(paddr, is_write, false));
                    Level::L3
                } else {
                    // Miss everywhere: fill the entire path and report the
                    // DRAM fetch to the caller.
                    dram_fetches.push(paddr.cache_line());
                    writebacks.extend(self.l3.fill(paddr, false, false));
                    writebacks.extend(self.l2.fill(paddr, false, false));
                    let l1 = if is_fetch {
                        &mut self.l1i
                    } else {
                        &mut self.l1d
                    };
                    writebacks.extend(l1.fill(paddr, is_write, false));
                    Level::Memory
                }
            }
        };

        // Train prefetchers on demand data accesses from the application.
        let mut prefetch_spilled = false;
        if !is_fetch && requestor == Requestor::Application {
            let mut prefetch_targets = PrefetchTargets::new();
            if let Some(pf) = &mut self.l1_prefetcher {
                pf.observe(pc, paddr, &mut prefetch_targets);
            }
            if let Some(pf) = &mut self.l2_prefetcher {
                pf.observe(pc, paddr, &mut prefetch_targets);
            }
            prefetch_spilled = prefetch_targets.spilled();
            for &target in prefetch_targets.iter() {
                if !self.l2.contains(target) && !self.l3.contains(target) {
                    dram_fetches.push(target.cache_line());
                    writebacks.extend(self.l3.fill(target, false, true));
                    writebacks.extend(self.l2.fill(target, false, true));
                }
            }
        }

        // The demand path fills at most three levels and the baseline
        // prefetchers propose at most 6 lines; both lists must therefore
        // stay inline unless a non-default prefetcher overflowed its own
        // inline budget first.
        debug_assert!(
            prefetch_spilled || (!dram_fetches.spilled() && !writebacks.spilled()),
            "hierarchy access fan-out must fit the inline lists"
        );

        HierarchyAccess {
            hit_level,
            latency,
            dram_fetches,
            writebacks,
        }
    }

    /// Performs a page-table-entry access. When `cache_page_table` is
    /// enabled the PTE traverses L2/L3 like data (it is not installed in L1,
    /// matching common MMU designs); otherwise it always goes to memory.
    pub fn access_page_table(&mut self, paddr: PhysAddr) -> HierarchyAccess {
        if !self.config.cache_page_table {
            let mut dram_fetches = DramFetchList::new();
            dram_fetches.push(paddr.cache_line());
            return HierarchyAccess {
                hit_level: Level::Memory,
                latency: Cycles::ZERO,
                dram_fetches,
                writebacks: WritebackList::new(),
            };
        }
        let mut latency = self.l2.latency();
        let mut writebacks = WritebackList::new();
        let mut dram_fetches = DramFetchList::new();
        let hit_level = if self
            .l2
            .lookup(paddr, false, Requestor::PageTableWalker)
            .is_hit()
        {
            Level::L2
        } else {
            latency += self.l3.latency();
            if self
                .l3
                .lookup(paddr, false, Requestor::PageTableWalker)
                .is_hit()
            {
                writebacks.extend(self.l2.fill(paddr, false, false));
                Level::L3
            } else {
                dram_fetches.push(paddr.cache_line());
                writebacks.extend(self.l3.fill(paddr, false, false));
                writebacks.extend(self.l2.fill(paddr, false, false));
                Level::Memory
            }
        };
        HierarchyAccess {
            hit_level,
            latency,
            dram_fetches,
            writebacks,
        }
    }

    /// Invalidates a cache line everywhere (e.g. when the kernel modifies a
    /// page-table entry and the hardware invalidates stale cached copies).
    pub fn invalidate(&mut self, paddr: PhysAddr) {
        self.l1i.invalidate(paddr);
        self.l1d.invalidate(paddr);
        self.l2.invalidate(paddr);
        self.l3.invalidate(paddr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::small_test())
    }

    #[test]
    fn cold_access_misses_to_memory_then_hits_in_l1() {
        let mut h = hierarchy();
        let a = h.access(
            PhysAddr::new(0x1000),
            AccessType::Read,
            Requestor::Application,
        );
        assert_eq!(a.hit_level, Level::Memory);
        assert!(a.needs_dram());
        assert_eq!(a.dram_fetches.len(), 1);

        let b = h.access(
            PhysAddr::new(0x1000),
            AccessType::Read,
            Requestor::Application,
        );
        assert_eq!(b.hit_level, Level::L1D);
        assert!(!b.needs_dram());
        assert!(b.latency < a.latency);
    }

    #[test]
    fn instruction_fetches_use_l1i() {
        let mut h = hierarchy();
        h.access(
            PhysAddr::new(0x2000),
            AccessType::Fetch,
            Requestor::Application,
        );
        let again = h.access(
            PhysAddr::new(0x2000),
            AccessType::Fetch,
            Requestor::Application,
        );
        assert_eq!(again.hit_level, Level::L1I);
        // The same line is NOT in L1D.
        let data = h.access(
            PhysAddr::new(0x2000),
            AccessType::Read,
            Requestor::Application,
        );
        assert_ne!(data.hit_level, Level::L1D);
    }

    #[test]
    fn latency_grows_with_depth() {
        let cfg = HierarchyConfig::paper_baseline();
        let mut h = CacheHierarchy::new(cfg.clone());
        let miss = h.access(
            PhysAddr::new(0x9000),
            AccessType::Read,
            Requestor::Application,
        );
        let l1_hit = h.access(
            PhysAddr::new(0x9000),
            AccessType::Read,
            Requestor::Application,
        );
        assert_eq!(
            miss.latency,
            cfg.l1d.latency + cfg.l2.latency + cfg.l3.latency
        );
        assert_eq!(l1_hit.latency, cfg.l1d.latency);
    }

    #[test]
    fn evicted_from_l1_hits_in_l2() {
        let mut h = hierarchy();
        // Touch many distinct lines so early ones fall out of tiny L1 but stay
        // in the larger L2/L3.
        for i in 0..32u64 {
            h.access(
                PhysAddr::new(i * 64),
                AccessType::Read,
                Requestor::Application,
            );
        }
        let back = h.access(PhysAddr::new(0), AccessType::Read, Requestor::Application);
        assert!(matches!(back.hit_level, Level::L2 | Level::L3 | Level::L1D));
        assert!(!back.needs_dram());
    }

    #[test]
    fn page_table_accesses_bypass_l1_and_can_be_cached() {
        let mut h = hierarchy();
        let first = h.access_page_table(PhysAddr::new(0x8_0000));
        assert_eq!(first.hit_level, Level::Memory);
        let second = h.access_page_table(PhysAddr::new(0x8_0000));
        assert_eq!(second.hit_level, Level::L2);
    }

    #[test]
    fn page_table_caching_can_be_disabled() {
        let mut cfg = HierarchyConfig::small_test();
        cfg.cache_page_table = false;
        let mut h = CacheHierarchy::new(cfg);
        let first = h.access_page_table(PhysAddr::new(0x8_0000));
        let second = h.access_page_table(PhysAddr::new(0x8_0000));
        assert!(first.needs_dram());
        assert!(second.needs_dram());
    }

    #[test]
    fn invalidate_flushes_all_levels() {
        let mut h = hierarchy();
        h.access(
            PhysAddr::new(0x7000),
            AccessType::Read,
            Requestor::Application,
        );
        h.invalidate(PhysAddr::new(0x7000));
        let again = h.access(
            PhysAddr::new(0x7000),
            AccessType::Read,
            Requestor::Application,
        );
        assert_eq!(again.hit_level, Level::Memory);
    }

    #[test]
    fn prefetcher_issues_extra_dram_fetches_on_streams() {
        let mut cfg = HierarchyConfig::small_test();
        cfg.l2_prefetcher = true;
        let mut h = CacheHierarchy::new(cfg);
        let mut prefetched = 0;
        for i in 0..16u64 {
            let r = h.access_with_pc(
                VirtAddr::new(0x400),
                PhysAddr::new(0x10_0000 + i * 64),
                AccessType::Read,
                Requestor::Application,
            );
            prefetched += r.dram_fetches.len().saturating_sub(1);
        }
        assert!(prefetched > 0, "stream prefetcher should fetch ahead");
    }

    #[test]
    fn kernel_traffic_pollutes_caches() {
        let mut h = hierarchy();
        // Fill with application data.
        for i in 0..16u64 {
            h.access(
                PhysAddr::new(i * 64),
                AccessType::Read,
                Requestor::Application,
            );
        }
        // Kernel touches a large footprint.
        for i in 0..256u64 {
            h.access(
                PhysAddr::new(0x100_0000 + i * 64),
                AccessType::Read,
                Requestor::Kernel,
            );
        }
        // Application line 0 was evicted by kernel pollution.
        let r = h.access(PhysAddr::new(0), AccessType::Read, Requestor::Application);
        assert_eq!(r.hit_level, Level::Memory);
        assert!(h.stats().l1d.kernel_misses.get() > 0);
    }

    #[test]
    fn writebacks_are_reported() {
        let mut h = hierarchy();
        // Dirty many lines, then stream reads to force dirty evictions.
        for i in 0..64u64 {
            h.access(
                PhysAddr::new(i * 64),
                AccessType::Write,
                Requestor::Application,
            );
        }
        let mut wb = 0;
        for i in 64..4096u64 {
            wb += h
                .access(
                    PhysAddr::new(i * 64),
                    AccessType::Read,
                    Requestor::Application,
                )
                .writebacks
                .len();
        }
        assert!(wb > 0);
    }
}
