//! Hardware prefetchers: IP-stride (L1) and next-line stream (L2), matching
//! the paper's baseline configuration (Table 4).

use serde::{Deserialize, Serialize};
use vm_types::{FixedVec, PhysAddr, VirtAddr, CACHE_LINE_BYTES};

/// The prefetch-target list filled by [`Prefetcher::observe`]: inline
/// capacity covers the combined degree of the baseline prefetchers
/// (IP-stride degree 2 + stream degree 4), so the steady-state loop never
/// heap-allocates for prefetch proposals.
pub type PrefetchTargets = FixedVec<PhysAddr, 8>;

/// A hardware prefetcher observing the demand-access stream of one cache and
/// proposing additional line addresses to fetch.
pub trait Prefetcher {
    /// Observes one demand access (with the program counter that issued it,
    /// when available) and appends the physical line addresses to prefetch
    /// to `out` (an inline vector — no allocation on the hot path).
    fn observe(&mut self, pc: VirtAddr, paddr: PhysAddr, out: &mut PrefetchTargets);
}

/// IP-stride prefetcher (Fu et al., MICRO 1992): tracks the last address and
/// stride per instruction pointer; after two consecutive accesses with the
/// same stride it prefetches `degree` lines ahead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpStridePrefetcher {
    table_size: usize,
    degree: usize,
    entries: Vec<StrideEntry>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct StrideEntry {
    valid: bool,
    pc_tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

impl IpStridePrefetcher {
    /// Creates a prefetcher with a table of `table_size` IPs and prefetch
    /// degree `degree`.
    pub fn new(table_size: usize, degree: usize) -> Self {
        IpStridePrefetcher {
            table_size: table_size.max(1),
            degree,
            entries: vec![StrideEntry::default(); table_size.max(1)],
        }
    }
}

impl Default for IpStridePrefetcher {
    fn default() -> Self {
        IpStridePrefetcher::new(64, 2)
    }
}

impl Prefetcher for IpStridePrefetcher {
    fn observe(&mut self, pc: VirtAddr, paddr: PhysAddr, out: &mut PrefetchTargets) {
        let idx = (pc.raw() as usize / 4) % self.table_size;
        let entry = &mut self.entries[idx];
        let addr = paddr.raw();

        if entry.valid && entry.pc_tag == pc.raw() {
            let stride = addr as i64 - entry.last_addr as i64;
            if stride != 0 && stride == entry.stride {
                entry.confidence = entry.confidence.saturating_add(1);
            } else {
                entry.confidence = entry.confidence.saturating_sub(1);
                entry.stride = stride;
            }
            entry.last_addr = addr;
            if entry.confidence >= 2 && entry.stride != 0 {
                for d in 1..=self.degree as i64 {
                    let target = addr as i64 + entry.stride * d;
                    if target > 0 {
                        out.push(PhysAddr::new(target as u64).cache_line());
                    }
                }
            }
        } else {
            *entry = StrideEntry {
                valid: true,
                pc_tag: pc.raw(),
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
        }
    }
}

/// Simple next-N-line stream prefetcher (Chen & Baer, 1995 style): detects
/// ascending line-granular streams and prefetches the next `degree` lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamPrefetcher {
    degree: usize,
    last_line: Option<u64>,
    ascending: u8,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher with the given degree.
    pub fn new(degree: usize) -> Self {
        StreamPrefetcher {
            degree,
            last_line: None,
            ascending: 0,
        }
    }
}

impl Default for StreamPrefetcher {
    fn default() -> Self {
        StreamPrefetcher::new(4)
    }
}

impl Prefetcher for StreamPrefetcher {
    fn observe(&mut self, _pc: VirtAddr, paddr: PhysAddr, out: &mut PrefetchTargets) {
        let line = paddr.raw() / CACHE_LINE_BYTES;
        if let Some(last) = self.last_line {
            if line == last + 1 || line == last {
                if line == last + 1 {
                    self.ascending = self.ascending.saturating_add(1);
                }
            } else {
                self.ascending = 0;
            }
            if self.ascending >= 2 {
                for d in 1..=self.degree as u64 {
                    out.push(PhysAddr::new((line + d) * CACHE_LINE_BYTES));
                }
            }
        }
        self.last_line = Some(line);
    }
}

/// A prefetcher that never prefetches (for configurations without one).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn observe(&mut self, _pc: VirtAddr, _paddr: PhysAddr, _out: &mut PrefetchTargets) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe(pf: &mut impl Prefetcher, pc: VirtAddr, paddr: PhysAddr) -> PrefetchTargets {
        let mut out = PrefetchTargets::new();
        pf.observe(pc, paddr, &mut out);
        out
    }

    #[test]
    fn ip_stride_detects_constant_stride() {
        let mut pf = IpStridePrefetcher::new(16, 2);
        let pc = VirtAddr::new(0x400);
        let mut issued = PrefetchTargets::new();
        for i in 0..6u64 {
            issued = observe(&mut pf, pc, PhysAddr::new(0x1000 + i * 256));
        }
        assert_eq!(issued.len(), 2);
        assert!(issued[0].raw() > 0x1000);
    }

    #[test]
    fn ip_stride_ignores_random_pattern() {
        let mut pf = IpStridePrefetcher::new(16, 2);
        let pc = VirtAddr::new(0x400);
        let addrs = [0x1000u64, 0x9000, 0x2000, 0xffff0, 0x300];
        let mut total = 0;
        for a in addrs {
            total += observe(&mut pf, pc, PhysAddr::new(a)).len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn ip_stride_tracks_per_pc() {
        let mut pf = IpStridePrefetcher::new(16, 1);
        // Two PCs with interleaved but individually strided streams.
        let pc_a = VirtAddr::new(0x100);
        let pc_b = VirtAddr::new(0x104);
        let mut a_prefetches = 0;
        for i in 0..8u64 {
            a_prefetches += observe(&mut pf, pc_a, PhysAddr::new(0x10_000 + i * 64)).len();
            observe(&mut pf, pc_b, PhysAddr::new(0x90_000 + i * 4096));
        }
        assert!(a_prefetches > 0);
    }

    #[test]
    fn stream_prefetcher_follows_sequential_lines() {
        let mut pf = StreamPrefetcher::new(4);
        let mut last = PrefetchTargets::new();
        for i in 0..5u64 {
            last = observe(&mut pf, VirtAddr::ZERO, PhysAddr::new(i * 64));
        }
        assert_eq!(last.len(), 4);
        assert_eq!(last[0].raw(), 5 * 64);
    }

    #[test]
    fn stream_prefetcher_resets_on_jump() {
        let mut pf = StreamPrefetcher::new(4);
        for i in 0..5u64 {
            observe(&mut pf, VirtAddr::ZERO, PhysAddr::new(i * 64));
        }
        // A far jump breaks the stream.
        let out = observe(&mut pf, VirtAddr::ZERO, PhysAddr::new(0x100_0000));
        assert!(out.is_empty());
    }

    #[test]
    fn null_prefetcher_never_prefetches() {
        let mut pf = NullPrefetcher;
        assert!(observe(&mut pf, VirtAddr::new(1), PhysAddr::new(2)).is_empty());
    }

    #[test]
    fn baseline_degrees_never_spill_the_inline_buffer() {
        let mut targets = PrefetchTargets::new();
        let mut ip = IpStridePrefetcher::default();
        let mut stream = StreamPrefetcher::default();
        for i in 0..16u64 {
            targets.clear();
            ip.observe(
                VirtAddr::new(0x400),
                PhysAddr::new(0x1000 + i * 64),
                &mut targets,
            );
            stream.observe(
                VirtAddr::new(0x400),
                PhysAddr::new(0x1000 + i * 64),
                &mut targets,
            );
            assert!(!targets.spilled(), "degree 2 + degree 4 fit inline");
        }
    }
}
