//! Set-associative cache models, replacement policies, hardware prefetchers
//! and the three-level cache hierarchy used by the Virtuoso baseline system
//! (Table 4 of the paper: 32 KB L1 I/D, 2 MB L2 with SRRIP and a stream
//! prefetcher, 2 MB/core L3).
//!
//! The cache models are *timing generating*: a lookup returns whether the
//! line hit and at which level, and the hierarchy translates that into an
//! access latency plus the list of cache-line fills that must be fetched
//! from DRAM. Page-table entries can also be cached in the data caches
//! (as real MMUs do), which is what lets the framework capture the
//! "PT data volume in caches" dynamic effect the paper highlights.
//!
//! # Examples
//!
//! ```
//! use cache_sim::{CacheConfig, CacheHierarchy, HierarchyConfig};
//! use vm_types::{AccessType, PhysAddr, Requestor};
//!
//! let mut hierarchy = CacheHierarchy::new(HierarchyConfig::paper_baseline());
//! let result = hierarchy.access(PhysAddr::new(0x1000), AccessType::Read, Requestor::Application);
//! assert!(result.needs_dram()); // cold miss goes to memory
//! let again = hierarchy.access(PhysAddr::new(0x1000), AccessType::Read, Requestor::Application);
//! assert!(!again.needs_dram()); // now it hits
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod prefetch;
pub mod replacement;

pub use cache::{Cache, CacheConfig, CacheStats, LookupResult};
pub use hierarchy::{
    CacheHierarchy, DramFetchList, HierarchyAccess, HierarchyConfig, HierarchyStats, Level,
    WritebackList,
};
pub use prefetch::{IpStridePrefetcher, PrefetchTargets, Prefetcher, StreamPrefetcher};
pub use replacement::ReplacementPolicy;
