//! A single set-associative cache.

use crate::replacement::{ReplacementPolicy, SetReplacement};
use serde::{Deserialize, Serialize};
use vm_types::{Counter, Cycles, FastDiv, PhysAddr, Requestor, CACHE_LINE_BYTES};

/// Configuration of one cache level.
///
/// # Examples
///
/// ```
/// use cache_sim::CacheConfig;
/// let l1 = CacheConfig::l1_data();
/// assert_eq!(l1.capacity_bytes, 32 * 1024);
/// assert_eq!(l1.num_sets() * l1.ways as usize * 64, l1.capacity_bytes as usize);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Human-readable name used in statistics output (e.g. `"L1D"`).
    pub name: String,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Access latency in core cycles.
    pub latency: Cycles,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Paper baseline L1 data cache: 32 KB, 8-way, 4-cycle, LRU.
    pub fn l1_data() -> Self {
        CacheConfig {
            name: "L1D".to_string(),
            capacity_bytes: 32 * 1024,
            ways: 8,
            latency: Cycles::new(4),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Paper baseline L1 instruction cache: 32 KB, 8-way, 4-cycle, LRU.
    pub fn l1_instruction() -> Self {
        CacheConfig {
            name: "L1I".to_string(),
            ..CacheConfig::l1_data()
        }
    }

    /// Paper baseline L2: 2 MB, 16-way, 16-cycle, SRRIP.
    pub fn l2() -> Self {
        CacheConfig {
            name: "L2".to_string(),
            capacity_bytes: 2 * 1024 * 1024,
            ways: 16,
            latency: Cycles::new(16),
            replacement: ReplacementPolicy::Srrip,
        }
    }

    /// Paper baseline L3: 2 MB per core, 16-way, 35-cycle, SRRIP.
    pub fn l3() -> Self {
        CacheConfig {
            name: "L3".to_string(),
            capacity_bytes: 2 * 1024 * 1024,
            ways: 16,
            latency: Cycles::new(35),
            replacement: ReplacementPolicy::Srrip,
        }
    }

    /// A tiny cache useful in unit tests (1 KB, 2-way).
    pub fn tiny(name: &str) -> Self {
        CacheConfig {
            name: name.to_string(),
            capacity_bytes: 1024,
            ways: 2,
            latency: Cycles::new(1),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Number of sets implied by capacity, associativity and line size.
    pub fn num_sets(&self) -> usize {
        (self.capacity_bytes / (self.ways as u64 * CACHE_LINE_BYTES)).max(1) as usize
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LookupResult {
    /// The line was present.
    Hit,
    /// The line was absent.
    Miss,
}

impl LookupResult {
    /// `true` when the lookup hit.
    pub const fn is_hit(self) -> bool {
        matches!(self, LookupResult::Hit)
    }
}

/// Per-cache statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
    /// Lines evicted to make room for fills.
    pub evictions: Counter,
    /// Fills triggered by prefetch requests.
    pub prefetch_fills: Counter,
    /// Hits whose line was brought in by a prefetch (useful-prefetch count).
    pub prefetch_hits: Counter,
    /// Misses attributable to the kernel instruction stream (MimicOS),
    /// used to quantify kernel-induced cache pollution.
    pub kernel_misses: Counter,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Miss ratio in `[0, 1]` (0 when there were no lookups).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.misses.get() as f64 / total as f64
        }
    }
}

/// One cache line, packed into a single word: the tag in the high bits,
/// prefetched / dirty / valid flags in the low three. Packing keeps a
/// whole 16-way set inside two host cache lines, so the way scan every
/// lookup and fill performs stays cheap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Line(u64);

impl Line {
    const VALID: u64 = 0b001;
    const DIRTY: u64 = 0b010;
    const PREFETCHED: u64 = 0b100;

    fn new(tag: u64, dirty: bool, prefetched: bool) -> Self {
        let mut bits = (tag << 3) | Self::VALID;
        if dirty {
            bits |= Self::DIRTY;
        }
        if prefetched {
            bits |= Self::PREFETCHED;
        }
        Line(bits)
    }

    fn valid(self) -> bool {
        self.0 & Self::VALID != 0
    }

    fn dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    fn prefetched(self) -> bool {
        self.0 & Self::PREFETCHED != 0
    }

    fn tag(self) -> u64 {
        self.0 >> 3
    }

    fn matches(self, tag: u64) -> bool {
        self.valid() && self.tag() == tag
    }

    fn set_dirty(&mut self) {
        self.0 |= Self::DIRTY;
    }

    fn clear_prefetched(&mut self) {
        self.0 &= !Self::PREFETCHED;
    }

    fn invalidate(&mut self) {
        self.0 = 0;
    }
}

/// A single set-associative cache with physical tags.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    /// Flat set-major line storage: the `ways` lines of set `s` live at
    /// `lines[s * ways .. (s + 1) * ways]` — one contiguous allocation
    /// instead of a pointer chase into a per-set `Vec` on every access.
    lines: Vec<Line>,
    ways: usize,
    replacement: Vec<SetReplacement>,
    stats: CacheStats,
    /// Precomputed set-count divisor (a mask/shift for the power-of-two
    /// geometries every shipped configuration uses).
    set_div: FastDiv,
}

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        let ways = config.ways as usize;
        Cache {
            lines: vec![Line::default(); num_sets * ways],
            ways,
            replacement: (0..num_sets)
                .map(|_| SetReplacement::new(config.replacement, ways))
                .collect(),
            config,
            stats: CacheStats::default(),
            set_div: FastDiv::new(num_sets as u64),
        }
    }

    fn set(&self, set_idx: usize) -> &[Line] {
        &self.lines[set_idx * self.ways..(set_idx + 1) * self.ways]
    }

    fn set_mut(&mut self, set_idx: usize) -> &mut [Line] {
        &mut self.lines[set_idx * self.ways..(set_idx + 1) * self.ways]
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Access latency of this cache level.
    pub fn latency(&self) -> Cycles {
        self.config.latency
    }

    fn index_and_tag(&self, paddr: PhysAddr) -> (usize, u64) {
        let line = paddr.raw() / CACHE_LINE_BYTES;
        let set = self.set_div.rem(line) as usize;
        let tag = self.set_div.div(line);
        (set, tag)
    }

    /// Looks up a cache line without modifying contents on a miss.
    /// Updates hit/miss statistics and replacement state on hits.
    pub fn lookup(
        &mut self,
        paddr: PhysAddr,
        is_write: bool,
        requestor: Requestor,
    ) -> LookupResult {
        let (set_idx, tag) = self.index_and_tag(paddr);
        let set = self.set_mut(set_idx);
        if let Some(way) = set.iter().position(|l| l.matches(tag)) {
            if is_write {
                set[way].set_dirty();
            }
            if set[way].prefetched() {
                set[way].clear_prefetched();
                self.stats.prefetch_hits.inc();
            }
            self.replacement[set_idx].on_hit(way);
            self.stats.hits.inc();
            LookupResult::Hit
        } else {
            self.stats.misses.inc();
            if requestor == Requestor::Kernel {
                self.stats.kernel_misses.inc();
            }
            LookupResult::Miss
        }
    }

    /// Fills a line into the cache (after a miss was serviced by the next
    /// level or DRAM). Returns the physical address of the evicted dirty
    /// line, if a writeback is required.
    pub fn fill(&mut self, paddr: PhysAddr, is_write: bool, prefetched: bool) -> Option<PhysAddr> {
        let (set_idx, tag) = self.index_and_tag(paddr);
        let num_sets = self.replacement.len() as u64;
        let set = &mut self.lines[set_idx * self.ways..(set_idx + 1) * self.ways];

        // If the line is already present (e.g. racing fills), just update it.
        if let Some(way) = set.iter().position(|l| l.matches(tag)) {
            if is_write {
                set[way].set_dirty();
            }
            return None;
        }

        // Way validity as a stack bitmask: no per-fill heap allocation.
        let mut valid_mask = 0u64;
        for (way, line) in set.iter().enumerate() {
            if line.valid() {
                valid_mask |= 1 << way;
            }
        }
        let victim_way = self.replacement[set_idx].choose_victim_mask(valid_mask);
        let victim = set[victim_way];
        let mut writeback = None;
        if victim.valid() {
            self.stats.evictions.inc();
            if victim.dirty() {
                let victim_line = victim.tag() * num_sets + set_idx as u64;
                writeback = Some(PhysAddr::new(victim_line * CACHE_LINE_BYTES));
            }
        }
        set[victim_way] = Line::new(tag, is_write, prefetched);
        self.replacement[set_idx].on_insert(victim_way);
        if prefetched {
            self.stats.prefetch_fills.inc();
        }
        writeback
    }

    /// Returns `true` if the line containing `paddr` is currently cached.
    pub fn contains(&self, paddr: PhysAddr) -> bool {
        let (set_idx, tag) = self.index_and_tag(paddr);
        self.set(set_idx).iter().any(|l| l.matches(tag))
    }

    /// Invalidates the line containing `paddr` if present (used for TLB
    /// shootdown-style page-table invalidations).
    pub fn invalidate(&mut self, paddr: PhysAddr) -> bool {
        let (set_idx, tag) = self.index_and_tag(paddr);
        for line in self.set_mut(set_idx) {
            if line.matches(tag) {
                line.invalidate();
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(x: u64) -> PhysAddr {
        PhysAddr::new(x)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(CacheConfig::tiny("T"));
        assert!(!c.lookup(pa(0x100), false, Requestor::Application).is_hit());
        c.fill(pa(0x100), false, false);
        assert!(c.lookup(pa(0x100), false, Requestor::Application).is_hit());
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = Cache::new(CacheConfig::tiny("T"));
        c.fill(pa(0x1000), false, false);
        assert!(c.lookup(pa(0x1004), false, Requestor::Application).is_hit());
        assert!(c.lookup(pa(0x103f), false, Requestor::Application).is_hit());
    }

    #[test]
    fn capacity_eviction_occurs() {
        let cfg = CacheConfig::tiny("T");
        let lines = cfg.capacity_bytes / CACHE_LINE_BYTES;
        let mut c = Cache::new(cfg);
        for i in 0..lines * 2 {
            c.fill(pa(i * CACHE_LINE_BYTES), false, false);
        }
        assert!(c.stats().evictions.get() > 0);
        assert_eq!(c.resident_lines() as u64, lines);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let cfg = CacheConfig::tiny("T");
        let sets = cfg.num_sets() as u64;
        let mut c = Cache::new(cfg);
        // Fill the two ways of set 0 with writes, then force a third fill in
        // the same set: one dirty victim must be written back.
        let stride = sets * CACHE_LINE_BYTES;
        assert!(c.fill(pa(0), true, false).is_none());
        assert!(c.fill(pa(stride), true, false).is_none());
        let wb = c.fill(pa(2 * stride), false, false);
        assert!(wb.is_some());
        let wb_addr = wb.unwrap().raw();
        assert!(wb_addr == 0 || wb_addr == stride);
    }

    #[test]
    fn write_hits_mark_lines_dirty() {
        let cfg = CacheConfig::tiny("T");
        let sets = cfg.num_sets() as u64;
        let stride = sets * CACHE_LINE_BYTES;
        let mut c = Cache::new(cfg);
        c.fill(pa(0), false, false);
        assert!(c.lookup(pa(0), true, Requestor::Application).is_hit());
        c.fill(pa(stride), false, false);
        // Evicting line 0 now must produce a writeback because the write hit
        // marked it dirty.
        let wb = c.fill(pa(2 * stride), false, false);
        assert!(wb.is_some());
    }

    #[test]
    fn kernel_misses_are_tracked_separately() {
        let mut c = Cache::new(CacheConfig::tiny("T"));
        c.lookup(pa(0x40), false, Requestor::Kernel);
        c.lookup(pa(0x80), false, Requestor::Application);
        assert_eq!(c.stats().kernel_misses.get(), 1);
        assert_eq!(c.stats().misses.get(), 2);
    }

    #[test]
    fn prefetch_fills_and_useful_prefetches_counted() {
        let mut c = Cache::new(CacheConfig::tiny("T"));
        c.fill(pa(0x200), false, true);
        assert_eq!(c.stats().prefetch_fills.get(), 1);
        assert!(c.lookup(pa(0x200), false, Requestor::Application).is_hit());
        assert_eq!(c.stats().prefetch_hits.get(), 1);
        // A second hit on the same line is no longer counted as prefetch hit.
        c.lookup(pa(0x200), false, Requestor::Application);
        assert_eq!(c.stats().prefetch_hits.get(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(CacheConfig::tiny("T"));
        c.fill(pa(0x300), false, false);
        assert!(c.contains(pa(0x300)));
        assert!(c.invalidate(pa(0x300)));
        assert!(!c.contains(pa(0x300)));
        assert!(!c.invalidate(pa(0x300)));
    }

    #[test]
    fn miss_ratio_reflects_traffic() {
        let mut c = Cache::new(CacheConfig::tiny("T"));
        c.lookup(pa(0x0), false, Requestor::Application);
        c.fill(pa(0x0), false, false);
        c.lookup(pa(0x0), false, Requestor::Application);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_configs_have_expected_geometry() {
        assert_eq!(CacheConfig::l1_data().num_sets(), 64);
        assert_eq!(CacheConfig::l2().num_sets(), 2048);
        assert_eq!(CacheConfig::l3().ways, 16);
        assert_eq!(CacheConfig::l1_instruction().latency, Cycles::new(4));
    }
}
