//! The workload catalogue: one specification per benchmark in the paper's
//! Table 5, scaled so that the headline experiments run on a laptop while
//! preserving each suite's qualitative behaviour (footprint class, TLB
//! pressure, allocation pattern, VMA structure).

use crate::spec::{AccessPattern, MemoryRegion, WorkloadClass, WorkloadSpec};
use vm_types::VirtAddr;

const MB: u64 = 1024 * 1024;
const GB: u64 = 1024 * MB;

/// Default instruction budget for long-running workloads (per simulation).
pub const LONG_RUNNING_INSTRUCTIONS: u64 = 200_000;
/// Default instruction budget for short-running workloads.
pub const SHORT_RUNNING_INSTRUCTIONS: u64 = 120_000;

fn long_running(name: &str, footprint: u64, pattern: AccessPattern) -> WorkloadSpec {
    let mut spec = WorkloadSpec::simple(
        name,
        WorkloadClass::LongRunning,
        footprint,
        pattern,
        LONG_RUNNING_INSTRUCTIONS,
    );
    spec.memory_fraction = 0.45;
    spec
}

fn short_running(name: &str, footprint: u64, new_page_fraction: f64) -> WorkloadSpec {
    let mut spec = WorkloadSpec::simple(
        name,
        WorkloadClass::ShortRunning,
        footprint,
        AccessPattern::AllocateAndTouch { new_page_fraction },
        SHORT_RUNNING_INSTRUCTIONS,
    );
    spec.memory_fraction = 0.35;
    spec
}

// ---------------------------------------------------------------------------
// GraphBIG (long-running, 50–100 GB in the paper; scaled footprints here).
// ---------------------------------------------------------------------------

/// Betweenness centrality — the Fig. 18 outlier: one huge VMA plus ~147
/// small ones, which thrash Midgard's VMA lookaside buffers.
pub fn graphbig_bc() -> WorkloadSpec {
    let mut regions = vec![MemoryRegion {
        start: VirtAddr::new(0x10_0000_0000),
        bytes: 768 * MB,
        file_backed: false,
        access_weight: 0.5,
    }];
    // 147 small VMAs between 4 KB and ~1 GB (scaled down), each accessed
    // often enough to matter.
    for i in 0..147u64 {
        let bytes = match i % 5 {
            0 => 4 * 1024,
            1 => 64 * 1024,
            2 => 256 * 1024,
            3 => 2 * MB,
            _ => 8 * MB,
        };
        regions.push(MemoryRegion {
            start: VirtAddr::new(0x40_0000_0000 + i * 0x4000_0000),
            bytes,
            file_backed: false,
            access_weight: 0.5 / 147.0,
        });
    }
    WorkloadSpec {
        name: "BC".to_string(),
        class: WorkloadClass::LongRunning,
        regions,
        pattern: AccessPattern::PointerChasing,
        memory_fraction: 0.45,
        instructions: LONG_RUNNING_INSTRUCTIONS,
    }
}

/// Breadth-first search.
pub fn graphbig_bfs() -> WorkloadSpec {
    long_running("BFS", 512 * MB, AccessPattern::PointerChasing)
}

/// Connected components.
pub fn graphbig_cc() -> WorkloadSpec {
    long_running("CC", 512 * MB, AccessPattern::PointerChasing)
}

/// Graph colouring.
pub fn graphbig_gc() -> WorkloadSpec {
    long_running("GC", 384 * MB, AccessPattern::PointerChasing)
}

/// k-Core decomposition.
pub fn graphbig_kc() -> WorkloadSpec {
    long_running("KC", 384 * MB, AccessPattern::PointerChasing)
}

/// PageRank.
pub fn graphbig_pr() -> WorkloadSpec {
    long_running(
        "PR",
        512 * MB,
        AccessPattern::Streaming {
            jump_probability: 0.3,
        },
    )
}

/// Single-source shortest path (the paper's highest-PTW-latency workload).
pub fn graphbig_sssp() -> WorkloadSpec {
    long_running("SSSP", 640 * MB, AccessPattern::PointerChasing)
}

/// Triangle counting.
pub fn graphbig_tc() -> WorkloadSpec {
    long_running("TC", 448 * MB, AccessPattern::PointerChasing)
}

/// XSBench: Monte Carlo neutron-transport lookup kernel (HPC).
pub fn xsbench() -> WorkloadSpec {
    long_running(
        "XS",
        640 * MB,
        AccessPattern::Streaming {
            jump_probability: 0.5,
        },
    )
}

/// GUPS / randacc: uniformly random updates, the paper's worst-case
/// page-fault-per-kilo-instruction workload.
pub fn gups_randacc() -> WorkloadSpec {
    let mut spec = long_running("RND", 512 * MB, AccessPattern::UniformRandom);
    spec.memory_fraction = 0.6;
    spec
}

// ---------------------------------------------------------------------------
// Short-running workloads (FaaS, LLM inference, image processing).
// ---------------------------------------------------------------------------

/// JSON deserialization (FaaS).
pub fn faas_json() -> WorkloadSpec {
    short_running("JSON", 24 * MB, 0.5)
}

/// AES encryption of a small payload (FaaS).
pub fn faas_aes() -> WorkloadSpec {
    short_running("AES", 16 * MB, 0.4)
}

/// Image resizing (FaaS).
pub fn faas_img_resize() -> WorkloadSpec {
    short_running("IMG-RES", 40 * MB, 0.55)
}

/// Word count over a document (FaaS).
pub fn faas_wordcount() -> WorkloadSpec {
    short_running("WCNT", 24 * MB, 0.45)
}

/// Database filter query (FaaS).
pub fn faas_db_filter() -> WorkloadSpec {
    short_running("DB", 32 * MB, 0.5)
}

/// Llama-2-7B-style short-prompt inference (weights are file-backed, the
/// KV-cache and activations are anonymous and allocation-heavy).
pub fn llm_llama() -> WorkloadSpec {
    llm("Llama-2-7B", 160 * MB)
}

/// Bagel-2.8B-style inference.
pub fn llm_bagel() -> WorkloadSpec {
    llm("Bagel-2.8B", 96 * MB)
}

/// Mistral-7B-style inference.
pub fn llm_mistral() -> WorkloadSpec {
    llm("Mistral-7B", 160 * MB)
}

fn llm(name: &str, working_set: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        class: WorkloadClass::ShortRunning,
        regions: vec![
            // Model weights: file-backed, streamed.
            MemoryRegion {
                start: VirtAddr::new(0x20_0000_0000),
                bytes: working_set,
                file_backed: true,
                access_weight: 0.45,
            },
            // KV cache / activations: anonymous, growing.
            MemoryRegion {
                start: VirtAddr::new(0x30_0000_0000),
                bytes: working_set / 2,
                file_backed: false,
                access_weight: 0.55,
            },
        ],
        pattern: AccessPattern::AllocateAndTouch {
            new_page_fraction: 0.35,
        },
        memory_fraction: 0.4,
        instructions: SHORT_RUNNING_INSTRUCTIONS,
    }
}

/// 3D matrix transposition (image processing).
pub fn img_3d_transpose() -> WorkloadSpec {
    short_running("3D-Transp", 48 * MB, 0.6)
}

/// 3D Hadamard product (image processing).
pub fn img_hadamard() -> WorkloadSpec {
    short_running("Hadamard", 48 * MB, 0.6)
}

/// 2D matrix sum (image processing).
pub fn img_2d_sum() -> WorkloadSpec {
    short_running("2D-Sum", 32 * MB, 0.55)
}

// ---------------------------------------------------------------------------
// Collections used by the figure harnesses.
// ---------------------------------------------------------------------------

/// The long-running, translation-bound workloads of Table 5 (GraphBIG +
/// HPC), in the order the paper's figures list them.
pub fn all_long_running() -> Vec<WorkloadSpec> {
    vec![
        graphbig_bc(),
        graphbig_bfs(),
        graphbig_cc(),
        graphbig_kc(),
        graphbig_gc(),
        graphbig_pr(),
        gups_randacc(),
        graphbig_sssp(),
        graphbig_tc(),
        xsbench(),
    ]
}

/// The short-running, allocation-bound workloads of Table 5.
pub fn all_short_running() -> Vec<WorkloadSpec> {
    vec![
        faas_json(),
        faas_aes(),
        faas_img_resize(),
        faas_wordcount(),
        faas_db_filter(),
        llm_llama(),
        llm_bagel(),
        llm_mistral(),
        img_3d_transpose(),
        img_hadamard(),
        img_2d_sum(),
    ]
}

/// The three LLM inference workloads of Fig. 16.
pub fn llm_workloads() -> Vec<WorkloadSpec> {
    vec![llm_bagel(), llm_llama(), llm_mistral()]
}

/// The multi-programmed mix used by the multi-process scenarios: a
/// translation-bound random-access aggressor (GUPS) co-scheduled with an
/// allocation-bound LLM inference victim. Footprints are scaled down so the
/// pair fits the small-test machine together (the paper's workloads are
/// run one-per-machine; interleaving them is the scenario-diversity
/// extension enabled by the MimicOS scheduler).
pub fn multiprogram_mix() -> Vec<WorkloadSpec> {
    vec![
        gups_randacc().scaled_footprint(0.125), // 64 MB random updates
        llm_llama().scaled_footprint(0.25),     // 40 MB weights + 20 MB KV cache
    ]
}

/// The TLB-resident multi-programmed mix: two random-access processes
/// whose working sets are sized to fit the *paper-baseline* TLB hierarchy
/// together (2 MB each = 512 four-KiB pages per process against a
/// 2048-entry L2 TLB). With ASID-tagged TLBs both working sets stay
/// resident across context switches; in the full-flush baseline every
/// switch drops them and the next quantum re-walks its whole working set
/// — the headline interference effect of the multi-process experiments,
/// which the scaled [`multiprogram_mix`] (whose GUPS aggressor overflows
/// the TLB regardless) cannot show.
pub fn multiprogram_mix_resident() -> Vec<WorkloadSpec> {
    let resident = |name: &str| {
        let mut spec = WorkloadSpec::simple(
            name,
            WorkloadClass::LongRunning,
            2 * MB,
            AccessPattern::UniformRandom,
            40_000,
        );
        spec.memory_fraction = 0.6;
        spec
    };
    vec![resident("RES-A"), resident("RES-B")]
}

/// The interference mix used by the translation-engine comparison: the
/// GUPS aggressor and the JSON FaaS victim, scaled so the pair co-resides
/// with an engine's carve-outs (e.g. a 64 MB Utopia RestSeg) on the
/// small-test machine. Run under the Midgard and Utopia engines — not
/// just the radix baseline — by the `multiprogram` experiment's engine
/// rows.
pub fn multiprogram_mix_engines() -> Vec<WorkloadSpec> {
    vec![
        gups_randacc().scaled_footprint(0.0625), // 32 MB random updates
        faas_json(),                             // 24 MB allocation-bound victim
    ]
}

/// A stress-ng-style sweep of `count` configurations with increasing memory
/// intensity (footprint and memory fraction), used for the Fig. 3 / Fig. 12
/// style studies.
pub fn stress_sweep(count: usize) -> Vec<WorkloadSpec> {
    (0..count)
        .map(|i| {
            let frac = 0.05 + 0.9 * i as f64 / count.max(1) as f64;
            let footprint = 16 * MB + (i as u64 * 24 * MB);
            let mut spec = WorkloadSpec::simple(
                &format!("stress-{i:02}"),
                WorkloadClass::LongRunning,
                footprint.min(2 * GB),
                AccessPattern::UniformRandom,
                60_000,
            );
            spec.memory_fraction = frac.min(0.95);
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::TraceSource;

    #[test]
    fn catalogue_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for spec in all_long_running().into_iter().chain(all_short_running()) {
            assert!(names.insert(spec.name.clone()), "duplicate {}", spec.name);
        }
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn classes_match_table5() {
        assert!(all_long_running()
            .iter()
            .all(|s| s.class == WorkloadClass::LongRunning));
        assert!(all_short_running()
            .iter()
            .all(|s| s.class == WorkloadClass::ShortRunning));
    }

    #[test]
    fn bc_has_the_fig18_vma_profile() {
        let bc = graphbig_bc();
        assert_eq!(bc.regions.len(), 148);
        let largest = bc.regions.iter().map(|r| r.bytes).max().unwrap();
        let small = bc.regions.iter().filter(|r| r.bytes < MB).count();
        assert!(largest >= 512 * MB);
        assert!(small >= 80);
    }

    #[test]
    fn llm_workloads_have_file_backed_weights() {
        for spec in llm_workloads() {
            assert!(spec.regions.iter().any(|r| r.file_backed), "{}", spec.name);
            assert!(spec.regions.iter().any(|r| !r.file_backed), "{}", spec.name);
        }
    }

    #[test]
    fn multiprogram_mix_pairs_aggressor_with_victim() {
        let mix = multiprogram_mix();
        assert_eq!(mix.len(), 2);
        assert_eq!(mix[0].class, WorkloadClass::LongRunning);
        assert_eq!(mix[1].class, WorkloadClass::ShortRunning);
        // Scaled to co-reside in the 256 MB small-test machine.
        let total: u64 = mix.iter().map(|s| s.footprint_bytes()).sum();
        assert!(total < 160 * MB, "mix footprint {total} too large");
        assert!(mix[1].regions.iter().any(|r| r.file_backed));
    }

    #[test]
    fn resident_mix_fits_the_paper_baseline_tlb() {
        let mix = multiprogram_mix_resident();
        assert_eq!(mix.len(), 2);
        // 2048-entry L2 TLB x 4 KiB pages = 8 MB of reach; both working
        // sets together must fit with room to spare.
        let total_pages: u64 = mix.iter().map(|s| s.footprint_bytes() / 4096).sum();
        assert!(
            total_pages <= 2048 / 2,
            "resident mix needs {total_pages} TLB entries"
        );
        for spec in &mix {
            assert_eq!(spec.class, WorkloadClass::LongRunning);
        }
    }

    #[test]
    fn engine_mix_fits_beside_an_engine_carveout() {
        let mix = multiprogram_mix_engines();
        assert_eq!(mix.len(), 2);
        let total: u64 = mix.iter().map(|s| s.footprint_bytes()).sum();
        // 256 MB machine minus a 64 MB RestSeg leaves 192 MB of FlexSeg.
        assert!(total < 128 * MB, "engine mix footprint {total} too large");
    }

    #[test]
    fn stress_sweep_increases_intensity() {
        let sweep = stress_sweep(10);
        assert_eq!(sweep.len(), 10);
        assert!(sweep[9].memory_fraction > sweep[0].memory_fraction);
        assert!(sweep[9].footprint_bytes() > sweep[0].footprint_bytes());
    }

    #[test]
    fn every_catalogue_entry_generates_a_trace() {
        for spec in all_long_running().into_iter().chain(all_short_running()) {
            let mut w = spec.with_instructions(100).build(1);
            let mut n = 0;
            while w.next_instruction().is_some() {
                n += 1;
            }
            assert_eq!(n, 100);
        }
    }
}
