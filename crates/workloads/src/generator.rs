//! The synthetic trace generator: turns a [`WorkloadSpec`] into an
//! instruction stream implementing [`TraceSource`].

use crate::spec::{AccessPattern, WorkloadSpec};
use sim_core::{Instruction, TraceSource};
use vm_types::{AccessType, DetRng, VirtAddr};

/// A deterministic synthetic workload built from a [`WorkloadSpec`].
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    spec: WorkloadSpec,
    rng: DetRng,
    produced: u64,
    /// Cursor for streaming / allocate-and-touch patterns (byte offset into
    /// the currently selected region).
    cursor: u64,
    /// Pages already touched by the allocate-and-touch pattern.
    touched_pages: u64,
    region_weights: Vec<f64>,
}

impl SyntheticWorkload {
    /// Creates a generator for `spec`, seeded deterministically.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let region_weights = spec.regions.iter().map(|r| r.access_weight).collect();
        SyntheticWorkload {
            rng: DetRng::new(seed ^ 0x5EED_0000),
            spec,
            produced: 0,
            cursor: 0,
            touched_pages: 0,
            region_weights,
        }
    }

    /// The specification this generator was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Instructions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    fn pick_region(&mut self) -> usize {
        if self.spec.regions.len() == 1 {
            0
        } else {
            self.rng.weighted_index(&self.region_weights)
        }
    }

    fn next_data_address(&mut self) -> VirtAddr {
        let region_idx = self.pick_region();
        let region = self.spec.regions[region_idx];
        let offset = match self.spec.pattern {
            AccessPattern::PointerChasing | AccessPattern::UniformRandom => {
                self.rng.gen_range(0, region.bytes.max(8)) & !0x7
            }
            AccessPattern::Streaming { jump_probability } => {
                if self.rng.gen_bool(jump_probability) {
                    self.cursor = self.rng.gen_range(0, region.bytes.max(64)) & !0x3f;
                } else {
                    self.cursor = (self.cursor + 64) % region.bytes.max(64);
                }
                self.cursor
            }
            AccessPattern::AllocateAndTouch { new_page_fraction } => {
                let total_pages = (region.bytes / 4096).max(1);
                if self.rng.gen_bool(new_page_fraction) && self.touched_pages < total_pages {
                    // Touch the next never-touched page (a fresh allocation →
                    // a page fault in the simulator).
                    let page = self.touched_pages;
                    self.touched_pages += 1;
                    (page * 4096 + self.rng.gen_range(0, 4096)) & !0x7
                } else {
                    // Revisit a recently touched page.
                    let hot = self.touched_pages.clamp(1, 64);
                    let page = self
                        .touched_pages
                        .saturating_sub(self.rng.gen_range(1, hot + 1));
                    page * 4096 + (self.rng.gen_range(0, 4096) & !0x7)
                }
            }
        };
        region.start.add(offset.min(region.bytes.saturating_sub(8)))
    }
}

impl TraceSource for SyntheticWorkload {
    fn next_instruction(&mut self) -> Option<Instruction> {
        if self.produced >= self.spec.instructions {
            return None;
        }
        self.produced += 1;
        let pc = VirtAddr::new(0x40_0000 + (self.produced % 4096) * 4);
        if self.rng.gen_bool(self.spec.memory_fraction) {
            let addr = self.next_data_address();
            let kind = if self.rng.gen_bool(0.3) {
                AccessType::Write
            } else {
                AccessType::Read
            };
            Some(Instruction {
                pc,
                memory: Some((addr, kind)),
            })
        } else {
            Some(Instruction::compute(pc))
        }
    }

    fn name(&self) -> &str {
        &self.spec.name
    }

    fn expected_instructions(&self) -> Option<u64> {
        Some(self.spec.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadClass;

    fn spec(pattern: AccessPattern) -> WorkloadSpec {
        WorkloadSpec::simple("t", WorkloadClass::LongRunning, 1 << 24, pattern, 10_000)
    }

    #[test]
    fn produces_exactly_the_requested_instructions() {
        let mut w = spec(AccessPattern::UniformRandom).build(1);
        let mut count = 0;
        while w.next_instruction().is_some() {
            count += 1;
        }
        assert_eq!(count, 10_000);
        assert_eq!(w.produced(), 10_000);
        assert!(w.next_instruction().is_none());
    }

    #[test]
    fn addresses_stay_inside_the_region() {
        for pattern in [
            AccessPattern::UniformRandom,
            AccessPattern::PointerChasing,
            AccessPattern::Streaming {
                jump_probability: 0.05,
            },
            AccessPattern::AllocateAndTouch {
                new_page_fraction: 0.2,
            },
        ] {
            let s = spec(pattern);
            let start = s.regions[0].start.raw();
            let end = start + s.regions[0].bytes;
            let mut w = s.build(3);
            while let Some(instr) = w.next_instruction() {
                if let Some((addr, _)) = instr.memory {
                    assert!(
                        addr.raw() >= start && addr.raw() < end,
                        "{addr} outside region"
                    );
                }
            }
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_trace() {
        let s = spec(AccessPattern::UniformRandom);
        let mut a = s.build(9);
        let mut b = s.build(9);
        for _ in 0..1000 {
            assert_eq!(a.next_instruction(), b.next_instruction());
        }
    }

    #[test]
    fn memory_fraction_is_respected_approximately() {
        let mut s = spec(AccessPattern::UniformRandom);
        s.memory_fraction = 0.5;
        let mut w = s.build(11);
        let mut mem = 0;
        let mut total = 0;
        while let Some(i) = w.next_instruction() {
            total += 1;
            if i.is_memory() {
                mem += 1;
            }
        }
        let frac = mem as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "memory fraction {frac}");
    }

    #[test]
    fn random_patterns_touch_many_distinct_pages() {
        let mut w = spec(AccessPattern::PointerChasing).build(13);
        let mut pages = std::collections::HashSet::new();
        while let Some(i) = w.next_instruction() {
            if let Some((addr, _)) = i.memory {
                pages.insert(addr.raw() >> 12);
            }
        }
        assert!(pages.len() > 500, "only {} pages", pages.len());
    }

    #[test]
    fn allocate_and_touch_grows_footprint_monotonically() {
        let mut w = spec(AccessPattern::AllocateAndTouch {
            new_page_fraction: 0.3,
        })
        .build(17);
        let mut max_page = 0u64;
        while let Some(i) = w.next_instruction() {
            if let Some((addr, _)) = i.memory {
                max_page = max_page.max((addr.raw() - 0x10_0000_0000) >> 12);
            }
        }
        assert!(max_page > 100);
    }
}
