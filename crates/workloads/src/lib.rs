//! Synthetic workload generators imitating the benchmark suites used in the
//! Virtuoso paper's evaluation (Table 5).
//!
//! **Substitution note (DESIGN.md §1):** the paper runs real binaries
//! (GraphBIG, XSBench, GUPS, FaaS functions, llama.cpp inference, image
//! kernels). The VM subsystem, however, only observes their *address and
//! allocation behaviour*. Each generator here produces an instruction/access
//! stream with the published characteristics of its suite — footprint,
//! locality, TLB pressure, allocation pattern and VMA structure — which is
//! what the paper's experiments exercise.
//!
//! Two kinds of artifacts are produced:
//!
//! * an address-trace frontend implementing [`sim_core::TraceSource`]
//!   ([`SyntheticWorkload`]), fed to `virtuoso::System`;
//! * a memory layout ([`WorkloadSpec::regions`]) that the harness uses to
//!   `mmap` the process before the run (including the BC-style VMA profile
//!   of Fig. 18).
//!
//! # Examples
//!
//! ```
//! use vm_workloads::{catalog, WorkloadClass};
//! use sim_core::TraceSource;
//!
//! let spec = catalog::graphbig_bc();
//! assert_eq!(spec.class, WorkloadClass::LongRunning);
//! let mut workload = spec.build(7);
//! assert!(workload.next_instruction().is_some());
//! ```

pub mod catalog;
pub mod generator;
pub mod spec;

pub use catalog::{all_long_running, all_short_running, multiprogram_mix, stress_sweep};
pub use generator::SyntheticWorkload;
pub use spec::{AccessPattern, MemoryRegion, WorkloadClass, WorkloadSpec};
