//! Workload specifications: footprint, access pattern, memory layout and
//! intensity knobs.

use crate::generator::SyntheticWorkload;
use serde::{Deserialize, Serialize};
use vm_types::VirtAddr;

/// Long-running (translation-bound) vs short-running (allocation-bound)
/// workloads, the paper's two categories (§1, Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Execution time ≫ 100 s: address-translation overheads dominate.
    LongRunning,
    /// Execution time < 1 s: memory-allocation overheads dominate.
    ShortRunning,
}

/// The memory-access pattern of the workload's dominant phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Pointer-chasing over a large irregular structure (graph analytics):
    /// near-uniform random accesses over the footprint.
    PointerChasing,
    /// Uniform random accesses (GUPS / randacc).
    UniformRandom,
    /// Mostly-sequential streaming with occasional random jumps
    /// (XSBench-like lookups, image kernels).
    Streaming {
        /// Probability of a random jump instead of the next element.
        jump_probability: f64,
    },
    /// Small working set touched repeatedly, then discarded — the
    /// allocation-dominated behaviour of FaaS functions and LLM token
    /// processing.
    AllocateAndTouch {
        /// Fraction of instructions that touch a *new* (never-touched) page.
        new_page_fraction: f64,
    },
}

/// One region of the workload's address space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryRegion {
    /// Virtual start address.
    pub start: VirtAddr,
    /// Length in bytes.
    pub bytes: u64,
    /// `true` if the region is file-backed (goes through the page cache).
    pub file_backed: bool,
    /// Weight of this region in the access stream (relative).
    pub access_weight: f64,
}

/// A complete workload specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Name (matches the paper's Table 5 labels, e.g. `"BC"`, `"JSON"`).
    pub name: String,
    /// Long- or short-running.
    pub class: WorkloadClass,
    /// Regions to map before the run.
    pub regions: Vec<MemoryRegion>,
    /// Access pattern of the dominant phase.
    pub pattern: AccessPattern,
    /// Fraction of instructions that reference data memory.
    pub memory_fraction: f64,
    /// Total instructions the generator will produce.
    pub instructions: u64,
}

impl WorkloadSpec {
    /// Creates a single-region anonymous workload.
    pub fn simple(
        name: &str,
        class: WorkloadClass,
        footprint_bytes: u64,
        pattern: AccessPattern,
        instructions: u64,
    ) -> Self {
        WorkloadSpec {
            name: name.to_string(),
            class,
            regions: vec![MemoryRegion {
                start: VirtAddr::new(0x10_0000_0000),
                bytes: footprint_bytes,
                file_backed: false,
                access_weight: 1.0,
            }],
            pattern,
            memory_fraction: 0.4,
            instructions,
        }
    }

    /// Total mapped footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Scales the instruction budget (used by quick-running benches).
    pub fn with_instructions(mut self, instructions: u64) -> Self {
        self.instructions = instructions;
        self
    }

    /// Scales every region's size by `factor` (used to shrink footprints for
    /// laptop-scale runs while preserving the access pattern).
    pub fn scaled_footprint(mut self, factor: f64) -> Self {
        for r in &mut self.regions {
            r.bytes = ((r.bytes as f64 * factor) as u64).max(4096) & !0xfff;
        }
        self
    }

    /// Builds the trace generator for this specification.
    pub fn build(&self, seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(self.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_spec_has_one_region() {
        let spec = WorkloadSpec::simple(
            "X",
            WorkloadClass::LongRunning,
            1 << 30,
            AccessPattern::UniformRandom,
            1000,
        );
        assert_eq!(spec.regions.len(), 1);
        assert_eq!(spec.footprint_bytes(), 1 << 30);
    }

    #[test]
    fn scaling_preserves_page_alignment() {
        let spec = WorkloadSpec::simple(
            "X",
            WorkloadClass::LongRunning,
            1 << 30,
            AccessPattern::UniformRandom,
            1000,
        )
        .scaled_footprint(0.013);
        assert!(spec.footprint_bytes().is_multiple_of(4096));
        assert!(spec.footprint_bytes() >= 4096);
    }

    #[test]
    fn with_instructions_overrides_budget() {
        let spec = WorkloadSpec::simple(
            "X",
            WorkloadClass::ShortRunning,
            1 << 20,
            AccessPattern::AllocateAndTouch {
                new_page_fraction: 0.1,
            },
            1000,
        )
        .with_instructions(42);
        assert_eq!(spec.instructions, 42);
    }
}
