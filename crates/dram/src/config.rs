//! DRAM organization and timing configuration.

use serde::{Deserialize, Serialize};
use vm_types::Cycles;

/// Organization and timing parameters of the simulated DRAM device.
///
/// Timing values are expressed in *core* cycles (the paper's baseline couples
/// a 2.9 GHz core with DDR4-2400; `tRCD = tCL = 12.5 ns ≈ 36` core cycles,
/// `tRP = 2.5 ns ≈ 7` core cycles as listed in Table 4).
///
/// # Examples
///
/// ```
/// use dram_sim::DramConfig;
/// let cfg = DramConfig::ddr4_2400();
/// assert_eq!(cfg.total_banks(), cfg.channels * cfg.ranks_per_channel * cfg.banks_per_rank);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row size (row-buffer size) in bytes.
    pub row_bytes_per_bank: u64,
    /// Total capacity in bytes (used for sanity checks and swap thresholds).
    pub capacity_bytes: u64,
    /// Row-to-column delay (activate) in core cycles.
    pub t_rcd: Cycles,
    /// Column access strobe latency in core cycles.
    pub t_cl: Cycles,
    /// Row precharge latency in core cycles.
    pub t_rp: Cycles,
    /// Fixed controller + interconnect overhead added to every access, in
    /// core cycles.
    pub controller_overhead: Cycles,
    /// Controller command spacing: how far the internal clock advances per
    /// access, in core cycles. Smaller values create more queueing pressure.
    pub command_spacing: Cycles,
}

impl DramConfig {
    /// The paper's baseline: 256 GB DDR4-2400 behind a 2.9 GHz core
    /// (Table 4).
    pub fn ddr4_2400() -> Self {
        DramConfig {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 16,
            row_bytes_per_bank: 8 * 1024,
            capacity_bytes: 256 * 1024 * 1024 * 1024,
            t_rcd: Cycles::new(36),
            t_cl: Cycles::new(36),
            t_rp: Cycles::new(7),
            controller_overhead: Cycles::new(20),
            command_spacing: Cycles::new(4),
        }
    }

    /// A small configuration for fast unit tests: 1 channel, 1 rank, 4 banks,
    /// 1 GB capacity, same timing as [`DramConfig::ddr4_2400`].
    pub fn small_test() -> Self {
        DramConfig {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            row_bytes_per_bank: 2 * 1024,
            capacity_bytes: 1024 * 1024 * 1024,
            ..DramConfig::ddr4_2400()
        }
    }

    /// Total number of banks across all channels and ranks.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Row-buffer size of one bank in bytes.
    pub fn row_bytes(&self) -> u64 {
        self.row_bytes_per_bank
    }

    /// Latency of an idealized row-buffer hit (CAS + controller overhead).
    pub fn hit_latency(&self) -> Cycles {
        self.t_cl + self.controller_overhead
    }

    /// Latency of a row-buffer miss (activate + CAS + controller overhead).
    pub fn miss_latency(&self) -> Cycles {
        self.t_rcd + self.t_cl + self.controller_overhead
    }

    /// Latency of a row-buffer conflict (precharge + activate + CAS +
    /// controller overhead).
    pub fn conflict_latency(&self) -> Cycles {
        self.t_rp + self.t_rcd + self.t_cl + self.controller_overhead
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_positive_dimensions() {
        let cfg = DramConfig::ddr4_2400();
        assert!(cfg.total_banks() > 0);
        assert!(cfg.row_bytes() > 0);
        assert!(cfg.capacity_bytes > 0);
    }

    #[test]
    fn latency_ordering_hit_lt_miss_lt_conflict() {
        let cfg = DramConfig::ddr4_2400();
        assert!(cfg.hit_latency() < cfg.miss_latency());
        assert!(cfg.miss_latency() < cfg.conflict_latency());
    }

    #[test]
    fn small_test_config_is_smaller() {
        let small = DramConfig::small_test();
        let big = DramConfig::ddr4_2400();
        assert!(small.total_banks() < big.total_banks());
        assert!(small.capacity_bytes < big.capacity_bytes);
    }

    #[test]
    fn default_is_paper_baseline() {
        assert_eq!(DramConfig::default(), DramConfig::ddr4_2400());
    }
}
