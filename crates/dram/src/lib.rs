//! A DDR4-style DRAM timing model with row-buffer conflict attribution.
//!
//! The model is inspired by the refactored Ramulator-based DRAM model the
//! paper integrates into Sniper. It tracks, per bank, the currently open row
//! and classifies every access as a row-buffer **hit** (row already open),
//! **miss** (bank idle, row must be activated) or **conflict** (a different
//! row is open and must be precharged first). Latency is derived from DDR4
//! timing parameters (`tRCD`, `tCL`, `tRP`) plus a queueing component that
//! grows with bank contention.
//!
//! Every access is tagged with a [`Requestor`], so the statistics can
//! attribute row-buffer conflicts to application data, page-table-walk
//! metadata or kernel traffic. That attribution drives the paper's Figure 14
//! (hash-based page tables increase/decrease DRAM conflicts) and Figure 21
//! (RMM removes most translation-metadata conflicts).
//!
//! # Examples
//!
//! ```
//! use dram_sim::{DramConfig, DramModel};
//! use vm_types::{AccessType, MemoryAccess, PhysAddr, Requestor};
//!
//! let mut dram = DramModel::new(DramConfig::ddr4_2400());
//! let access = MemoryAccess::physical(PhysAddr::new(0x1000), AccessType::Read, Requestor::Application);
//! let lat = dram.access(&access);
//! assert!(lat.raw() > 0);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod mapping;
pub mod stats;

pub use config::DramConfig;
pub use mapping::{AddressMapping, DramLocation};
pub use stats::{DramStats, RowBufferOutcome};

use vm_types::{Cycles, MemoryAccess, Requestor};

/// State of one DRAM bank: the row currently latched in its row buffer, if
/// any, and the cycle at which the bank becomes ready for the next command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BankState {
    open_row: Option<u64>,
    ready_at: Cycles,
}

/// The DRAM device model.
///
/// The model is *latency generating*: callers present one access at a time
/// and receive the access latency in core cycles; an internal controller
/// clock sequences bank readiness so that back-to-back accesses to the same
/// bank observe queueing delay.
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    mapping: AddressMapping,
    banks: Vec<BankState>,
    stats: DramStats,
    now: Cycles,
}

impl DramModel {
    /// Creates a DRAM model from a configuration.
    pub fn new(config: DramConfig) -> Self {
        let mapping = AddressMapping::new(&config);
        let total_banks = config.total_banks();
        DramModel {
            config,
            mapping,
            banks: vec![BankState::default(); total_banks],
            stats: DramStats::default(),
            now: Cycles::ZERO,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets statistics (but not bank state).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Performs one access and returns its latency in core cycles.
    ///
    /// The latency is the sum of:
    /// * bank-readiness wait (queueing behind a previous access to the same
    ///   bank),
    /// * `tRP` if a conflicting row must be precharged,
    /// * `tRCD` if a row must be activated,
    /// * `tCL` (column access / CAS),
    /// * the fixed on-chip/controller overhead from the configuration.
    pub fn access(&mut self, access: &MemoryAccess) -> Cycles {
        let loc = self.mapping.locate(access.paddr);
        let bank_idx = loc.flat_bank_index(&self.config);
        let bank = &mut self.banks[bank_idx];

        // Queueing: if the bank is still busy from an earlier access, wait.
        // The wait is capped at a few conflict latencies, modelling the
        // finite memory-controller queue whose backpressure throttles the
        // request stream instead of letting per-bank backlog grow without
        // bound (this model has no global notion of inter-arrival time).
        let max_wait = self.config.conflict_latency() * 4;
        let queue_wait = bank.ready_at.saturating_sub(self.now).min(max_wait);

        let (outcome, array_latency) = match bank.open_row {
            Some(row) if row == loc.row => (RowBufferOutcome::Hit, self.config.t_cl),
            Some(_) => (
                RowBufferOutcome::Conflict,
                self.config.t_rp + self.config.t_rcd + self.config.t_cl,
            ),
            None => (RowBufferOutcome::Miss, self.config.t_rcd + self.config.t_cl),
        };

        bank.open_row = Some(loc.row);
        let service = array_latency + self.config.controller_overhead;
        bank.ready_at = (self.now + queue_wait + service).min(self.now + max_wait + service);

        self.stats
            .record(access.requestor, outcome, queue_wait + service);
        if access.kind.is_write() {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
        }

        self.now += self.config.command_spacing;

        queue_wait + service
    }

    /// Convenience helper: performs a read access attributed to `requestor`
    /// at `paddr` without constructing a [`MemoryAccess`] by hand.
    pub fn access_raw(&mut self, paddr: vm_types::PhysAddr, requestor: Requestor) -> Cycles {
        self.access(&MemoryAccess::physical(
            paddr,
            vm_types::AccessType::Read,
            requestor,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::{AccessType, PhysAddr};

    fn read(paddr: u64, req: Requestor) -> MemoryAccess {
        MemoryAccess::physical(PhysAddr::new(paddr), AccessType::Read, req)
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut dram = DramModel::new(DramConfig::ddr4_2400());
        dram.access(&read(0x4000, Requestor::Application));
        assert_eq!(dram.stats().misses(), 1);
        assert_eq!(dram.stats().hits(), 0);
        assert_eq!(dram.stats().conflicts(), 0);
    }

    #[test]
    fn same_row_hits_after_first_access() {
        let mut dram = DramModel::new(DramConfig::ddr4_2400());
        dram.access(&read(0x1000, Requestor::Application));
        // Same cache line: guaranteed to map to the same bank and row.
        let hit_latency = dram.access(&read(0x1010, Requestor::Application));
        assert_eq!(dram.stats().hits(), 1);
        // The hit still pays bank queueing behind the first access, but its
        // array latency is bounded by the conflict latency.
        let cfg = DramConfig::ddr4_2400();
        assert!(hit_latency < cfg.conflict_latency() * 2);
    }

    #[test]
    fn different_row_same_bank_is_a_conflict() {
        let cfg = DramConfig::ddr4_2400();
        let mut dram = DramModel::new(cfg.clone());
        let row_stride = cfg.row_bytes() * cfg.total_banks() as u64;
        dram.access(&read(0x0, Requestor::Application));
        dram.access(&read(row_stride, Requestor::PageTableWalker));
        assert_eq!(dram.stats().conflicts(), 1);
        assert_eq!(
            dram.stats().conflicts_by(Requestor::PageTableWalker),
            1,
            "the conflict must be attributed to the PT walker"
        );
    }

    #[test]
    fn conflict_latency_exceeds_hit_latency() {
        let cfg = DramConfig::ddr4_2400();
        let row_stride = cfg.row_bytes() * cfg.total_banks() as u64;

        let mut dram = DramModel::new(cfg.clone());
        dram.access(&read(0x0, Requestor::Application));
        let hit = dram.access(&read(0x20, Requestor::Application));

        let mut dram2 = DramModel::new(cfg);
        dram2.access(&read(0x0, Requestor::Application));
        let conflict = dram2.access(&read(row_stride, Requestor::Application));
        assert!(
            conflict > hit,
            "conflict latency {conflict} must exceed hit latency {hit}"
        );
    }

    #[test]
    fn reads_and_writes_are_counted() {
        let mut dram = DramModel::new(DramConfig::ddr4_2400());
        dram.access(&read(0x0, Requestor::Application));
        dram.access(&MemoryAccess::physical(
            PhysAddr::new(0x40),
            AccessType::Write,
            Requestor::Kernel,
        ));
        assert_eq!(dram.stats().reads.get(), 1);
        assert_eq!(dram.stats().writes.get(), 1);
    }

    #[test]
    fn reset_stats_clears_counts_but_keeps_bank_state() {
        let mut dram = DramModel::new(DramConfig::ddr4_2400());
        dram.access(&read(0x0, Requestor::Application));
        dram.reset_stats();
        assert_eq!(dram.stats().total_accesses(), 0);
        dram.access(&read(0x20, Requestor::Application));
        assert_eq!(dram.stats().hits(), 1);
    }

    #[test]
    fn accesses_spread_across_banks() {
        let cfg = DramConfig::ddr4_2400();
        let banks = cfg.total_banks() as u64;
        let mut dram = DramModel::new(cfg);
        for i in 0..banks {
            dram.access(&read(i * 64, Requestor::Application));
        }
        let occupied = dram.banks.iter().filter(|b| b.open_row.is_some()).count();
        assert!(
            occupied > 1,
            "expected interleaving across banks, got {occupied}"
        );
    }

    #[test]
    fn average_latency_is_positive_after_traffic() {
        let mut dram = DramModel::new(DramConfig::ddr4_2400());
        for i in 0..128u64 {
            dram.access(&read(i * 64, Requestor::Application));
        }
        assert!(dram.stats().average_latency_cycles() > 0.0);
        assert_eq!(dram.stats().total_accesses(), 128);
    }
}
