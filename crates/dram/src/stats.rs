//! DRAM access statistics with per-requestor attribution.

use serde::{Deserialize, Serialize};
use vm_types::{Counter, Cycles, Requestor, RunningStats};

/// Classification of a DRAM access with respect to the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowBufferOutcome {
    /// The requested row was already open.
    Hit,
    /// The bank was idle; the row had to be activated.
    Miss,
    /// A different row was open; it had to be precharged first.
    Conflict,
}

/// Per-requestor hit/miss/conflict counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RequestorStats {
    /// Row-buffer hits.
    pub hits: Counter,
    /// Row-buffer misses (bank idle).
    pub misses: Counter,
    /// Row-buffer conflicts (row replaced).
    pub conflicts: Counter,
}

impl RequestorStats {
    /// Total accesses by this requestor.
    pub fn total(&self) -> u64 {
        self.hits.get() + self.misses.get() + self.conflicts.get()
    }
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Indexed by [`DramStats::requestor_index`] (the order of
    /// [`Requestor::ALL`]). A dense array: the seed's
    /// `BTreeMap<String, _>` built a fresh `String` key on every single
    /// DRAM access — the hottest allocation in the whole simulator.
    per_requestor: [RequestorStats; 4],
    latency: RunningStats,
    /// Read accesses.
    pub reads: Counter,
    /// Write accesses.
    pub writes: Counter,
}

impl DramStats {
    /// Index of a requestor into the dense per-requestor table.
    #[inline]
    fn requestor_index(requestor: Requestor) -> usize {
        match requestor {
            Requestor::Application => 0,
            Requestor::PageTableWalker => 1,
            Requestor::Kernel => 2,
            Requestor::Prefetcher => 3,
        }
    }

    #[inline]
    fn entry(&mut self, requestor: Requestor) -> &mut RequestorStats {
        &mut self.per_requestor[Self::requestor_index(requestor)]
    }

    fn get(&self, requestor: Requestor) -> &RequestorStats {
        &self.per_requestor[Self::requestor_index(requestor)]
    }

    /// Records one access outcome.
    pub fn record(&mut self, requestor: Requestor, outcome: RowBufferOutcome, latency: Cycles) {
        let entry = self.entry(requestor);
        match outcome {
            RowBufferOutcome::Hit => entry.hits.inc(),
            RowBufferOutcome::Miss => entry.misses.inc(),
            RowBufferOutcome::Conflict => entry.conflicts.inc(),
        }
        self.latency.record(latency.raw() as f64);
    }

    /// Total row-buffer hits across all requestors.
    pub fn hits(&self) -> u64 {
        self.per_requestor.iter().map(|s| s.hits.get()).sum()
    }

    /// Total row-buffer misses across all requestors.
    pub fn misses(&self) -> u64 {
        self.per_requestor.iter().map(|s| s.misses.get()).sum()
    }

    /// Total row-buffer conflicts across all requestors.
    pub fn conflicts(&self) -> u64 {
        self.per_requestor.iter().map(|s| s.conflicts.get()).sum()
    }

    /// Row-buffer conflicts attributed to a given requestor (the requestor
    /// that *suffered*/caused the precharge by issuing the access).
    pub fn conflicts_by(&self, requestor: Requestor) -> u64 {
        self.get(requestor).conflicts.get()
    }

    /// Accesses issued by a given requestor.
    pub fn accesses_by(&self, requestor: Requestor) -> u64 {
        self.get(requestor).total()
    }

    /// Conflicts attributed to address-translation metadata traffic
    /// (page-table walker requests) — the category Fig. 21 reports.
    pub fn translation_metadata_conflicts(&self) -> u64 {
        self.conflicts_by(Requestor::PageTableWalker)
    }

    /// Total number of DRAM accesses.
    pub fn total_accesses(&self) -> u64 {
        self.per_requestor.iter().map(|s| s.total()).sum()
    }

    /// Row-buffer hit rate over all accesses (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Average access latency in cycles.
    pub fn average_latency_cycles(&self) -> f64 {
        self.latency.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_attributes_to_requestor() {
        let mut s = DramStats::default();
        s.record(
            Requestor::Application,
            RowBufferOutcome::Hit,
            Cycles::new(50),
        );
        s.record(
            Requestor::PageTableWalker,
            RowBufferOutcome::Conflict,
            Cycles::new(100),
        );
        s.record(Requestor::Kernel, RowBufferOutcome::Miss, Cycles::new(70));
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.conflicts(), 1);
        assert_eq!(s.conflicts_by(Requestor::PageTableWalker), 1);
        assert_eq!(s.translation_metadata_conflicts(), 1);
        assert_eq!(s.accesses_by(Requestor::Kernel), 1);
        assert_eq!(s.total_accesses(), 3);
    }

    #[test]
    fn hit_rate_and_latency() {
        let mut s = DramStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.record(
            Requestor::Application,
            RowBufferOutcome::Hit,
            Cycles::new(40),
        );
        s.record(
            Requestor::Application,
            RowBufferOutcome::Miss,
            Cycles::new(80),
        );
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.average_latency_cycles() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_requestor_counts_are_zero() {
        let s = DramStats::default();
        assert_eq!(s.conflicts_by(Requestor::Prefetcher), 0);
        assert_eq!(s.accesses_by(Requestor::Application), 0);
    }
}
