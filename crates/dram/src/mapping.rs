//! Physical-address-to-DRAM-coordinate mapping.
//!
//! The mapping interleaves consecutive cache lines across channels and banks
//! (a "bank XOR" style mapping similar to what Ramulator's default uses) so
//! that streaming accesses exploit bank-level parallelism while accesses with
//! large strides tend to collide on the same bank — the behaviour that makes
//! page-table walks interfere with application data in the paper's Fig. 14.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};
use vm_types::{FastDiv, PhysAddr, CACHE_LINE_BYTES};

/// A physical location inside the DRAM device: channel, rank, bank and row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLocation {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (cache-line) index within the row.
    pub column: u64,
}

impl DramLocation {
    /// Flattens (channel, rank, bank) into a single bank index in
    /// `[0, config.total_banks())`.
    pub fn flat_bank_index(&self, config: &DramConfig) -> usize {
        (self.channel * config.ranks_per_channel + self.rank) * config.banks_per_rank + self.bank
    }
}

/// Address-interleaving function from physical addresses to DRAM locations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    channels: FastDiv,
    ranks: FastDiv,
    banks: FastDiv,
    lines_per_row: FastDiv,
}

impl AddressMapping {
    /// Builds the mapping for a DRAM configuration.
    pub fn new(config: &DramConfig) -> Self {
        AddressMapping {
            channels: FastDiv::new(config.channels as u64),
            ranks: FastDiv::new(config.ranks_per_channel as u64),
            banks: FastDiv::new(config.banks_per_rank as u64),
            lines_per_row: FastDiv::new((config.row_bytes_per_bank / CACHE_LINE_BYTES).max(1)),
        }
    }

    /// Maps a physical address to its DRAM location.
    ///
    /// Bit layout (from least significant): cache-line offset, channel, bank,
    /// rank, column, row — a line-interleaved mapping that spreads streaming
    /// traffic across channels and banks while large-stride traffic (such as
    /// page-table walks) revisits the same banks with different rows.
    pub fn locate(&self, paddr: PhysAddr) -> DramLocation {
        let line = paddr.raw() / CACHE_LINE_BYTES;
        let channel = self.channels.rem(line) as usize;
        let line = self.channels.div(line);
        let bank = self.banks.rem(line) as usize;
        let line = self.banks.div(line);
        let rank = self.ranks.rem(line) as usize;
        let line = self.ranks.div(line);
        let column = self.lines_per_row.rem(line);
        let row = self.lines_per_row.div(line);
        DramLocation {
            channel,
            rank,
            bank,
            row,
            column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> (DramConfig, AddressMapping) {
        let cfg = DramConfig::ddr4_2400();
        let map = AddressMapping::new(&cfg);
        (cfg, map)
    }

    #[test]
    fn locations_are_within_bounds() {
        let (cfg, map) = mapping();
        for i in 0..10_000u64 {
            let loc = map.locate(PhysAddr::new(i * 64 * 7 + 13));
            assert!(loc.channel < cfg.channels);
            assert!(loc.rank < cfg.ranks_per_channel);
            assert!(loc.bank < cfg.banks_per_rank);
            assert!(loc.column < cfg.row_bytes_per_bank / CACHE_LINE_BYTES);
            assert!(loc.flat_bank_index(&cfg) < cfg.total_banks());
        }
    }

    #[test]
    fn same_cache_line_maps_to_same_location() {
        let (_, map) = mapping();
        let a = map.locate(PhysAddr::new(0x12345));
        let b = map.locate(PhysAddr::new(0x12345 & !63));
        assert_eq!(a, b);
    }

    #[test]
    fn consecutive_lines_alternate_channels() {
        let (cfg, map) = mapping();
        if cfg.channels > 1 {
            let a = map.locate(PhysAddr::new(0));
            let b = map.locate(PhysAddr::new(64));
            assert_ne!(a.channel, b.channel);
        }
    }

    #[test]
    fn streaming_accesses_use_many_banks() {
        let (cfg, map) = mapping();
        let mut banks = std::collections::HashSet::new();
        for i in 0..256u64 {
            banks.insert(map.locate(PhysAddr::new(i * 64)).flat_bank_index(&cfg));
        }
        assert!(banks.len() >= cfg.total_banks() / 2);
    }

    #[test]
    fn distinct_rows_for_far_apart_addresses() {
        let (cfg, map) = mapping();
        let span = cfg.row_bytes() * cfg.total_banks() as u64 * 4;
        let a = map.locate(PhysAddr::new(0));
        let b = map.locate(PhysAddr::new(span));
        assert_ne!((a.row, a.column), (b.row, b.column));
    }
}
