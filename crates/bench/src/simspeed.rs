//! The sustained-simulation-speed harness behind the `simspeed` binary.
//!
//! Fig. 11/12 of the paper sell Virtuoso on *simulation-speed overhead*:
//! the detailed MimicOS integration must stay affordable relative to the
//! emulation baseline. This module measures what the paper plots — the
//! sustained simulated-MIPS (millions of simulated instructions per host
//! second) of the steady-state instruction loop — for a fixed set of
//! catalog workloads in both simulation modes, and serializes the result
//! to `BENCH_simspeed.json` at the repository root so every future PR has
//! a performance trajectory to compare against.
//!
//! The measured segment deliberately excludes system construction and
//! region mapping (one-off setup) but includes everything the instruction
//! loop does: translation, page walks, cache/DRAM traffic, fault handling
//! and kernel-stream injection.

use mimic_os::AllocationPolicy;
use mmu_sim::{EngineConfig, MidgardConfig, RmmConfig, UtopiaMmuConfig};
use serde::Serialize;
use std::time::Instant;
use virtuoso::{SimulationReport, System, SystemConfig};
use vm_types::PageSize;
use vm_workloads::{catalog, WorkloadSpec};

/// One measured (workload × mode) point.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedCell {
    /// Workload label (catalog name).
    pub workload: String,
    /// `"detailed"` or `"emulation"`.
    pub mode: String,
    /// Translation engine of the cell (`"page-table"`, `"midgard"`,
    /// `"rmm"`, `"utopia"`).
    pub engine: String,
    /// Simulated cores of the cell (1 for the classic single-core rows;
    /// the multi-core rows run one pinned process per core through the
    /// sharded round-robin loop).
    pub cores: usize,
    /// Host threads the sharded loop stepped the cores on (always 1 for
    /// single-core rows). Reports are bit-identical across thread counts;
    /// only `best_elapsed_s`/`mips` may differ between rows that share
    /// (workload, mode, engine, cores).
    pub threads: usize,
    /// Simulated instructions per repetition (summed across all cores).
    pub instructions: u64,
    /// Timed repetitions (best one is reported).
    pub repetitions: u32,
    /// Wall-clock seconds of the best repetition.
    pub best_elapsed_s: f64,
    /// Sustained simulated MIPS of the best repetition.
    pub mips: f64,
    /// Simulated IPC of the run (sanity anchor: must not change when the
    /// host gets faster).
    pub sim_ipc: f64,
}

/// The full report written to `BENCH_simspeed.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedReport {
    /// Report schema tag.
    pub schema: String,
    /// `true` when run with `--quick` (CI smoke budget).
    pub quick: bool,
    /// All measured cells.
    pub cells: Vec<SpeedCell>,
    /// The headline number: GUPS (`RND`) in detailed mode on the
    /// page-table engine, the paper's worst-case translation-bound
    /// workload.
    pub headline_mips: f64,
    /// Reference MIPS of the pre-optimization commit (passed with
    /// `--ref-mips`), 0.0 when not supplied.
    pub reference_mips: f64,
    /// `headline_mips / reference_mips` (0.0 when no reference given).
    pub speedup_vs_reference: f64,
}

impl SpeedReport {
    /// The first single-core cell for (workload, mode), if measured — the
    /// page-table engine, which is always measured ahead of the
    /// alternatives.
    pub fn cell(&self, workload: &str, mode: &str) -> Option<&SpeedCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.mode == mode && c.cores == 1)
    }

    /// The detailed-mode single-core cell of (workload, engine), if
    /// measured.
    pub fn engine_cell(&self, workload: &str, engine: &str) -> Option<&SpeedCell> {
        self.cells.iter().find(|c| {
            c.workload == workload && c.mode == "detailed" && c.engine == engine && c.cores == 1
        })
    }

    /// The detailed-mode page-table cell of (workload, cores, threads),
    /// if measured.
    pub fn multicore_cell(
        &self,
        workload: &str,
        cores: usize,
        threads: usize,
    ) -> Option<&SpeedCell> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.mode == "detailed"
                && c.cores == cores
                && c.threads == threads
        })
    }

    /// Cells that fell below a sustained-MIPS floor (`--min-mips`): the CI
    /// smoke-perf gate fails when any cell regresses past it. An empty
    /// result means every measured cell cleared the floor.
    pub fn cells_below(&self, floor_mips: f64) -> Vec<&SpeedCell> {
        self.cells.iter().filter(|c| c.mips < floor_mips).collect()
    }
}

/// Options of a measurement run.
#[derive(Debug, Clone)]
pub struct SpeedOptions {
    /// Simulated instructions per repetition.
    pub instructions: u64,
    /// Timed repetitions per cell (the best is kept).
    pub repetitions: u32,
    /// Marks the report as a quick (CI smoke) run.
    pub quick: bool,
    /// Pre-optimization reference MIPS for the headline cell.
    pub reference_mips: f64,
    /// Alternative translation engines measured on the headline workload
    /// (detailed mode), in addition to the page-table engine.
    pub engines: Vec<String>,
    /// Multi-core cell sizes measured on the headline workload (one
    /// pinned copy per core, detailed mode, page-table engine).
    pub core_counts: Vec<usize>,
    /// Host-thread counts each multi-core cell is measured at (values
    /// are clamped to the cell's core count and deduplicated). Empty
    /// means the default sweep `{1, cores}` — the serial baseline and
    /// the fully parallel run, the A/B pair behind the scaling claim.
    pub host_threads: Vec<usize>,
}

impl SpeedOptions {
    /// The full measurement (committed trajectory numbers). The budget is
    /// sized so the cold-start fault storm (every page of the footprint
    /// faults once, ~16k faults for the scaled GUPS cell) amortizes and
    /// the cell measures *sustained* steady-state speed, not fault-path
    /// speed — at 400k instructions the RND cells were ~4% page faults.
    pub fn full() -> Self {
        SpeedOptions {
            instructions: 2_000_000,
            repetitions: 3,
            quick: false,
            reference_mips: 0.0,
            engines: SpeedOptions::all_engines(),
            core_counts: SpeedOptions::default_core_counts(),
            host_threads: Vec::new(),
        }
    }

    /// The CI smoke budget (`--quick`). Large enough that the cells are
    /// not pure fault-storm (which would sit an order of magnitude below
    /// sustained speed and defeat the `--min-mips` floor), small enough
    /// to finish in seconds.
    pub fn quick() -> Self {
        SpeedOptions {
            instructions: 200_000,
            repetitions: 2,
            quick: true,
            reference_mips: 0.0,
            engines: SpeedOptions::all_engines(),
            core_counts: SpeedOptions::default_core_counts(),
            host_threads: Vec::new(),
        }
    }

    /// Every alternative engine the harness knows how to configure.
    pub fn all_engines() -> Vec<String> {
        vec!["midgard".into(), "rmm".into(), "utopia".into()]
    }

    /// The default multi-core cell sizes.
    pub fn default_core_counts() -> Vec<usize> {
        vec![2, 4]
    }
}

/// The system configuration of one engine dimension: the engine itself
/// plus the allocation policy its design pairs with (eager paging feeds
/// RMM's ranges; the Utopia policy places pages in the RestSeg).
pub fn engine_system_config(engine: &str) -> SystemConfig {
    let mut config = SystemConfig::small_test();
    match engine {
        "page-table" => {}
        "midgard" => {
            config = config.with_engine(EngineConfig::Midgard(MidgardConfig::paper_baseline()));
        }
        "rmm" => {
            config = config.with_engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
            config.os.policy = AllocationPolicy::EagerPaging;
        }
        "utopia" => {
            let restseg_bytes: u64 = 64 * 1024 * 1024;
            config = config.with_engine(EngineConfig::Utopia(
                UtopiaMmuConfig::paper_baseline().with_restseg_bytes(restseg_bytes),
            ));
            config.os.policy = AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
                restseg_bytes,
                16,
                PageSize::Size4K,
            ));
        }
        other => panic!("unknown engine {other:?} (page-table|midgard|rmm|utopia)"),
    }
    config
}

/// The workloads measured: the paper's worst-case translation-bound
/// workload (GUPS), a streaming long-running one (PR), and an
/// allocation-bound short-running one (JSON). Footprints are scaled to
/// co-exist with the small-test machine so the harness runs in seconds.
pub fn speed_workloads() -> Vec<WorkloadSpec> {
    vec![
        catalog::gups_randacc().scaled_footprint(0.125),
        catalog::graphbig_pr().scaled_footprint(0.125),
        catalog::faas_json(),
    ]
}

fn run_once(config: SystemConfig, spec: &WorkloadSpec) -> (f64, SimulationReport) {
    let mut system = System::new(config);
    let pid = system.pid();
    crate::runner::map_spec_regions(&mut system, pid, spec, 0);
    let mut source = spec.build(0xBEEF);
    let start = Instant::now();
    let report = system.run(&mut source, None);
    (start.elapsed().as_secs_f64(), report)
}

/// Measures one (config, spec) cell: one untimed warmup repetition, then
/// `repetitions` timed ones, keeping the fastest.
pub fn measure_cell(
    config: &SystemConfig,
    spec: &WorkloadSpec,
    mode: &str,
    engine: &str,
    opts: &SpeedOptions,
) -> SpeedCell {
    let spec = spec.clone().with_instructions(opts.instructions);
    // Warmup: page in the host-side allocations and warm the branch
    // predictors with a shorter run.
    let _ = run_once(
        config.clone(),
        &spec.clone().with_instructions(opts.instructions / 4),
    );
    let mut best_elapsed = f64::INFINITY;
    let mut last_report = None;
    for _ in 0..opts.repetitions.max(1) {
        let (elapsed, report) = run_once(config.clone(), &spec);
        if elapsed < best_elapsed {
            best_elapsed = elapsed;
        }
        last_report = Some(report);
    }
    let report = last_report.expect("at least one repetition");
    SpeedCell {
        workload: spec.name.clone(),
        mode: mode.to_string(),
        engine: engine.to_string(),
        cores: 1,
        threads: 1,
        instructions: opts.instructions,
        repetitions: opts.repetitions,
        best_elapsed_s: best_elapsed,
        mips: opts.instructions as f64 / best_elapsed / 1e6,
        sim_ipc: report.ipc,
    }
}

fn run_multicore_once(
    config: SystemConfig,
    spec: &WorkloadSpec,
    cores: usize,
) -> (f64, virtuoso::MultiProgramReport) {
    let mut system = System::new(config);
    let mut pids = vec![system.pid()];
    while pids.len() < cores {
        pids.push(system.spawn_process());
    }
    for &pid in &pids {
        crate::runner::map_spec_regions(&mut system, pid, spec, (pid.0 as u64) * 1000);
    }
    let mut sources: Vec<_> = (0..cores).map(|i| spec.build(0xBEEF + i as u64)).collect();
    let mut programs: Vec<(mimic_os::ProcessId, &mut dyn sim_core::TraceSource)> = pids
        .iter()
        .copied()
        .zip(
            sources
                .iter_mut()
                .map(|s| s as &mut dyn sim_core::TraceSource),
        )
        .collect();
    let start = Instant::now();
    let report = system.run_multiprogram(&mut programs, None);
    (start.elapsed().as_secs_f64(), report)
}

/// Measures one multi-core cell: `cores` pinned copies of `spec` on an
/// N-core detailed system, stepping through the sharded round-robin loop
/// on `threads` host threads. The per-process instruction budget is
/// `opts.instructions / cores` and the per-process footprint is scaled by
/// `1 / cores`, so the simulated-instruction total (the MIPS denominator)
/// and the aggregate memory footprint both stay comparable to the
/// single-core rows — the cell then measures the cost of the multi-core
/// machinery, not of simulating a bigger machine.
pub fn measure_multicore_cell(
    spec: &WorkloadSpec,
    cores: usize,
    threads: usize,
    opts: &SpeedOptions,
) -> SpeedCell {
    let config = SystemConfig::small_test()
        .with_cores(cores)
        .with_host_threads(threads);
    let per_core = (opts.instructions / cores as u64).max(1);
    let total = per_core * cores as u64;
    let spec = spec
        .clone()
        .scaled_footprint(1.0 / cores as f64)
        .with_instructions(per_core);
    let _ = run_multicore_once(
        config.clone(),
        &spec.clone().with_instructions((per_core / 4).max(1)),
        cores,
    );
    let mut best_elapsed = f64::INFINITY;
    let mut last_report = None;
    for _ in 0..opts.repetitions.max(1) {
        let (elapsed, report) = run_multicore_once(config.clone(), &spec, cores);
        if elapsed < best_elapsed {
            best_elapsed = elapsed;
        }
        last_report = Some(report);
    }
    let report = last_report.expect("at least one repetition");
    SpeedCell {
        workload: spec.name.clone(),
        mode: "detailed".to_string(),
        engine: "page-table".to_string(),
        cores,
        threads,
        instructions: total,
        repetitions: opts.repetitions,
        best_elapsed_s: best_elapsed,
        mips: total as f64 / best_elapsed / 1e6,
        sim_ipc: report.rollup.ipc,
    }
}

/// Runs the whole measurement matrix: workloads × {detailed, emulation}
/// on the page-table engine, plus the headline workload (GUPS) in
/// detailed mode under every alternative engine in `opts.engines` — the
/// per-engine speed rows that guard against dispatch-overhead
/// regressions and record what the alternative designs cost to simulate —
/// plus the multi-core rows: for each entry of `opts.core_counts`, one
/// row per host-thread count in the sweep (`{1, cores}` by default — the
/// same simulated machine stepped serially and in parallel), recording
/// what the sharded loop and per-core frontends cost in host time and
/// what the epoch-parallel stepping buys back.
pub fn measure(opts: &SpeedOptions) -> SpeedReport {
    let detailed = SystemConfig::small_test();
    let emulation = SystemConfig::small_test().with_emulation_baseline();
    let mut cells = Vec::new();
    for spec in speed_workloads() {
        cells.push(measure_cell(
            &detailed,
            &spec,
            "detailed",
            "page-table",
            opts,
        ));
        cells.push(measure_cell(
            &emulation,
            &spec,
            "emulation",
            "page-table",
            opts,
        ));
    }
    let headline_spec = catalog::gups_randacc().scaled_footprint(0.125);
    for engine in &opts.engines {
        let config = engine_system_config(engine);
        cells.push(measure_cell(
            &config,
            &headline_spec,
            "detailed",
            engine,
            opts,
        ));
    }
    for &cores in &opts.core_counts {
        let sweep = if opts.host_threads.is_empty() {
            vec![1, cores]
        } else {
            opts.host_threads.clone()
        };
        let mut seen = Vec::new();
        for &threads in &sweep {
            let threads = threads.clamp(1, cores);
            if seen.contains(&threads) {
                continue;
            }
            seen.push(threads);
            cells.push(measure_multicore_cell(&headline_spec, cores, threads, opts));
        }
    }
    let headline_mips = cells
        .iter()
        .find(|c| {
            c.workload == "RND" && c.mode == "detailed" && c.engine == "page-table" && c.cores == 1
        })
        .map(|c| c.mips)
        .unwrap_or(0.0);
    SpeedReport {
        schema: "virtuoso-simspeed-v4".to_string(),
        quick: opts.quick,
        headline_mips,
        reference_mips: opts.reference_mips,
        speedup_vs_reference: if opts.reference_mips > 0.0 {
            headline_mips / opts.reference_mips
        } else {
            0.0
        },
        cells,
    }
}

/// Renders the report as an aligned console table.
pub fn render(report: &SpeedReport) -> String {
    let mut table = crate::runner::ExperimentTable::new(
        "Sustained simulation speed (simulated MIPS per host second)",
        &[
            "workload", "mode", "engine", "cores", "threads", "instrs", "best_s", "MIPS", "sim_ipc",
        ],
    );
    for c in &report.cells {
        table.push_row(vec![
            c.workload.clone(),
            c.mode.clone(),
            c.engine.clone(),
            c.cores.to_string(),
            c.threads.to_string(),
            c.instructions.to_string(),
            format!("{:.4}", c.best_elapsed_s),
            format!("{:.3}", c.mips),
            format!("{:.3}", c.sim_ipc),
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "headline (RND/detailed): {:.3} MIPS\n",
        report.headline_mips
    ));
    if report.reference_mips > 0.0 {
        out.push_str(&format!(
            "vs reference {:.3} MIPS: {:.2}x\n",
            report.reference_mips, report.speedup_vs_reference
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> SpeedOptions {
        SpeedOptions {
            instructions: 2_000,
            repetitions: 1,
            quick: true,
            reference_mips: 0.0,
            engines: SpeedOptions::all_engines(),
            core_counts: SpeedOptions::default_core_counts(),
            host_threads: Vec::new(),
        }
    }

    #[test]
    fn measures_every_workload_in_both_modes() {
        let report = measure(&tiny_opts());
        assert_eq!(
            report.cells.len(),
            speed_workloads().len() * 2
                + SpeedOptions::all_engines().len()
                // One serial (threads=1) and one parallel (threads=cores)
                // row per multi-core cell size.
                + SpeedOptions::default_core_counts().len() * 2
        );
        for cell in &report.cells {
            assert!(
                cell.mips > 0.0,
                "{}/{} has no speed",
                cell.workload,
                cell.mode
            );
            assert!(cell.best_elapsed_s > 0.0);
        }
        assert!(report.headline_mips > 0.0);
        assert!(report.cell("RND", "detailed").is_some());
        assert!(report.cell("RND", "emulation").is_some());
        for engine in SpeedOptions::all_engines() {
            let cell = report.engine_cell("RND", &engine).unwrap();
            assert!(cell.mips > 0.0, "{engine} row must be measured");
        }
        assert_eq!(
            report.cell("RND", "detailed").unwrap().engine,
            "page-table",
            "the headline cell stays on the page-table engine"
        );
        for cores in SpeedOptions::default_core_counts() {
            let serial = report
                .multicore_cell("RND", cores, 1)
                .unwrap_or_else(|| panic!("{cores}-core serial row must be measured"));
            let parallel = report
                .multicore_cell("RND", cores, cores)
                .unwrap_or_else(|| panic!("{cores}-core parallel row must be measured"));
            for cell in [serial, parallel] {
                assert!(cell.mips > 0.0, "{cores}-core row must have speed");
                assert_eq!(
                    cell.instructions % cores as u64,
                    0,
                    "multi-core budget splits evenly across cores"
                );
            }
            // The determinism contract, observed from the bench side: the
            // serial and parallel rows simulate the exact same machine, so
            // their simulated IPC agrees to the last bit.
            assert_eq!(
                serial.sim_ipc.to_bits(),
                parallel.sim_ipc.to_bits(),
                "{cores}-core rows must report identical simulated IPC \
                 across host-thread counts"
            );
        }
        assert_eq!(
            report.cell("RND", "detailed").unwrap().cores,
            1,
            "the headline cell stays single-core"
        );
    }

    #[test]
    fn min_mips_floor_flags_only_slow_cells() {
        let report = measure(&tiny_opts());
        assert!(
            report.cells_below(0.0).is_empty(),
            "a zero floor passes everything"
        );
        let slow = report.cells_below(f64::INFINITY);
        assert_eq!(
            slow.len(),
            report.cells.len(),
            "an unreachable floor flags every cell"
        );
    }

    #[test]
    fn reference_speedup_is_computed() {
        let mut opts = tiny_opts();
        opts.reference_mips = 1.0;
        let report = measure(&opts);
        assert!((report.speedup_vs_reference - report.headline_mips).abs() < 1e-9);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = measure(&tiny_opts());
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"schema\":\"virtuoso-simspeed-v4\""));
        assert!(json.contains("\"headline_mips\""));
        assert!(json.contains("\"engine\":\"midgard\""));
        assert!(json.contains("\"cores\":4"));
        assert!(json.contains("\"threads\":4"));
    }

    #[test]
    fn render_mentions_the_headline() {
        let report = measure(&tiny_opts());
        let text = render(&report);
        assert!(text.contains("headline (RND/detailed)"));
        assert!(text.contains("MIPS"));
    }
}
