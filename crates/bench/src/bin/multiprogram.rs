//! Multi-process interference study: the GUPS + Llama mix interleaved by
//! the MimicOS scheduler, with ASID-tagged TLBs vs the full-flush baseline.
//! Usage: `cargo run --release -p virtuoso_bench --bin multiprogram [scale]`

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    println!(
        "{}",
        virtuoso_bench::experiments::multiprogram_interference(scale).render()
    );
}
