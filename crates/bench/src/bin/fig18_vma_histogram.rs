//! Regenerates Figure 18 of the Virtuoso paper (the BC VMA-size histogram).
//! Usage: `cargo run --release -p virtuoso_bench --bin fig18_vma_histogram`

fn main() {
    println!(
        "{}",
        virtuoso_bench::experiments::fig18_vma_histogram().render()
    );
}
