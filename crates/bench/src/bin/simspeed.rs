//! Sustained-simulation-speed harness: measures simulated MIPS for the
//! catalog workloads in detailed and emulation modes and writes
//! `BENCH_simspeed.json` at the repository root (the perf trajectory every
//! PR is compared against).
//!
//! Usage:
//! `cargo run --release -p virtuoso_bench --bin simspeed -- [--quick]
//! [--ref-mips X] [--out PATH] [--engine LIST]`
//!
//! * `--quick` — CI smoke budget (small instruction counts).
//! * `--ref-mips X` — record `X` as the pre-optimization reference MIPS of
//!   the headline (GUPS detailed, page-table engine) cell and report the
//!   speedup against it.
//! * `--out PATH` — write the JSON somewhere else than the repo root.
//! * `--engine LIST` — comma-separated alternative engines to measure on
//!   the headline workload (`midgard,rmm,utopia`, the default; `none`
//!   skips the per-engine rows).
//! * `--cores LIST` — comma-separated multi-core cell sizes measured on
//!   the headline workload (`2,4`, the default; `none` skips the
//!   multi-core rows).
//! * `--threads LIST` — comma-separated host-thread counts each
//!   multi-core cell is measured at (values above a cell's core count
//!   are clamped). The default sweep is `1` and the cell's core count —
//!   the serial/parallel A/B pair.
//! * `--min-mips X` — exit non-zero if any measured cell sustains fewer
//!   than `X` simulated MIPS (the CI smoke-perf regression gate).
//! * `--instructions N` — override the per-cell instruction budget (A/B
//!   runs against older binaries should pass the same budget to both).

use virtuoso_bench::simspeed::{measure, render, SpeedOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut opts = if quick {
        SpeedOptions::quick()
    } else {
        SpeedOptions::full()
    };
    let mut out_path: Option<String> = None;
    let mut min_mips: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ref-mips" => {
                opts.reference_mips = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--ref-mips needs a number");
                i += 2;
            }
            "--instructions" => {
                opts.instructions = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--instructions needs a number");
                i += 2;
            }
            "--min-mips" => {
                min_mips = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--min-mips needs a number"),
                );
                i += 2;
            }
            "--out" => {
                out_path = Some(args.get(i + 1).expect("--out needs a path").clone());
                i += 2;
            }
            "--engine" => {
                let list = args.get(i + 1).expect("--engine needs a list");
                opts.engines = if list == "none" {
                    Vec::new()
                } else {
                    list.split(',').map(str::to_string).collect()
                };
                i += 2;
            }
            "--cores" => {
                let list = args.get(i + 1).expect("--cores needs a list");
                opts.core_counts = if list == "none" {
                    Vec::new()
                } else {
                    list.split(',')
                        .map(|s| s.parse().expect("--cores needs numbers"))
                        .collect()
                };
                i += 2;
            }
            "--threads" => {
                let list = args.get(i + 1).expect("--threads needs a list");
                opts.host_threads = list
                    .split(',')
                    .map(|s| s.parse().expect("--threads needs numbers"))
                    .collect();
                i += 2;
            }
            _ => i += 1,
        }
    }

    let report = measure(&opts);
    print!("{}", render(&report));

    let path = out_path.unwrap_or_else(|| {
        // crates/bench/../../ == the repository root — when the binary
        // runs on the host it was built on. A copied binary (e.g. a CI
        // artifact) falls back to the current working directory.
        let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        if std::path::Path::new(repo_root).is_dir() {
            format!("{repo_root}/BENCH_simspeed.json")
        } else {
            "BENCH_simspeed.json".to_string()
        }
    });
    let json = serde_json::to_string_pretty(&report).expect("serialize speed report");
    std::fs::write(&path, json + "\n").expect("write BENCH_simspeed.json");
    println!("wrote {path}");

    if let Some(floor) = min_mips {
        let slow = report.cells_below(floor);
        if !slow.is_empty() {
            for c in &slow {
                eprintln!(
                    "FAIL: {} / {} / {} ({} cores) sustained {:.3} MIPS, below the {floor} floor",
                    c.workload, c.mode, c.engine, c.cores, c.mips
                );
            }
            std::process::exit(1);
        }
        println!(
            "all {} cells at or above the {floor} MIPS floor",
            report.cells.len()
        );
    }
}
