//! Regenerates Figure 12 of the Virtuoso paper (see EXPERIMENTS.md).
//! Usage: `cargo run --release -p virtuoso_bench --bin fig12_overhead_correlation [scale]`

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    println!(
        "{}",
        virtuoso_bench::experiments::fig12_overhead_correlation(scale).render()
    );
}
