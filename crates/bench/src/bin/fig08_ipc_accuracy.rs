//! Regenerates Figure 8 of the Virtuoso paper (see EXPERIMENTS.md).
//! Usage: `cargo run --release -p virtuoso_bench --bin fig08_ipc_accuracy [scale]`

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    println!(
        "{}",
        virtuoso_bench::experiments::fig08_ipc_accuracy(scale).render()
    );
}
