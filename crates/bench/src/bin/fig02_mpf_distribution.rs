//! Regenerates Figure 2 of the Virtuoso paper (see EXPERIMENTS.md).
//! Usage: `cargo run --release -p virtuoso_bench --bin fig02_mpf_distribution [scale]`

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    println!(
        "{}",
        virtuoso_bench::experiments::fig02_mpf_distribution(scale).render()
    );
}
