//! Parallel figure sweep: independent (workload × page-table) cells
//! sharded across worker threads by the work-stealing runner. Results are
//! bit-identical at any `--jobs` level.
//! Usage: `cargo run --release -p virtuoso_bench --bin sweep_parallel -- [--jobs N] [scale]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (jobs, rest) = virtuoso_bench::jobs_from_args(&args);
    let scale = rest.first().and_then(|s| s.parse().ok()).unwrap_or(1u64);
    println!(
        "{}",
        virtuoso_bench::experiments::parallel_pt_sweep(scale, jobs).render()
    );
}
