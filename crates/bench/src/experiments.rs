//! One experiment per table/figure of the paper's evaluation section.
//!
//! Each function regenerates the corresponding figure's rows/series with a
//! scaled-down instruction budget (see EXPERIMENTS.md for the mapping and
//! the observed shapes). The `scale` parameter multiplies the per-workload
//! instruction budget; `1` is the quick default.

use crate::runner::{run_spec, run_spec_with_config, ExperimentTable};
use mimic_os::{AllocationPolicy, OsConfig, ThpConfig, ThpMode};
use mmu_sim::{
    EngineConfig, EngineReport, MidgardConfig, PageTableKind, RmmConfig, UtopiaMmuConfig,
};
use virtuoso::{accuracy_percent, cosine_similarity_series, ReferenceMachine, SystemConfig};
use vm_types::stats::geometric_mean;
use vm_types::PageSize;
use vm_workloads::catalog;
use vm_workloads::WorkloadSpec;

fn budget(base: u64, scale: u64) -> u64 {
    base.saturating_mul(scale.max(1))
}

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Figure 1: fraction of execution time spent on address translation and
/// physical memory allocation, for long- and short-running workloads.
///
/// Long-running workloads are measured in steady state: their footprint is
/// scaled to fit the small-test machine, pre-populated, and the fractions
/// are computed over the measured segment only (see
/// [`crate::runner::steady_state_overheads`]). Cold-start measurement made
/// every long-running row degenerate to translation 0.000 / allocation
/// 1.000 — the first-touch faults of the scaled-down run swamped the
/// steady-state translation behaviour the figure is about.
pub fn fig01_vm_overheads(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 1: VM overheads (fraction of execution time)",
        &["workload", "class", "translation", "allocation"],
    );
    let mut long_t = Vec::new();
    let mut long_a = Vec::new();
    let mut short_t = Vec::new();
    let mut short_a = Vec::new();
    for spec in catalog::all_long_running() {
        let spec = spec
            .scaled_footprint(0.15)
            .with_instructions(budget(20_000, scale));
        let (translation, allocation) =
            crate::runner::steady_state_overheads(SystemConfig::small_test(), &spec, 1);
        long_t.push(translation.max(1e-6));
        long_a.push(allocation.max(1e-6));
        table.push_row(vec![
            spec.name.clone(),
            "long".into(),
            fmt(translation),
            fmt(allocation),
        ]);
    }
    for spec in catalog::all_short_running() {
        let spec = spec.with_instructions(budget(15_000, scale));
        let r = run_spec(&spec, 1);
        short_t.push(r.translation_time_fraction().max(1e-6));
        short_a.push(r.allocation_time_fraction().max(1e-6));
        table.push_row(vec![
            spec.name.clone(),
            "short".into(),
            fmt(r.translation_time_fraction()),
            fmt(r.allocation_time_fraction()),
        ]);
    }
    table.push_row(vec![
        "GMEAN-long".into(),
        "long".into(),
        fmt(geometric_mean(&long_t)),
        fmt(geometric_mean(&long_a)),
    ]);
    table.push_row(vec![
        "GMEAN-short".into(),
        "short".into(),
        fmt(geometric_mean(&short_t)),
        fmt(geometric_mean(&short_a)),
    ]);
    table
}

/// Figure 2: minor page-fault latency distribution with THP enabled vs
/// disabled, including the outlier contribution to total fault latency.
pub fn fig02_mpf_distribution(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 2: minor page-fault latency, THP enabled vs disabled",
        &[
            "config",
            "faults",
            "p25 ns",
            "median ns",
            "p75 ns",
            "max ns",
            "outlier share >10us",
        ],
    );
    for (label, thp) in [
        ("THP-enabled", ThpConfig::linux_default()),
        ("THP-disabled", ThpConfig::disabled()),
    ] {
        let mut config = SystemConfig::small_test();
        config.os.thp = thp;
        let mut all = vm_types::LatencyStats::new();
        for spec in catalog::all_short_running().into_iter().take(6) {
            let spec = spec.with_instructions(budget(15_000, scale));
            let r = run_spec_with_config(config.clone(), &spec, 2);
            all.merge(&r.fault_latency_ns);
        }
        let p = all.percentiles();
        table.push_row(vec![
            label.into(),
            all.count().to_string(),
            fmt(p.p25),
            fmt(p.p50),
            fmt(p.p75),
            fmt(p.max),
            fmt(all.outlier_contribution(10_000.0)),
        ]);
    }
    table
}

/// Figure 3: average page-table-walk latency across workloads of varying
/// memory intensity.
pub fn fig03_ptw_variation(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 3: average PTW latency across memory-intensity levels",
        &["workload", "avg PTW (cycles)", "L2 TLB MPKI"],
    );
    for spec in catalog::stress_sweep(12) {
        let spec = spec.with_instructions(budget(15_000, scale));
        let r = run_spec(&spec, 3);
        table.push_row(vec![
            spec.name.clone(),
            fmt(r.avg_ptw_latency_cycles),
            fmt(r.l2_tlb_mpki),
        ]);
    }
    let sssp = catalog::graphbig_sssp().with_instructions(budget(20_000, scale));
    let r = run_spec(&sssp, 3);
    table.push_row(vec![
        "SSSP".into(),
        fmt(r.avg_ptw_latency_cycles),
        fmt(r.l2_tlb_mpki),
    ]);
    table
}

/// Builds the calibrated reference machine for a long-running workload (the
/// stand-in for the paper's real-system measurement; see DESIGN.md §1).
fn reference_for(spec: &WorkloadSpec, scale: u64) -> (ReferenceMachine, f64, f64) {
    // The reference is the detailed simulator itself at the same scale; the
    // two estimators compared against it are the detailed model with a
    // different seed (Virtuoso) and the fixed-latency emulation baseline.
    let reference_report = run_spec(&spec.clone().with_instructions(budget(20_000, scale)), 100);
    let reference = ReferenceMachine::new(
        &spec.name,
        reference_report.app_ipc,
        reference_report.l2_tlb_mpki,
        reference_report.avg_ptw_latency_cycles,
    )
    .with_fault_series(reference_report.fault_latency_ns.samples().to_vec());
    let virtuoso_report = run_spec(&spec.clone().with_instructions(budget(20_000, scale)), 7);
    let emulation_report = run_spec_with_config(
        SystemConfig::small_test().with_emulation_baseline(),
        &spec.clone().with_instructions(budget(20_000, scale)),
        7,
    );
    (reference, virtuoso_report.app_ipc, emulation_report.app_ipc)
}

/// Figure 8: IPC estimation accuracy of Virtuoso vs the fixed-latency
/// emulation baseline, relative to the reference machine.
pub fn fig08_ipc_accuracy(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 8: IPC estimation accuracy vs reference machine",
        &["workload", "virtuoso acc %", "baseline acc %"],
    );
    let mut v_acc = Vec::new();
    let mut b_acc = Vec::new();
    for spec in catalog::all_long_running() {
        let (reference, virtuoso_ipc, baseline_ipc) = reference_for(&spec, scale);
        let va = reference.ipc_accuracy_percent(virtuoso_ipc);
        let ba = reference.ipc_accuracy_percent(baseline_ipc);
        v_acc.push(va.max(1e-3));
        b_acc.push(ba.max(1e-3));
        table.push_row(vec![spec.name.clone(), fmt(va), fmt(ba)]);
    }
    table.push_row(vec![
        "GMEAN".into(),
        fmt(geometric_mean(&v_acc)),
        fmt(geometric_mean(&b_acc)),
    ]);
    table
}

/// Figure 9: cosine similarity between the page-fault latency series of the
/// detailed model and the reference machine, for short-running workloads.
pub fn fig09_pf_cosine(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 9: page-fault latency cosine similarity",
        &["workload", "cosine similarity"],
    );
    let mut sims = Vec::new();
    for spec in catalog::all_short_running() {
        let budgeted = spec.with_instructions(budget(15_000, scale));
        let reference = run_spec(&budgeted, 100);
        let estimate = run_spec(&budgeted, 9);
        let sim = cosine_similarity_series(
            estimate.fault_latency_ns.samples(),
            reference.fault_latency_ns.samples(),
        );
        sims.push(sim.max(1e-3));
        table.push_row(vec![budgeted.name.clone(), fmt(sim)]);
    }
    table.push_row(vec!["GMEAN".into(), fmt(geometric_mean(&sims))]);
    table
}

/// Figure 10: L2 TLB MPKI and PTW latency accuracy against the reference.
pub fn fig10_mmu_validation(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 10: MMU validation (L2 TLB MPKI and PTW latency accuracy)",
        &[
            "workload",
            "MPKI",
            "ref MPKI",
            "MPKI acc %",
            "PTW cyc",
            "ref PTW cyc",
            "PTW acc %",
        ],
    );
    for spec in catalog::all_long_running() {
        let budgeted = spec.with_instructions(budget(20_000, scale));
        let reference = run_spec(&budgeted, 100);
        let estimate = run_spec(&budgeted, 11);
        table.push_row(vec![
            budgeted.name.clone(),
            fmt(estimate.l2_tlb_mpki),
            fmt(reference.l2_tlb_mpki),
            fmt(accuracy_percent(
                estimate.l2_tlb_mpki,
                reference.l2_tlb_mpki,
            )),
            fmt(estimate.avg_ptw_latency_cycles),
            fmt(reference.avg_ptw_latency_cycles),
            fmt(accuracy_percent(
                estimate.avg_ptw_latency_cycles,
                reference.avg_ptw_latency_cycles,
            )),
        ]);
    }
    table
}

/// Figure 11: simulation-time overhead of the detailed (MimicOS) mode over
/// the emulation mode, measured as wall-clock time of this host.
pub fn fig11_sim_overhead(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 11: simulation-time overhead of MimicOS integration",
        &["workload", "emulation ms", "detailed ms", "overhead %"],
    );
    for spec in [
        catalog::gups_randacc(),
        catalog::graphbig_bfs(),
        catalog::faas_json(),
    ] {
        let budgeted = spec.with_instructions(budget(40_000, scale));
        let start = std::time::Instant::now();
        let _ = run_spec_with_config(
            SystemConfig::small_test().with_emulation_baseline(),
            &budgeted,
            13,
        );
        let emulation_ms = start.elapsed().as_secs_f64() * 1000.0;
        let start = std::time::Instant::now();
        let _ = run_spec(&budgeted, 13);
        let detailed_ms = start.elapsed().as_secs_f64() * 1000.0;
        let overhead = if emulation_ms > 0.0 {
            (detailed_ms / emulation_ms - 1.0) * 100.0
        } else {
            0.0
        };
        table.push_row(vec![
            budgeted.name.clone(),
            fmt(emulation_ms),
            fmt(detailed_ms),
            fmt(overhead),
        ]);
    }
    table
}

/// Figure 12: correlation between the fraction of instructions executed by
/// MimicOS and the simulation-time overhead.
pub fn fig12_overhead_correlation(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 12: kernel-instruction fraction vs simulation time",
        &[
            "new-page fraction",
            "kernel instr fraction",
            "normalized sim time",
        ],
    );
    let mut baseline_ms = None;
    for step in 0..6u32 {
        let new_page_fraction = 0.02 + 0.18 * step as f64;
        let spec = WorkloadSpec::simple(
            &format!("kfrac-{step}"),
            vm_workloads::WorkloadClass::ShortRunning,
            96 * 1024 * 1024,
            vm_workloads::AccessPattern::AllocateAndTouch { new_page_fraction },
            budget(30_000, scale),
        );
        let start = std::time::Instant::now();
        let r = run_spec(&spec, 17);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let base = *baseline_ms.get_or_insert(ms);
        let kernel_fraction =
            r.kernel_instructions as f64 / (r.instructions + r.kernel_instructions).max(1) as f64;
        table.push_row(vec![
            fmt(new_page_fraction),
            fmt(kernel_fraction),
            fmt(ms / base),
        ]);
    }
    table
}

fn fragmented_config(kind: PageTableKind, free_fraction: f64) -> SystemConfig {
    let mut config = SystemConfig::small_test().with_page_table(kind);
    config.os.fragmentation_target = Some(free_fraction);
    config
}

/// Figure 13: reduction in total PTW latency achieved by the hash-based
/// page tables over Radix, across memory-fragmentation levels.
pub fn fig13_ptw_reduction(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 13: PTW latency reduction over Radix vs fragmentation",
        &["free 2MB fraction", "ECH %", "HDC %", "HT %"],
    );
    let spec = catalog::graphbig_sssp().with_instructions(budget(20_000, scale));
    for free in [1.0, 0.96, 0.92] {
        let radix = run_spec_with_config(fragmented_config(PageTableKind::Radix, free), &spec, 19);
        let mut row = vec![fmt(free)];
        for kind in [
            PageTableKind::ElasticCuckoo,
            PageTableKind::HashedOpenAddressing,
            PageTableKind::HashedChained,
        ] {
            let r = run_spec_with_config(fragmented_config(kind, free), &spec, 19);
            let reduction = if radix.total_ptw_latency_cycles > 0.0 {
                (1.0 - r.total_ptw_latency_cycles / radix.total_ptw_latency_cycles) * 100.0
            } else {
                0.0
            };
            row.push(fmt(reduction));
        }
        table.push_row(row);
    }
    table
}

/// Figure 14: DRAM row-buffer conflicts of the hash-based page tables,
/// normalized to Radix.
pub fn fig14_rowbuffer_conflicts(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 14: DRAM row-buffer conflicts normalized to Radix",
        &["workload", "ECH", "HDC", "HT"],
    );
    let mut per_kind: Vec<Vec<f64>> = vec![Vec::new(), Vec::new(), Vec::new()];
    for spec in catalog::all_long_running().into_iter().take(5) {
        let budgeted = spec.with_instructions(budget(15_000, scale));
        let radix = run_spec_with_config(
            SystemConfig::small_test().with_page_table(PageTableKind::Radix),
            &budgeted,
            23,
        );
        let mut row = vec![budgeted.name.clone()];
        for (i, kind) in [
            PageTableKind::ElasticCuckoo,
            PageTableKind::HashedOpenAddressing,
            PageTableKind::HashedChained,
        ]
        .into_iter()
        .enumerate()
        {
            let r = run_spec_with_config(
                SystemConfig::small_test().with_page_table(kind),
                &budgeted,
                23,
            );
            let norm = r.dram_row_conflicts as f64 / radix.dram_row_conflicts.max(1) as f64;
            per_kind[i].push(norm.max(1e-3));
            row.push(fmt(norm));
        }
        table.push_row(row);
    }
    table.push_row(vec![
        "GMEAN".into(),
        fmt(geometric_mean(&per_kind[0])),
        fmt(geometric_mean(&per_kind[1])),
        fmt(geometric_mean(&per_kind[2])),
    ]);
    table
}

/// Figure 15: reduction in total minor-page-fault latency achieved by the
/// hash-based page tables over Radix.
pub fn fig15_mpf_reduction(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 15: minor-fault latency reduction over Radix",
        &["workload", "ECH %", "HDC %", "HT %"],
    );
    for spec in [
        catalog::graphbig_bfs(),
        catalog::gups_randacc(),
        catalog::graphbig_tc(),
    ] {
        let budgeted = spec.with_instructions(budget(15_000, scale));
        let radix = run_spec_with_config(
            SystemConfig::small_test().with_page_table(PageTableKind::Radix),
            &budgeted,
            29,
        );
        let mut row = vec![budgeted.name.clone()];
        for kind in [
            PageTableKind::ElasticCuckoo,
            PageTableKind::HashedOpenAddressing,
            PageTableKind::HashedChained,
        ] {
            let r = run_spec_with_config(
                SystemConfig::small_test().with_page_table(kind),
                &budgeted,
                29,
            );
            let reduction = if radix.total_fault_ns > 0.0 {
                (1.0 - r.total_fault_ns / radix.total_fault_ns) * 100.0
            } else {
                0.0
            };
            row.push(fmt(reduction));
        }
        table.push_row(row);
    }
    table
}

/// Figure 16: page-fault latency distribution of seven allocation policies
/// on the LLM-inference workloads.
pub fn fig16_llm_alloc_policies(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 16: LLM page-fault latency by allocation policy",
        &[
            "workload",
            "policy",
            "median ns",
            "p99 ns",
            "max ns",
            "total us",
        ],
    );
    let policies = [
        AllocationPolicy::BuddyFourK,
        AllocationPolicy::ConservativeReservationThp,
        AllocationPolicy::AggressiveReservationThp,
        AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
            4 * 1024 * 1024,
            8,
            PageSize::Size4K,
        )),
        AllocationPolicy::utopia_32mb_16way(),
        AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
            128 * 1024 * 1024,
            16,
            PageSize::Size4K,
        )),
        AllocationPolicy::LinuxThp,
    ];
    for spec in catalog::llm_workloads() {
        let budgeted = spec.with_instructions(budget(20_000, scale));
        for policy in policies {
            let r = run_spec_with_config(
                SystemConfig::small_test().with_allocation_policy(policy),
                &budgeted,
                31,
            );
            let p = r.fault_latency_percentiles();
            table.push_row(vec![
                budgeted.name.clone(),
                policy.label(),
                fmt(p.p50),
                fmt(p.p99),
                fmt(p.max),
                fmt(r.total_fault_ns / 1000.0),
            ]);
        }
    }
    table
}

/// Figure 17: breakdown of Midgard translation latency into frontend and
/// backend components — measured end to end. Every workload runs through
/// the *full* `System` (MimicOS faults, caches, DRAM, reporting) with the
/// Midgard translation engine selected; the breakdown comes out of the
/// report's per-engine stats section, not a bespoke translation loop.
/// Footprints are scaled to fit the small-test machine (the VMA structure
/// — what the VLBs cache — is preserved by per-region scaling).
pub fn fig17_midgard_breakdown(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 17: Midgard translation latency breakdown (end-to-end)",
        &[
            "workload",
            "frontend %",
            "backend %",
            "L2 VLB hit %",
            "backend walks",
        ],
    );
    for spec in catalog::all_long_running() {
        let budgeted = spec
            .scaled_footprint(0.15)
            .with_instructions(budget(20_000, scale));
        let config = SystemConfig::small_test()
            .with_engine(EngineConfig::Midgard(MidgardConfig::paper_baseline()));
        let r = run_spec_with_config(config, &budgeted, 37);
        let Some(EngineReport::Midgard {
            frontend_fraction,
            l2_vlb_hit_ratio,
            backend_walks,
            ..
        }) = r.engine
        else {
            unreachable!("the midgard engine reports midgard stats");
        };
        let frontend = frontend_fraction * 100.0;
        table.push_row(vec![
            budgeted.name.clone(),
            fmt(frontend),
            fmt(100.0 - frontend),
            fmt(l2_vlb_hit_ratio * 100.0),
            backend_walks.to_string(),
        ]);
    }
    table
}

/// Figure 18: histogram of VMA sizes in the BC workload.
pub fn fig18_vma_histogram() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 18: number of VMAs of each size in BC",
        &["bucket", "count"],
    );
    let bc = catalog::graphbig_bc();
    let mut tree = mimic_os::VmaTree::new();
    for region in &bc.regions {
        tree.insert(mimic_os::Vma::anonymous(region.start, region.bytes))
            .expect("catalogue regions do not overlap");
    }
    let hist = tree.size_histogram();
    let labels = [
        "<=4KB", "<128KB", "<256KB", "<512KB", "<1MB", "<8MB", "<16MB", "<32MB", "<1GB", ">=1GB",
    ];
    for (label, count) in labels.iter().zip(hist.bucket_counts()) {
        table.push_row(vec![(*label).into(), count.to_string()]);
    }
    table
}

/// Figure 19: increase in address-translation metadata traffic as the
/// Utopia RestSeg grows — measured end to end. The kernel runs the Utopia
/// allocation policy (RestSeg placement happens on real faults), the
/// Utopia translation engine pays the RSW lookups on real TLB misses, and
/// the tag-array fetches traverse the simulated cache hierarchy. RestSeg
/// sizes are scaled to the small-test machine (the paper's 8→64 GB sweep
/// becomes 32→128 MB of the 256 MB machine, preserving the
/// metadata-footprint-vs-cache-reach effect the figure is about).
pub fn fig19_restseg_size(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 19: Utopia translation overhead vs RestSeg size (end-to-end)",
        &[
            "RestSeg MB",
            "RSW fetches",
            "restseg hits",
            "increase % over smallest",
        ],
    );
    let spec = catalog::gups_randacc()
        .scaled_footprint(0.125)
        .with_instructions(budget(30_000, scale));
    let mut baseline = None;
    for mb in [32u64, 64, 96, 128] {
        let restseg_bytes = mb << 20;
        let mut config = SystemConfig::small_test().with_engine(EngineConfig::Utopia(
            UtopiaMmuConfig::paper_baseline().with_restseg_bytes(restseg_bytes),
        ));
        config.os.policy = AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
            restseg_bytes,
            16,
            PageSize::Size4K,
        ));
        let r = run_spec_with_config(config, &spec, 41);
        let Some(EngineReport::Utopia {
            rsw_fetches,
            restseg_hits,
            ..
        }) = r.engine
        else {
            unreachable!("the utopia engine reports utopia stats");
        };
        let base = *baseline.get_or_insert(rsw_fetches.max(1));
        table.push_row(vec![
            mb.to_string(),
            rsw_fetches.to_string(),
            restseg_hits.to_string(),
            fmt((rsw_fetches as f64 / base as f64 - 1.0) * 100.0),
        ]);
    }
    table
}

/// Figure 20: time spent swapping as the restrictive segment covers a
/// growing fraction of main memory.
pub fn fig20_swap_activity(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 20: swapping time vs restrictive-segment coverage",
        &["coverage %", "swap I/O us", "normalized to radix"],
    );
    let footprint: u64 = 120 * 1024 * 1024;
    let memory: u64 = 128 * 1024 * 1024;
    // Enough instructions that the uniform-random walk touches (nearly)
    // the whole footprint: the paper's effect is that the buddy machine
    // holds the resident set with modest threshold reclaim, while
    // Utopia's RestSeg carve-out squeezes the FlexSeg until collision
    // spills exhaust it and force swap — growing with RestSeg coverage.
    // (The previous 96 MiB / 25 k-instruction calibration never built
    // enough pressure to swap at all, so every row printed 0; it also
    // panicked on the unaligned 70 % carve-out.) The sweep starts where
    // the FlexSeg squeeze bites on this scaled machine; past ~85 %
    // coverage the swap time plateaus — the FlexSeg is already in full
    // thrash and the RestSeg absorbs a growing share of the footprint.
    let spec = WorkloadSpec::simple(
        "swap-study",
        vm_workloads::WorkloadClass::LongRunning,
        footprint,
        vm_workloads::AccessPattern::UniformRandom,
        budget(250_000, scale),
    );
    let base_os = OsConfig {
        memory_bytes: memory,
        swap_bytes: 256 * 1024 * 1024,
        swap_threshold: 0.9,
        thp: ThpConfig {
            mode: ThpMode::Never,
            ..ThpConfig::linux_default()
        },
        fragmentation_target: None,
        populate_page_cache: false,
        ..OsConfig::small_test()
    };
    // Radix (buddy-only) baseline.
    let mut radix_cfg = SystemConfig::small_test();
    radix_cfg.os = OsConfig {
        policy: AllocationPolicy::BuddyFourK,
        ..base_os.clone()
    };
    let radix = run_spec_with_config(radix_cfg, &spec, 43);
    let radix_io = radix.swap_io_ns.max(1.0);
    for coverage in [80u64, 85, 90] {
        // Align the RestSeg carve-out so the FlexSeg remainder stays a
        // whole number of 4 KiB frames (70 % of 128 MiB is not).
        let restseg = (memory * coverage / 100) & !4095;
        let mut cfg = SystemConfig::small_test();
        cfg.os = OsConfig {
            policy: AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
                restseg,
                4,
                PageSize::Size4K,
            )),
            ..base_os.clone()
        };
        let r = run_spec_with_config(cfg, &spec, 43);
        table.push_row(vec![
            coverage.to_string(),
            fmt(r.swap_io_ns / 1000.0),
            fmt(r.swap_io_ns / radix_io),
        ]);
    }
    table
}

/// Figure 21: reduction in translation-metadata DRAM row-buffer conflicts
/// achieved by RMM over Radix, across fragmentation levels — both sides
/// measured end to end on the same `System` path. The radix side walks its
/// page table through the memory hierarchy; the RMM side runs the range
/// engine over eager-paging ranges, so only range-table walks (and the
/// rare uncovered fallbacks) generate translation-metadata DRAM traffic.
pub fn fig21_rmm_conflicts(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 21: translation-metadata DRAM conflicts, RMM vs Radix (end-to-end)",
        &[
            "workload",
            "free 2MB fraction",
            "radix conflicts",
            "rmm conflicts",
            "range coverage %",
            "reduction %",
        ],
    );
    for spec in [catalog::graphbig_bfs(), catalog::gups_randacc()] {
        let budgeted = spec
            .scaled_footprint(0.15)
            .with_instructions(budget(15_000, scale));
        for free in [0.94, 0.6] {
            // Radix side: the conventional engine, counting PT-walker DRAM
            // row-buffer conflicts.
            let radix =
                run_spec_with_config(fragmented_config(PageTableKind::Radix, free), &budgeted, 47);
            // RMM side: same machine and fragmentation, range engine +
            // eager paging (ranges come from the kernel's eager allocator).
            let mut rmm_config = fragmented_config(PageTableKind::Radix, free)
                .with_engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
            rmm_config.os.policy = AllocationPolicy::EagerPaging;
            let rmm = run_spec_with_config(rmm_config, &budgeted, 47);
            let Some(EngineReport::Rmm { range_coverage, .. }) = rmm.engine else {
                unreachable!("the rmm engine reports rmm stats");
            };
            let reduction = if radix.dram_translation_conflicts > 0 {
                (1.0 - rmm.dram_translation_conflicts as f64
                    / radix.dram_translation_conflicts as f64)
                    * 100.0
            } else {
                0.0
            };
            table.push_row(vec![
                budgeted.name.clone(),
                fmt(free),
                radix.dram_translation_conflicts.to_string(),
                rmm.dram_translation_conflicts.to_string(),
                fmt(range_coverage * 100.0),
                fmt(reduction),
            ]);
        }
    }
    table
}

/// Multi-process interference study (scenario-diversity extension): the
/// GUPS + Llama mix runs interleaved under the MimicOS round-robin
/// scheduler, once with ASID-tagged TLBs and once with the full-flush
/// baseline of an ASID-less machine. One row per (mode × process), plus the
/// context-switch and flush counts that explain the difference.
pub fn multiprogram_interference(scale: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Multi-process: ASID-tagged TLBs vs full flush on context switch",
        &[
            "mix",
            "mode",
            "workload",
            "instrs",
            "ipc",
            "walks",
            "tlb_miss%",
            "min_flt",
            "ctx_switches",
            "flushed_entries",
        ],
    );
    // The TLB-resident mix leads the table: working sets sized to stay
    // resident in the paper-baseline TLB hierarchy show the full
    // interference effect (ASID tags keep both processes' entries warm
    // across switches; the full-flush baseline re-walks its whole working
    // set every quantum). The scaled GUPS+Llama mix follows for
    // continuity with the earlier experiments — its aggressor overflows
    // the small-test TLB on its own, so the flush penalty is muted there.
    let mixes: [(&str, Vec<WorkloadSpec>, bool); 2] = [
        ("resident", catalog::multiprogram_mix_resident(), true),
        ("scaled", catalog::multiprogram_mix(), false),
    ];
    for (mix_label, mix, tlb_resident) in mixes {
        for (label, asid_tags) in [("asid", true), ("full-flush", false)] {
            let mut config = SystemConfig::small_test();
            config.mmu.asid_tlb_tags = asid_tags;
            if tlb_resident {
                // The resident scenario is about TLB reach: give the
                // machine the paper-baseline TLB hierarchy and keep the
                // mappings at 4 KiB (THP collapse would shrink each
                // working set to a single 2 MiB entry and hide the
                // refill cost being measured).
                config.mmu.tlb = mmu_sim::TlbHierarchyConfig::paper_baseline();
                config.os.thp = ThpConfig::disabled();
                config.os.policy = AllocationPolicy::BuddyFourK;
                // Short timeslices: many context switches per run, so the
                // steady-state flush/refill behaviour dominates the cold
                // first-touch walks even at the quick scale.
                config.os.sched_quantum = 500;
            }
            let specs: Vec<WorkloadSpec> = mix
                .iter()
                .map(|s| {
                    let instructions = budget(s.instructions / 10, scale);
                    s.clone().with_instructions(instructions)
                })
                .collect();
            let report = crate::runner::run_multiprogram_specs(config, &specs, 7);
            for p in &report.processes {
                table.push_row(vec![
                    mix_label.into(),
                    label.into(),
                    p.workload.clone(),
                    p.instructions.to_string(),
                    fmt(p.ipc),
                    p.page_walks.to_string(),
                    fmt(100.0 * p.tlb_miss_ratio()),
                    p.minor_faults.to_string(),
                    report.context_switches.to_string(),
                    report.switch_flushed_tlb_entries.to_string(),
                ]);
            }
        }
    }

    // Scenario diversity: the same kind of interference mix under the
    // alternative translation engines — the unified `System` path means the
    // scheduler, context switches, faults and caches all participate no
    // matter which engine translates. One row per (engine × process).
    let engine_mix = catalog::multiprogram_mix_engines();
    let restseg_bytes: u64 = 64 * 1024 * 1024;
    let engine_rows: [(&str, EngineConfig, Option<AllocationPolicy>); 2] = [
        (
            "midgard",
            EngineConfig::Midgard(MidgardConfig::paper_baseline()),
            None,
        ),
        (
            "utopia",
            EngineConfig::Utopia(
                UtopiaMmuConfig::paper_baseline().with_restseg_bytes(restseg_bytes),
            ),
            Some(AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
                restseg_bytes,
                16,
                PageSize::Size4K,
            ))),
        ),
    ];
    for (label, engine, policy) in engine_rows {
        let mut config = SystemConfig::small_test().with_engine(engine);
        if let Some(policy) = policy {
            config.os.policy = policy;
        }
        let specs: Vec<WorkloadSpec> = engine_mix
            .iter()
            .map(|s| {
                let instructions = budget(s.instructions / 10, scale);
                s.clone().with_instructions(instructions)
            })
            .collect();
        let report = crate::runner::run_multiprogram_specs(config, &specs, 7);
        for p in &report.processes {
            table.push_row(vec![
                "engines".into(),
                label.into(),
                p.workload.clone(),
                p.instructions.to_string(),
                fmt(p.ipc),
                p.page_walks.to_string(),
                fmt(100.0 * p.tlb_miss_ratio()),
                p.minor_faults.to_string(),
                report.context_switches.to_string(),
                report.switch_flushed_tlb_entries.to_string(),
            ]);
        }
    }
    table
}

/// A (workload × page-table design) figure sweep executed by the
/// work-stealing parallel runner: every cell is an independent simulation,
/// sharded across `jobs` worker threads with deterministic per-cell
/// seeding, so the table is bit-identical at any `--jobs` level.
pub fn parallel_pt_sweep(scale: u64, jobs: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        &format!("Parallel sweep: page-table designs x workloads ({jobs} jobs)"),
        &["cell", "ipc", "walks", "avg_ptw_cycles", "minor_faults"],
    );
    let mut cells = Vec::new();
    for spec in catalog::all_long_running().into_iter().take(4) {
        let spec = spec
            .scaled_footprint(0.1)
            .with_instructions(budget(10_000, scale));
        for kind in PageTableKind::ALL {
            cells.push(crate::runner::ExperimentCell::new(
                &format!("{}/{kind}", spec.name),
                SystemConfig::small_test().with_page_table(kind),
                spec.clone(),
            ));
        }
    }
    let reports = crate::runner::run_cells(&cells, 11, jobs);
    for (cell, report) in cells.iter().zip(&reports) {
        table.push_row(vec![
            cell.label.clone(),
            fmt(report.ipc),
            report.page_walks.to_string(),
            format!("{:.2}", report.avg_ptw_latency_cycles),
            report.minor_faults.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig18_reports_the_bc_profile() {
        let table = fig18_vma_histogram();
        assert_eq!(table.rows.len(), 10);
        let total: u64 = table
            .rows
            .iter()
            .map(|r| r[1].parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 148);
    }

    #[test]
    fn fig02_produces_two_configurations() {
        let table = fig02_mpf_distribution(0);
        assert_eq!(table.rows.len(), 2);
    }

    #[test]
    fn fig13_rows_cover_three_fragmentation_levels() {
        let table = fig13_ptw_reduction(0);
        assert_eq!(table.rows.len(), 3);
    }

    #[test]
    fn fig19_overhead_grows_with_restseg_size() {
        let table = fig19_restseg_size(0);
        let first: f64 = table.rows[0][1].parse().unwrap();
        let last: f64 = table.rows.last().unwrap()[1].parse().unwrap();
        assert!(last >= first);
    }

    #[test]
    fn multiprogram_interference_shows_the_asid_benefit() {
        let table = multiprogram_interference(0);
        assert_eq!(
            table.rows.len(),
            12,
            "2 mixes x 2 modes x 2 processes + 2 engines x 2 processes"
        );
        // The engine rows run the interference mix under Midgard and Utopia
        // through the same unified path (scheduler + faults included).
        for engine in ["midgard", "utopia"] {
            let rows: Vec<_> = table
                .rows
                .iter()
                .filter(|r| r[0] == "engines" && r[1] == engine)
                .collect();
            assert_eq!(rows.len(), 2, "{engine}: one row per process");
            for row in rows {
                assert!(
                    row[7].parse::<u64>().unwrap() > 0,
                    "{engine}: faults must flow through MimicOS"
                );
            }
        }
        // The TLB-resident mix is the headline: it comes first.
        assert_eq!(table.rows[0][0], "resident");
        let walks_of = |mix: &str, mode: &str| -> u64 {
            table
                .rows
                .iter()
                .filter(|r| r[0] == mix && r[1] == mode)
                .map(|r| r[5].parse::<u64>().unwrap())
                .sum()
        };
        let flushed_of = |mix: &str, mode: &str| -> u64 {
            table
                .rows
                .iter()
                .find(|r| r[0] == mix && r[1] == mode)
                .unwrap()[9]
                .parse()
                .unwrap()
        };
        for mix in ["resident", "scaled"] {
            assert_eq!(flushed_of(mix, "asid"), 0);
            assert!(flushed_of(mix, "full-flush") > 0);
            assert!(
                walks_of(mix, "asid") < walks_of(mix, "full-flush"),
                "{mix}: ASID tags must save flush-induced page walks"
            );
        }
        // The headline: with TLB-resident working sets the full-flush
        // baseline re-walks the working set every quantum — a large
        // multiple, not a marginal delta.
        let resident_asid = walks_of("resident", "asid").max(1);
        let resident_flush = walks_of("resident", "full-flush");
        assert!(
            resident_flush >= 3 * resident_asid,
            "resident mix must show a large interference effect \
             (asid {resident_asid} vs full-flush {resident_flush})"
        );
    }

    #[test]
    fn parallel_sweep_covers_every_cell() {
        let table = parallel_pt_sweep(0, 2);
        assert_eq!(table.rows.len(), 4 * PageTableKind::ALL.len());
    }
}
