//! The benchmark harness: one experiment function per table/figure of the
//! Virtuoso paper's evaluation section, shared by the `figXX_*` binaries and
//! the Criterion benches.
//!
//! Every experiment returns a printable table of rows (so the binaries stay
//! one-liners) and uses deliberately scaled-down instruction budgets so the
//! whole suite regenerates on a laptop in minutes. Pass larger budgets
//! through the `*_with_scale` variants for higher-fidelity runs.

pub mod experiments;
pub mod runner;
pub mod simspeed;

pub use runner::{
    cell_seed, jobs_from_args, map_spec_regions, run_cells, run_multiprogram_specs, run_spec,
    run_spec_with_config, steady_state_overheads, ExperimentCell, ExperimentTable,
};
