//! Shared helpers for the figure harnesses: single-spec runs, the
//! multi-programmed run builder, and the work-stealing parallel experiment
//! runner that shards independent (workload × config) cells across host
//! cores with deterministic per-cell seeding.

use mimic_os::ProcessId;
use sim_core::TraceSource;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use virtuoso::{MultiProgramReport, SimulationReport, System, SystemConfig};
use vm_workloads::{SyntheticWorkload, WorkloadSpec};

/// A simple printable table: header plus rows of equal length.
#[derive(Debug, Clone, Default)]
pub struct ExperimentTable {
    /// Table title (figure identifier).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(title: &str, header: &[&str]) -> Self {
        ExperimentTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("=== {} ===\n", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i] + 2))
                .collect::<String>()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Maps every region of `spec` into `pid`'s address space. File-backed
/// regions are numbered `file_id_base + index + 1` so multi-process
/// callers can keep their page-cache state disjoint.
pub fn map_spec_regions(
    system: &mut System,
    pid: ProcessId,
    spec: &WorkloadSpec,
    file_id_base: u64,
) {
    for (i, region) in spec.regions.iter().enumerate() {
        let result = if region.file_backed {
            system.mmap_file_for(pid, region.start, region.bytes, file_id_base + i as u64 + 1)
        } else {
            system.mmap_anonymous_for(pid, region.start, region.bytes)
        };
        result.expect("mapping workload region");
    }
}

/// Builds a system for `spec` (mapping its regions) and runs it, returning
/// the report.
pub fn run_spec_with_config(
    config: SystemConfig,
    spec: &WorkloadSpec,
    seed: u64,
) -> SimulationReport {
    let mut system = System::new(config);
    let pid = system.pid();
    map_spec_regions(&mut system, pid, spec, 0);
    system.run(&mut spec.build(seed), None)
}

/// Runs `spec` on the small-test system configuration.
pub fn run_spec(spec: &WorkloadSpec, seed: u64) -> SimulationReport {
    run_spec_with_config(SystemConfig::small_test(), spec, seed)
}

/// Builds one process per spec (mapping its regions), then runs all of
/// them interleaved under the MimicOS scheduler. Process `i` runs
/// `specs[i]` with seed `seed + i`; file-backed regions get per-process
/// file ids so the processes do not share page-cache state.
pub fn run_multiprogram_specs(
    config: SystemConfig,
    specs: &[WorkloadSpec],
    seed: u64,
) -> MultiProgramReport {
    let mut system = System::new(config);
    let mut pids = vec![system.pid()];
    for _ in 1..specs.len() {
        pids.push(system.spawn_process());
    }
    for (pid, spec) in pids.iter().zip(specs) {
        map_spec_regions(&mut system, *pid, spec, (pid.0 as u64) * 1000);
    }
    let mut sources: Vec<SyntheticWorkload> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| spec.build(seed + i as u64))
        .collect();
    let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = pids
        .iter()
        .copied()
        .zip(sources.iter_mut().map(|s| s as &mut dyn TraceSource))
        .collect();
    system.run_multiprogram(&mut programs, None)
}

/// Steady-state VM overhead fractions of `spec`: the address space is
/// populated up front (as `MAP_POPULATE` would), the workload then runs
/// its instruction budget, and the translation/allocation time fractions
/// are computed over the measured segment only.
///
/// Measuring from a cold start instead lets the one-off first-touch faults
/// of the scaled-down run swamp the steady-state behaviour — the bug that
/// made `fig01` report a 0.000 translation fraction for every long-running
/// workload.
pub fn steady_state_overheads(config: SystemConfig, spec: &WorkloadSpec, seed: u64) -> (f64, f64) {
    let mut system = System::new(config);
    let pid = system.pid();
    map_spec_regions(&mut system, pid, spec, 0);
    system.populate(pid);
    let warm = system.report();
    let full = system.run(&mut spec.build(seed), None);
    full.fractions_since(&warm)
}

// ---------------------------------------------------------------------------
// The work-stealing parallel experiment runner.
// ---------------------------------------------------------------------------

/// One independent experiment cell: a (workload × configuration) point of a
/// figure sweep.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// Label used in tables (e.g. `"RND/radix"`).
    pub label: String,
    /// The system configuration of this cell.
    pub config: SystemConfig,
    /// The workload of this cell.
    pub workload: WorkloadSpec,
}

impl ExperimentCell {
    /// Builds a cell.
    pub fn new(label: &str, config: SystemConfig, workload: WorkloadSpec) -> Self {
        ExperimentCell {
            label: label.to_string(),
            config,
            workload,
        }
    }
}

/// The deterministic seed of cell `index` under `base_seed` (a splitmix64
/// step). Derived from the cell's position alone, never from which worker
/// thread claims it, so results are bit-identical at any `--jobs` level.
pub fn cell_seed(base_seed: u64, index: usize) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((index as u64).wrapping_mul(0xD129_0C0A_84BB_5E8B));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs every cell and returns the reports in cell order.
///
/// Cells are sharded across `jobs` worker threads through a shared
/// work-stealing index: each worker claims the next unclaimed cell as soon
/// as it finishes its previous one, so long cells never serialize behind
/// short ones. Each cell's RNG seed comes from [`cell_seed`], making the
/// result vector bit-identical for any `jobs` value (including 1).
pub fn run_cells(cells: &[ExperimentCell], base_seed: u64, jobs: usize) -> Vec<SimulationReport> {
    run_sharded(cells.len(), jobs, |idx| {
        let cell = &cells[idx];
        run_spec_with_config(
            cell.config.clone(),
            &cell.workload,
            cell_seed(base_seed, idx),
        )
    })
}

/// One multi-programmed experiment cell: a (workload mix × configuration)
/// point. The configuration's `num_cores` decides whether the mix runs on
/// the legacy single-core loop or the sharded multi-core loop.
#[derive(Debug, Clone)]
pub struct MultiProgramCell {
    /// Label used in tables (e.g. `"RND+STR/2core"`).
    pub label: String,
    /// The system configuration of this cell.
    pub config: SystemConfig,
    /// One workload per process; process `i` is pinned to core
    /// `i % num_cores` by the MimicOS scheduler.
    pub workloads: Vec<WorkloadSpec>,
}

impl MultiProgramCell {
    /// Builds a cell.
    pub fn new(label: &str, config: SystemConfig, workloads: Vec<WorkloadSpec>) -> Self {
        MultiProgramCell {
            label: label.to_string(),
            config,
            workloads,
        }
    }
}

/// [`run_cells`] for multi-programmed (including multi-core) cells: the
/// same work-stealing shard over host threads, the same positional
/// [`cell_seed`] derivation. Program `i` inside cell `idx` runs with seed
/// `cell_seed(base_seed, idx) + i` — derived from positions alone, never
/// from which worker thread claims the cell or which simulated core the
/// process lands on, so the result vector is bit-identical at any
/// `--jobs` level.
pub fn run_multiprogram_cells(
    cells: &[MultiProgramCell],
    base_seed: u64,
    jobs: usize,
) -> Vec<MultiProgramReport> {
    run_sharded(cells.len(), jobs, |idx| {
        let cell = &cells[idx];
        run_multiprogram_specs(
            cell.config.clone(),
            &cell.workloads,
            cell_seed(base_seed, idx),
        )
    })
}

/// The shared work-stealing shard: runs `count` independent cells across
/// `jobs` threads, collecting results in cell order.
fn run_sharded<R: Send>(count: usize, jobs: usize, run: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let jobs = jobs.max(1).min(count.max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                let report = run(idx);
                *results[idx].lock().expect("result slot poisoned") = Some(report);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell index was claimed")
        })
        .collect()
}

/// Parses `--jobs N` (or `-j N`) out of a raw argument list, returning the
/// worker count and the remaining arguments. Defaults to the host's
/// available parallelism.
pub fn jobs_from_args(args: &[String]) -> (usize, Vec<String>) {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut jobs = default;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" | "-j" => {
                if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    jobs = n;
                    i += 2;
                    continue;
                }
                i += 1;
            }
            arg => {
                if let Some(n) = arg
                    .strip_prefix("--jobs=")
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    jobs = n;
                } else {
                    rest.push(arg.to_string());
                }
                i += 1;
            }
        }
    }
    (jobs.max(1), rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_workloads::{AccessPattern, WorkloadClass};

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = ExperimentTable::new("Fig. X", &["workload", "value"]);
        t.push_row(vec!["BC".to_string(), "1.5".to_string()]);
        t.push_row(vec!["XSBench".to_string(), "20".to_string()]);
        let s = t.render();
        assert!(s.contains("Fig. X"));
        assert!(s.contains("XSBench"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut t = ExperimentTable::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".to_string()]);
    }

    #[test]
    fn run_spec_produces_a_report() {
        let spec = WorkloadSpec::simple(
            "runner-test",
            WorkloadClass::ShortRunning,
            4 * 1024 * 1024,
            AccessPattern::UniformRandom,
            2_000,
        );
        let report = run_spec(&spec, 1);
        assert_eq!(report.instructions, 2_000);
    }

    fn tiny_cells(n: usize) -> Vec<ExperimentCell> {
        (0..n)
            .map(|i| {
                let spec = WorkloadSpec::simple(
                    &format!("cell-{i}"),
                    WorkloadClass::ShortRunning,
                    (2 + i as u64) * 1024 * 1024,
                    AccessPattern::UniformRandom,
                    1_500,
                );
                ExperimentCell::new(&format!("cell-{i}"), SystemConfig::small_test(), spec)
            })
            .collect()
    }

    #[test]
    fn parallel_runner_matches_serial_bit_for_bit() {
        let cells = tiny_cells(6);
        let serial = run_cells(&cells, 42, 1);
        let parallel = run_cells(&cells, 42, 8);
        assert_eq!(serial.len(), 6);
        for (s, p) in serial.iter().zip(&parallel) {
            let sj = serde_json::to_string(s).expect("serialize");
            let pj = serde_json::to_string(p).expect("serialize");
            assert_eq!(sj, pj, "jobs=1 and jobs=8 must agree bit-for-bit");
        }
    }

    fn multicore_pressure_cells(n: usize) -> Vec<MultiProgramCell> {
        (0..n)
            .map(|i| {
                let cores = 2 + i % 3;
                let mut config = SystemConfig::small_test().with_cores(cores);
                config.os.memory_bytes = 16 * 1024 * 1024;
                config.os.swap_bytes = 128 * 1024 * 1024;
                config.os.swap_threshold = 0.5;
                config.os.policy = mimic_os::AllocationPolicy::BuddyFourK;
                config.os.thp = mimic_os::ThpConfig::disabled();
                config.os.populate_page_cache = false;
                config.os.sched_quantum = 1_000;
                let workloads = (0..cores + 1)
                    .map(|p| {
                        WorkloadSpec::simple(
                            &format!("mc-{i}-{p}"),
                            WorkloadClass::LongRunning,
                            12 * 1024 * 1024,
                            AccessPattern::UniformRandom,
                            2_000,
                        )
                    })
                    .collect();
                MultiProgramCell::new(&format!("mc-{i}/{cores}core"), config, workloads)
            })
            .collect()
    }

    #[test]
    fn multicore_cells_are_bit_identical_at_any_jobs_level() {
        let cells = multicore_pressure_cells(4);
        let serial = run_multiprogram_cells(&cells, 0xD0_0D, 1);
        let two = run_multiprogram_cells(&cells, 0xD0_0D, 2);
        let eight = run_multiprogram_cells(&cells, 0xD0_0D, 8);
        assert_eq!(serial.len(), 4);
        assert!(
            serial.iter().any(|r| r.rollup.shootdowns.is_some()),
            "pressure cells must exercise the shootdown path"
        );
        for (i, ((s, t), e)) in serial.iter().zip(&two).zip(&eight).enumerate() {
            let sj = serde_json::to_string(s).expect("serialize");
            let tj = serde_json::to_string(t).expect("serialize");
            let ej = serde_json::to_string(e).expect("serialize");
            assert_eq!(sj, tj, "cell {i}: jobs=1 and jobs=2 must agree bit-for-bit");
            assert_eq!(sj, ej, "cell {i}: jobs=1 and jobs=8 must agree bit-for-bit");
        }
    }

    #[test]
    fn cell_seeds_depend_on_index_not_schedule() {
        assert_ne!(cell_seed(7, 0), cell_seed(7, 1));
        assert_ne!(cell_seed(7, 0), cell_seed(8, 0));
        assert_eq!(cell_seed(7, 3), cell_seed(7, 3));
    }

    #[test]
    fn jobs_flag_parsing() {
        let (jobs, rest) = jobs_from_args(&["--jobs".into(), "4".into(), "2".into()]);
        assert_eq!(jobs, 4);
        assert_eq!(rest, vec!["2".to_string()]);
        let (jobs, rest) = jobs_from_args(&["--jobs=9".into()]);
        assert_eq!(jobs, 9);
        assert!(rest.is_empty());
        let (jobs, _) = jobs_from_args(&[]);
        assert!(jobs >= 1);
    }

    #[test]
    fn multiprogram_specs_share_the_machine() {
        let specs = vec![
            WorkloadSpec::simple(
                "AGG",
                WorkloadClass::LongRunning,
                8 * 1024 * 1024,
                AccessPattern::UniformRandom,
                4_000,
            ),
            WorkloadSpec::simple(
                "VIC",
                WorkloadClass::ShortRunning,
                8 * 1024 * 1024,
                AccessPattern::AllocateAndTouch {
                    new_page_fraction: 0.4,
                },
                4_000,
            ),
        ];
        let report = run_multiprogram_specs(SystemConfig::small_test(), &specs, 3);
        assert_eq!(report.processes.len(), 2);
        assert_eq!(report.rollup.instructions, 8_000);
        assert!(report.context_switches > 0);
        assert!(report.processes.iter().all(|p| p.instructions == 4_000));
    }

    #[test]
    fn steady_state_long_running_workload_is_translation_bound() {
        let spec = WorkloadSpec::simple(
            "steady",
            WorkloadClass::LongRunning,
            48 * 1024 * 1024,
            AccessPattern::UniformRandom,
            8_000,
        );
        let (translation, allocation) =
            steady_state_overheads(SystemConfig::small_test(), &spec, 1);
        assert!(
            translation > 0.02,
            "steady-state translation fraction {translation} must be visible"
        );
        assert!(
            translation > allocation,
            "random access over a populated footprint is translation-bound \
             (translation {translation}, allocation {allocation})"
        );
    }
}
