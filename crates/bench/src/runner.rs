//! Shared helpers for the figure harnesses.

use virtuoso::{SimulationReport, System, SystemConfig};
use vm_workloads::WorkloadSpec;

/// A simple printable table: header plus rows of equal length.
#[derive(Debug, Clone, Default)]
pub struct ExperimentTable {
    /// Table title (figure identifier).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(title: &str, header: &[&str]) -> Self {
        ExperimentTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("=== {} ===\n", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i] + 2))
                .collect::<String>()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Builds a system for `spec` (mapping its regions) and runs it, returning
/// the report.
pub fn run_spec_with_config(
    config: SystemConfig,
    spec: &WorkloadSpec,
    seed: u64,
) -> SimulationReport {
    let mut system = System::new(config);
    for (i, region) in spec.regions.iter().enumerate() {
        if region.file_backed {
            system
                .mmap_file(region.start, region.bytes, i as u64 + 1)
                .expect("mapping file region");
        } else {
            system
                .mmap_anonymous(region.start, region.bytes)
                .expect("mapping anonymous region");
        }
    }
    system.run(&mut spec.build(seed), None)
}

/// Runs `spec` on the small-test system configuration.
pub fn run_spec(spec: &WorkloadSpec, seed: u64) -> SimulationReport {
    run_spec_with_config(SystemConfig::small_test(), spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_workloads::{AccessPattern, WorkloadClass};

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = ExperimentTable::new("Fig. X", &["workload", "value"]);
        t.push_row(vec!["BC".to_string(), "1.5".to_string()]);
        t.push_row(vec!["XSBench".to_string(), "20".to_string()]);
        let s = t.render();
        assert!(s.contains("Fig. X"));
        assert!(s.contains("XSBench"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut t = ExperimentTable::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".to_string()]);
    }

    #[test]
    fn run_spec_produces_a_report() {
        let spec = WorkloadSpec::simple(
            "runner-test",
            WorkloadClass::ShortRunning,
            4 * 1024 * 1024,
            AccessPattern::UniformRandom,
            2_000,
        );
        let report = run_spec(&spec, 1);
        assert_eq!(report.instructions, 2_000);
    }
}
