//! Criterion bench for Use Case 2 (Fig. 16): simulation throughput with each
//! physical memory allocation policy on an LLM-like workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mimic_os::AllocationPolicy;
use virtuoso::SystemConfig;
use virtuoso_bench::run_spec_with_config;
use vm_workloads::catalog;

fn allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_allocation_policies");
    group.sample_size(10);
    let spec = catalog::llm_llama().with_instructions(15_000);
    let policies = [
        AllocationPolicy::BuddyFourK,
        AllocationPolicy::LinuxThp,
        AllocationPolicy::ConservativeReservationThp,
        AllocationPolicy::AggressiveReservationThp,
        AllocationPolicy::utopia_32mb_16way(),
    ];
    for policy in policies {
        group.bench_function(BenchmarkId::new("policy", policy.label()), |b| {
            b.iter(|| {
                run_spec_with_config(
                    SystemConfig::small_test().with_allocation_policy(policy),
                    &spec,
                    1,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, allocators);
criterion_main!(benches);
