//! Criterion bench for Use Case 1 (Figs. 13–15): simulation throughput with
//! each page-table design, confirming the harness regenerates the sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmu_sim::PageTableKind;
use virtuoso::SystemConfig;
use virtuoso_bench::run_spec_with_config;
use vm_workloads::catalog;

fn pt_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_15_page_tables");
    group.sample_size(10);
    let spec = catalog::graphbig_bfs().with_instructions(15_000);
    for kind in PageTableKind::ALL {
        group.bench_function(BenchmarkId::new("design", kind.label()), |b| {
            b.iter(|| {
                run_spec_with_config(SystemConfig::small_test().with_page_table(kind), &spec, 1)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, pt_designs);
criterion_main!(benches);
