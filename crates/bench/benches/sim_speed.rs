//! Criterion bench for the Fig. 11 / Fig. 12 experiments: simulation-speed
//! overhead of the detailed MimicOS integration over the emulation
//! baseline, plus the regression guards for the zero-allocation hot path —
//! a multi-programmed scheduler case and a per-instruction `System::step`
//! microbench, so slowdowns show up at both the workload and the
//! single-instruction granularity.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sim_core::TraceSource;
use virtuoso::{System, SystemConfig};
use virtuoso_bench::{map_spec_regions, run_multiprogram_specs, run_spec_with_config};
use vm_workloads::catalog;

fn sim_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_sim_speed");
    group.sample_size(10);
    let spec = catalog::gups_randacc().with_instructions(20_000);
    group.bench_function(BenchmarkId::new("mode", "emulation"), |b| {
        b.iter(|| {
            run_spec_with_config(
                SystemConfig::small_test().with_emulation_baseline(),
                &spec,
                1,
            )
        })
    });
    group.bench_function(BenchmarkId::new("mode", "detailed_mimicos"), |b| {
        b.iter(|| run_spec_with_config(SystemConfig::small_test(), &spec, 1))
    });
    group.finish();
}

/// The multi-programmed path: scheduler quanta, context switches and the
/// per-process accounting all sit on the hot path here — a regression in
/// any of them moves this number.
fn multiprogram_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiprogram_sim_speed");
    group.sample_size(10);
    let specs: Vec<_> = catalog::multiprogram_mix()
        .into_iter()
        .map(|s| {
            let budget = s.instructions / 10;
            s.with_instructions(budget)
        })
        .collect();
    group.bench_function(BenchmarkId::new("mix", "gups_llama"), |b| {
        b.iter(|| run_multiprogram_specs(SystemConfig::small_test(), &specs, 7))
    });
    let resident: Vec<_> = catalog::multiprogram_mix_resident()
        .into_iter()
        .map(|s| {
            let budget = s.instructions / 10;
            s.with_instructions(budget)
        })
        .collect();
    group.bench_function(BenchmarkId::new("mix", "tlb_resident"), |b| {
        b.iter(|| run_multiprogram_specs(SystemConfig::small_test(), &resident, 7))
    });
    group.finish();
}

/// Per-instruction granularity: a steady-state `System::step` loop over a
/// populated address space (no faults, no report assembly). This is the
/// code the zero-allocation tentpole pinned; regressions of a few
/// nanoseconds per instruction are visible here long before they move a
/// whole-workload number.
fn step_microbench(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_per_instruction");
    group.sample_size(10);
    for (label, config) in [
        ("detailed", SystemConfig::small_test()),
        (
            "emulation",
            SystemConfig::small_test().with_emulation_baseline(),
        ),
    ] {
        let spec = catalog::gups_randacc()
            .scaled_footprint(0.0625) // 32 MB
            .with_instructions(u64::MAX);
        let mut system = System::new(config);
        let pid = system.pid();
        map_spec_regions(&mut system, pid, &spec, 0);
        system.populate(pid);
        let mut source = spec.build(0x57E9);
        // Warm TLBs/caches out of the timed region.
        for _ in 0..10_000 {
            let instr = source.next_instruction().expect("endless trace");
            system.step(&instr);
        }
        group.bench_function(BenchmarkId::new("steady_state_20k", label), |b| {
            b.iter(|| {
                for _ in 0..20_000 {
                    let instr = source.next_instruction().expect("endless trace");
                    system.step(black_box(&instr));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sim_speed, multiprogram_speed, step_microbench);
criterion_main!(benches);
