//! Criterion bench for the Fig. 11 / Fig. 12 experiments: simulation-speed
//! overhead of the detailed MimicOS integration over the emulation baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use virtuoso::SystemConfig;
use virtuoso_bench::run_spec_with_config;
use vm_workloads::catalog;

fn sim_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_sim_speed");
    group.sample_size(10);
    let spec = catalog::gups_randacc().with_instructions(20_000);
    group.bench_function(BenchmarkId::new("mode", "emulation"), |b| {
        b.iter(|| {
            run_spec_with_config(
                SystemConfig::small_test().with_emulation_baseline(),
                &spec,
                1,
            )
        })
    });
    group.bench_function(BenchmarkId::new("mode", "detailed_mimicos"), |b| {
        b.iter(|| run_spec_with_config(SystemConfig::small_test(), &spec, 1))
    });
    group.finish();
}

criterion_group!(benches, sim_speed);
criterion_main!(benches);
