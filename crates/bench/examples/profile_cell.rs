//! Profiling helper: runs one simspeed cell (GUPS detailed, 64 MiB
//! footprint) for a configurable budget so a sampling profiler can
//! attribute host time without the noise of the full cell matrix.
//!
//! ```console
//! $ cargo build --release -p virtuoso_bench --example profile_cell
//! $ gprofng collect app -o /tmp/cell.er \
//!       ./target/release/examples/profile_cell utopia 2000000 3
//! $ gprofng display text -functions /tmp/cell.er | head -40
//! ```
//!
//! Args: engine (`page-table` | `midgard` | `rmm` | `utopia`,
//! default `utopia`), instruction budget (default 2 M), repetitions
//! (default 1).

use virtuoso_bench::simspeed::{engine_system_config, measure_cell, SpeedOptions};
use vm_workloads::catalog;

fn main() {
    let engine = std::env::args().nth(1).unwrap_or_else(|| "utopia".into());
    let instructions: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let repetitions: u32 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let opts = SpeedOptions {
        instructions,
        repetitions,
        quick: true,
        reference_mips: 0.0,
        engines: Vec::new(),
        core_counts: Vec::new(),
        host_threads: Vec::new(),
    };
    let config = engine_system_config(&engine);
    let spec = catalog::gups_randacc().scaled_footprint(0.125);
    let cell = measure_cell(&config, &spec, "detailed", &engine, &opts);
    println!(
        "{engine}: {:.3} MIPS ({:.4}s)",
        cell.mips, cell.best_elapsed_s
    );
}
