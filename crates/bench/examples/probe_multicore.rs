//! Diagnostic probe for the multi-core simspeed cells: runs the RND
//! (GUPS) multi-core cell at 1/2/4 cores and prints the pressure-related
//! rollup fields, so cliffs like the 4-core `sim_ipc` anomaly can be
//! attributed (swap storms vs accounting bugs) without guessing.

use std::time::Instant;
use virtuoso::{System, SystemConfig};
use virtuoso_bench::runner::map_spec_regions;
use vm_workloads::catalog;

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    for cores in [1usize, 2, 4] {
        let spec = catalog::gups_randacc().scaled_footprint(0.125);
        let per_core = instructions / cores as u64;
        let spec = spec.with_instructions(per_core);
        let config = SystemConfig::small_test().with_cores(cores);
        let mut system = System::new(config);
        let mut pids = vec![system.pid()];
        while pids.len() < cores {
            pids.push(system.spawn_process());
        }
        for &pid in &pids {
            map_spec_regions(&mut system, pid, &spec, (pid.0 as u64) * 1000);
        }
        let mut sources: Vec<_> = (0..cores).map(|i| spec.build(0xBEEF + i as u64)).collect();
        let mut programs: Vec<(mimic_os::ProcessId, &mut dyn sim_core::TraceSource)> = pids
            .iter()
            .copied()
            .zip(
                sources
                    .iter_mut()
                    .map(|s| s as &mut dyn sim_core::TraceSource),
            )
            .collect();
        let start = Instant::now();
        let report = system.run_multiprogram(&mut programs, None);
        let elapsed = start.elapsed().as_secs_f64();
        let r = &report.rollup;
        println!(
            "cores={cores} elapsed={elapsed:.3}s mips={:.3} ipc={:.6} cycles={} instr={} kinstr={} \
             minor={} major={} swap_in={} swapped={} oom={:?} shoot_batches={:?}",
            (per_core * cores as u64) as f64 / elapsed / 1e6,
            r.ipc,
            r.cycles,
            r.instructions,
            r.kernel_instructions,
            r.minor_faults,
            r.major_faults,
            r.swap_in_faults,
            r.swapped_pages,
            r.oom.as_ref().map(|o| (o.kills, o.oom_failures)),
            r.shootdowns.as_ref().map(|s| (s.batches, s.pages)),
        );
        for p in &report.processes {
            println!(
                "  pid={} instr={} cycles={} ipc={:.6} minor={} major={} segv={} oom={} exit={:?}",
                p.pid,
                p.instructions,
                p.cycles,
                p.ipc,
                p.minor_faults,
                p.major_faults,
                p.segfaults,
                p.oom_failures,
                p.exit_status
            );
        }
        let mut per_core_cycles = Vec::new();
        for c in 0..cores {
            per_core_cycles.push(system.core_model_of(c).cycles().raw());
        }
        println!("  per-core cycles: {per_core_cycles:?}");
    }
}
