//! Validation utilities: the calibrated reference machine that stands in
//! for the paper's real Intel Xeon Gold 6226R measurements, and the accuracy
//! metrics used by the validation figures (Figs. 8–10).
//!
//! **Substitution note (see DESIGN.md §1):** the paper validates Virtuoso
//! against hardware performance counters and `ftrace` measurements of a real
//! server. Without that hardware, this reproduction uses a *reference
//! machine model*: the detailed simulator run at its highest-fidelity
//! configuration, with per-workload reference figures calibrated from the
//! values the paper reports (e.g. PTW latencies between 39 and 180+ cycles,
//! 2.2 µs mean minor-fault latency under THP). Accuracy numbers are then
//! computed the same way the paper computes them: `1 - |est - ref| / ref`
//! for scalar metrics and cosine similarity for latency series.

use serde::{Deserialize, Serialize};
use vm_types::stats::{accuracy, cosine_similarity};

/// Reference (ground-truth) figures for one workload, playing the role of
/// the real-system measurement in the validation experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceMachine {
    /// Workload name.
    pub workload: String,
    /// Reference IPC.
    pub ipc: f64,
    /// Reference L2 TLB MPKI.
    pub l2_tlb_mpki: f64,
    /// Reference average page-table-walk latency in cycles.
    pub avg_ptw_latency_cycles: f64,
    /// Reference page-fault latency series (nanoseconds, in fault order).
    pub fault_latency_series_ns: Vec<f64>,
}

impl ReferenceMachine {
    /// Builds a reference record.
    pub fn new(workload: &str, ipc: f64, l2_tlb_mpki: f64, avg_ptw_latency_cycles: f64) -> Self {
        ReferenceMachine {
            workload: workload.to_string(),
            ipc,
            l2_tlb_mpki,
            avg_ptw_latency_cycles,
            fault_latency_series_ns: Vec::new(),
        }
    }

    /// Attaches a fault-latency series for cosine-similarity validation.
    pub fn with_fault_series(mut self, series: Vec<f64>) -> Self {
        self.fault_latency_series_ns = series;
        self
    }

    /// IPC estimation accuracy of `estimated_ipc` against this reference,
    /// in percent (the Fig. 8 metric).
    pub fn ipc_accuracy_percent(&self, estimated_ipc: f64) -> f64 {
        accuracy(estimated_ipc, self.ipc) * 100.0
    }

    /// MPKI estimation accuracy in percent (Fig. 10 top).
    pub fn mpki_accuracy_percent(&self, estimated_mpki: f64) -> f64 {
        accuracy(estimated_mpki, self.l2_tlb_mpki) * 100.0
    }

    /// PTW-latency estimation accuracy in percent (Fig. 10 bottom).
    pub fn ptw_accuracy_percent(&self, estimated_ptw_cycles: f64) -> f64 {
        accuracy(estimated_ptw_cycles, self.avg_ptw_latency_cycles) * 100.0
    }

    /// Cosine similarity between an estimated fault-latency series and the
    /// reference series (the Fig. 9 metric).
    pub fn fault_series_similarity(&self, estimated_series_ns: &[f64]) -> f64 {
        cosine_similarity(estimated_series_ns, &self.fault_latency_series_ns)
    }
}

/// Accuracy of an estimate against a reference, in percent, clamped to
/// `[0, 100]` — the formulation the paper's validation figures use.
pub fn accuracy_percent(estimate: f64, reference: f64) -> f64 {
    accuracy(estimate, reference) * 100.0
}

/// Cosine similarity between two latency series (re-exported convenience
/// wrapper around [`vm_types::stats::cosine_similarity`]).
pub fn cosine_similarity_series(a: &[f64], b: &[f64]) -> f64 {
    cosine_similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_percent_matches_paper_formulation() {
        assert!((accuracy_percent(0.66, 1.0) - 66.0).abs() < 1e-9);
        assert_eq!(accuracy_percent(3.0, 1.0), 0.0);
        assert_eq!(accuracy_percent(1.0, 1.0), 100.0);
    }

    #[test]
    fn reference_machine_scores_estimates() {
        let reference = ReferenceMachine::new("BC", 0.30, 40.0, 120.0)
            .with_fault_series(vec![1000.0, 2000.0, 50_000.0]);
        assert!(reference.ipc_accuracy_percent(0.24) > 75.0);
        assert!(reference.mpki_accuracy_percent(48.0) >= 80.0);
        assert!(reference.ptw_accuracy_percent(102.0) >= 85.0);
        let similar = reference.fault_series_similarity(&[1100.0, 1900.0, 52_000.0]);
        assert!(similar > 0.99);
        let dissimilar = reference.fault_series_similarity(&[50_000.0, 50.0, 10.0]);
        assert!(dissimilar < similar);
    }

    #[test]
    fn perfect_estimate_is_100_percent_accurate() {
        let r = ReferenceMachine::new("BFS", 0.5, 20.0, 90.0);
        assert_eq!(r.ipc_accuracy_percent(0.5), 100.0);
    }
}
