//! The assembled simulated system: core + caches + DRAM + MMU + MimicOS,
//! wired together through the functional and instruction-stream channels.

use crate::channel::{FunctionalChannel, InstructionStreamChannel, KernelRequest, KernelResponse};
use crate::config::{SimulationMode, SystemConfig};
use crate::report::SimulationReport;
use cache_sim::CacheHierarchy;
use dram_sim::DramModel;
use mimic_os::{KernelInstructionStream, KernelOp, Mapping, MimicOs, ProcessId};
use mmu_sim::Mmu;
use sim_core::{CoreModel, Instruction, TraceSource};
use vm_types::{AccessType, Cycles, PhysAddr, Requestor, VirtAddr, VmError, VmResult};

/// The full simulated machine.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    core: CoreModel,
    caches: CacheHierarchy,
    dram: DramModel,
    mmu: Mmu,
    os: MimicOs,
    pid: ProcessId,
    functional: FunctionalChannel,
    streams: InstructionStreamChannel,
    workload_name: String,
    /// Cycles spent on address translation beyond the first-level TLB.
    translation_cycles: u64,
    /// Accumulated page-walk latency (cycles) and walk count.
    ptw_latency_cycles: u64,
    ptw_count: u64,
    /// Segmentation faults observed (accesses outside any VMA are skipped).
    segfaults: u64,
    instructions_since_housekeeping: u64,
}

impl System {
    /// Builds the system described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the MimicOS configuration is invalid (see
    /// [`mimic_os::OsConfig::validate`]).
    pub fn new(config: SystemConfig) -> Self {
        let mut os = MimicOs::new(config.os.clone());
        let pid = os.spawn_process();
        System {
            core: CoreModel::new(config.core),
            caches: CacheHierarchy::new(config.caches.clone()),
            dram: DramModel::new(config.dram.clone()),
            mmu: Mmu::new(config.mmu.clone()),
            os,
            pid,
            functional: FunctionalChannel::new(),
            streams: InstructionStreamChannel::new(),
            workload_name: String::new(),
            translation_cycles: 0,
            ptw_latency_cycles: 0,
            ptw_count: 0,
            segfaults: 0,
            instructions_since_housekeeping: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The MimicOS kernel (for inspecting allocator / fault statistics).
    pub fn os(&self) -> &MimicOs {
        &self.os
    }

    /// The MMU (for TLB / page-table statistics).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// The DRAM model (for row-buffer statistics).
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// The core model.
    pub fn core(&self) -> &CoreModel {
        &self.core
    }

    /// The process the workload runs in.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Number of accesses that faulted outside any VMA and were skipped.
    pub fn segfaults(&self) -> u64 {
        self.segfaults
    }

    /// Maps an anonymous region for the workload process.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::InvalidVma`] for overlapping or empty regions.
    pub fn mmap_anonymous(&mut self, start: VirtAddr, len: u64) -> VmResult<()> {
        self.os.mmap_anonymous(self.pid, start, len, false)
    }

    /// Maps a hugetlbfs-backed region for the workload process.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::InvalidVma`] for overlapping or empty regions.
    pub fn mmap_hugetlb(&mut self, start: VirtAddr, len: u64) -> VmResult<()> {
        self.os.mmap_anonymous(self.pid, start, len, true)
    }

    /// Maps a file-backed region for the workload process.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::InvalidVma`] for overlapping or empty regions.
    pub fn mmap_file(&mut self, start: VirtAddr, len: u64, file_id: u64) -> VmResult<()> {
        self.os.mmap_file(self.pid, start, len, file_id)
    }

    /// Runs a workload until its trace ends or `max_instructions` retire.
    /// Returns the simulation report.
    pub fn run<T: TraceSource + ?Sized>(
        &mut self,
        frontend: &mut T,
        max_instructions: Option<u64>,
    ) -> SimulationReport {
        self.workload_name = frontend.name().to_string();
        let limit = max_instructions.unwrap_or(u64::MAX);
        let mut retired = 0u64;
        while retired < limit {
            let Some(instr) = frontend.next_instruction() else {
                break;
            };
            self.step(&instr);
            retired += 1;
        }
        self.report()
    }

    /// Executes one application instruction.
    pub fn step(&mut self, instr: &Instruction) {
        match instr.memory {
            None => self.core.retire_compute(1),
            Some((vaddr, kind)) => self.memory_access(instr.pc, vaddr, kind),
        }
        self.instructions_since_housekeeping += 1;
        if self.config.housekeeping_interval > 0
            && self.instructions_since_housekeeping >= self.config.housekeeping_interval
        {
            self.instructions_since_housekeeping = 0;
            self.housekeeping();
        }
    }

    /// Periodic background OS work: zeroed-pool refill and khugepaged, with
    /// the khugepaged stream injected in detailed mode.
    fn housekeeping(&mut self) {
        self.functional
            .post_request(KernelRequest::BackgroundTick { pid: self.pid });
        let _ = self.functional.take_request();
        self.os.background_tick();
        let stream = self.os.khugepaged_tick(self.pid);
        self.functional.post_response(KernelResponse::TickDone);
        let _ = self.functional.take_response();
        if self.config.mode.is_detailed() && !stream.is_empty() {
            self.streams.send(stream);
            self.drain_kernel_streams();
        }
    }

    /// Performs one data memory access: translation, possible fault
    /// handling, then the data access itself.
    fn memory_access(&mut self, pc: VirtAddr, vaddr: VirtAddr, kind: AccessType) {
        let mut total_latency = Cycles::ZERO;
        let mut paddr: Option<PhysAddr> = None;

        // Translation (with at most one fault retry).
        for attempt in 0..2 {
            let result = self.mmu.translate(vaddr);
            total_latency += result.fixed_latency;
            // Anything beyond the 1-cycle L1 TLB probe counts as address
            // translation overhead.
            self.translation_cycles += result.fixed_latency.raw().saturating_sub(1);

            if let Some(walk) = &result.walk {
                let walk_latency = self.charge_page_walk(walk.parallel, &walk.accesses);
                total_latency += walk_latency;
                self.translation_cycles += walk_latency.raw();
                self.ptw_latency_cycles += walk_latency.raw();
                self.ptw_count += 1;
            }

            match result.paddr {
                Some(pa) => {
                    paddr = Some(pa);
                    break;
                }
                None => {
                    if attempt == 1 || !self.handle_fault(vaddr, kind.is_write()) {
                        // Unresolvable fault: skip the access.
                        self.core.retire_compute(1);
                        return;
                    }
                }
            }
        }

        let Some(paddr) = paddr else {
            self.core.retire_compute(1);
            return;
        };

        // The data access through caches and DRAM.
        let access = self
            .caches
            .access_with_pc(pc, paddr, kind, Requestor::Application);
        total_latency += access.latency;
        for (i, line) in access.dram_fetches.iter().enumerate() {
            let requestor = if i == 0 {
                Requestor::Application
            } else {
                Requestor::Prefetcher
            };
            let dram_latency = self.dram.access(&vm_types::MemoryAccess::physical(
                *line,
                AccessType::Read,
                requestor,
            ));
            if i == 0 {
                total_latency += dram_latency;
            }
        }
        for wb in &access.writebacks {
            self.dram.access(&vm_types::MemoryAccess::physical(
                *wb,
                AccessType::Write,
                Requestor::Application,
            ));
        }
        self.core.retire_memory(total_latency);
    }

    /// Replays a page-table walk through the memory hierarchy and returns
    /// its latency. Parallel (hash-based) walks cost the slowest access;
    /// serial (radix) walks cost the sum.
    fn charge_page_walk(&mut self, parallel: bool, accesses: &[PhysAddr]) -> Cycles {
        match self.config.mode {
            SimulationMode::Emulation {
                fixed_ptw_latency, ..
            } => {
                if accesses.is_empty() {
                    Cycles::ZERO
                } else {
                    fixed_ptw_latency
                }
            }
            SimulationMode::Detailed => {
                let mut total = Cycles::ZERO;
                let mut slowest = Cycles::ZERO;
                for pa in accesses {
                    let mut latency = Cycles::ZERO;
                    let access = self.caches.access_page_table(*pa);
                    latency += access.latency;
                    for line in &access.dram_fetches {
                        latency += self.dram.access(&vm_types::MemoryAccess::physical(
                            *line,
                            AccessType::Read,
                            Requestor::PageTableWalker,
                        ));
                    }
                    for wb in &access.writebacks {
                        self.dram.access(&vm_types::MemoryAccess::physical(
                            *wb,
                            AccessType::Write,
                            Requestor::PageTableWalker,
                        ));
                    }
                    total += latency;
                    slowest = slowest.max(latency);
                }
                if parallel {
                    slowest
                } else {
                    total
                }
            }
        }
    }

    /// Sends a page-fault request to MimicOS over the functional channel,
    /// injects the returned kernel stream, installs the new mappings and
    /// charges the fault latency. Returns `false` when the fault could not
    /// be resolved (segmentation fault).
    fn handle_fault(&mut self, vaddr: VirtAddr, is_write: bool) -> bool {
        self.functional.post_request(KernelRequest::PageFault {
            pid: self.pid,
            vaddr,
            is_write,
        });
        let request = self.functional.take_request().expect("request just posted");
        let KernelRequest::PageFault {
            pid,
            vaddr,
            is_write,
        } = request
        else {
            unreachable!("only page-fault requests are posted here");
        };

        match self.os.handle_page_fault(pid, vaddr, is_write) {
            Ok(outcome) => {
                self.functional.post_response(KernelResponse::FaultHandled {
                    mapping: outcome.mapping,
                    additional: outcome.additional_mappings.clone(),
                    device_latency_ns: outcome.device_latency_ns,
                });
                let response = self
                    .functional
                    .take_response()
                    .expect("response just posted");
                let KernelResponse::FaultHandled {
                    mapping,
                    additional,
                    device_latency_ns,
                } = response
                else {
                    unreachable!("fault requests receive fault responses");
                };

                match self.config.mode {
                    SimulationMode::Detailed => {
                        self.streams.send(outcome.stream);
                        self.drain_kernel_streams();
                        self.install_mapping_detailed(&mapping);
                        for extra in &additional {
                            self.install_mapping_detailed(extra);
                        }
                        let device_cycles =
                            (device_latency_ns * self.config.core.frequency.ghz()).round() as u64;
                        self.core.stall(Cycles::new(device_cycles));
                    }
                    SimulationMode::Emulation {
                        fixed_fault_latency,
                        ..
                    } => {
                        self.mmu.install_mapping(&mapping);
                        for extra in &additional {
                            self.mmu.install_mapping(extra);
                        }
                        self.core.stall(fixed_fault_latency);
                    }
                }
                true
            }
            Err(VmError::SegmentationFault { .. }) => {
                self.functional.post_response(KernelResponse::FaultFailed {
                    error: VmError::SegmentationFault { vaddr },
                });
                let _ = self.functional.take_response();
                self.segfaults += 1;
                false
            }
            Err(error) => {
                self.functional
                    .post_response(KernelResponse::FaultFailed { error });
                let _ = self.functional.take_response();
                self.segfaults += 1;
                false
            }
        }
    }

    /// Installs a mapping in detailed mode, charging the page-table update
    /// accesses as kernel memory traffic.
    fn install_mapping_detailed(&mut self, mapping: &Mapping) {
        let accesses = self.mmu.install_mapping(mapping);
        self.core.set_kernel_mode(true);
        for pa in accesses {
            let lat = self.charge_kernel_access(pa, AccessType::Write);
            self.core.retire_memory(lat);
        }
        self.core.set_kernel_mode(false);
    }

    /// Injects every pending kernel instruction stream into the core model,
    /// sending its memory references through the cache hierarchy and DRAM.
    fn drain_kernel_streams(&mut self) {
        while let Some(stream) = self.streams.receive() {
            self.inject_stream(&stream);
        }
    }

    fn inject_stream(&mut self, stream: &KernelInstructionStream) {
        self.core.set_kernel_mode(true);
        for op in stream.ops() {
            match *op {
                KernelOp::Compute { count } => self.core.retire_compute(count as u64),
                KernelOp::Memory { paddr, kind } => {
                    let latency = self.charge_kernel_access(paddr, kind);
                    self.core.retire_memory(latency);
                }
            }
        }
        self.core.set_kernel_mode(false);
    }

    fn charge_kernel_access(&mut self, paddr: PhysAddr, kind: AccessType) -> Cycles {
        let access = self.caches.access(paddr, kind, Requestor::Kernel);
        let mut latency = access.latency;
        for line in &access.dram_fetches {
            latency += self.dram.access(&vm_types::MemoryAccess::physical(
                *line,
                kind,
                Requestor::Kernel,
            ));
        }
        for wb in &access.writebacks {
            self.dram.access(&vm_types::MemoryAccess::physical(
                *wb,
                AccessType::Write,
                Requestor::Kernel,
            ));
        }
        latency
    }

    /// Assembles the simulation report for everything executed so far.
    pub fn report(&self) -> SimulationReport {
        let core_stats = self.core.stats();
        let os_stats = self.os.stats();
        let dram_stats = self.dram.stats();
        let app_instructions = core_stats.app_instructions.get();
        let freq = self.config.core.frequency;
        let total_time_ns = self.core.cycles().to_nanos(freq).as_nanos();
        let translation_ns = Cycles::new(self.translation_cycles)
            .to_nanos(freq)
            .as_nanos();

        SimulationReport {
            workload: self.workload_name.clone(),
            instructions: app_instructions,
            kernel_instructions: core_stats.kernel_instructions.get(),
            cycles: self.core.cycles().raw(),
            ipc: self.core.ipc(),
            app_ipc: self.core.app_ipc(),
            l2_tlb_mpki: self.mmu.stats().l2_mpki(app_instructions),
            page_walks: self.ptw_count,
            avg_ptw_latency_cycles: if self.ptw_count == 0 {
                0.0
            } else {
                self.ptw_latency_cycles as f64 / self.ptw_count as f64
            },
            total_ptw_latency_cycles: self.ptw_latency_cycles as f64,
            minor_faults: os_stats.minor_faults.get() + os_stats.hugetlb_faults.get(),
            major_faults: os_stats.major_faults.get(),
            swap_in_faults: os_stats.swap_in_faults.get(),
            fault_latency_ns: os_stats.fault_latency_ns.clone(),
            total_fault_ns: os_stats.total_fault_ns,
            total_translation_ns: translation_ns,
            total_time_ns,
            dram_row_conflicts: dram_stats.conflicts(),
            dram_translation_conflicts: dram_stats.translation_metadata_conflicts(),
            swapped_pages: os_stats.reclaimed_pages.get(),
            swap_io_ns: self.os.swap().stats().total_io_ns,
            huge_mappings: os_stats.huge_mappings.get(),
            base_mappings: os_stats.base_mappings.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmu_sim::PageTableKind;
    use sim_core::SliceFrontend;

    fn linear_trace(base: u64, count: u64, stride: u64) -> Vec<Instruction> {
        (0..count)
            .map(|i| {
                Instruction::load(
                    VirtAddr::new(0x400 + (i % 64) * 4),
                    VirtAddr::new(base + i * stride),
                )
            })
            .collect()
    }

    fn small_system() -> System {
        let mut system = System::new(SystemConfig::small_test());
        system
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
            .unwrap();
        system
    }

    #[test]
    fn runs_a_simple_trace_to_completion() {
        let mut system = small_system();
        let trace = linear_trace(0x1000_0000, 5000, 64);
        let report = system.run(&mut SliceFrontend::new("linear", trace), None);
        assert_eq!(report.instructions, 5000);
        assert!(report.cycles > 0);
        assert!(report.ipc > 0.0);
        assert!(report.minor_faults > 0, "first-touch faults expected");
        assert!(
            report.kernel_instructions > 0,
            "kernel streams must be injected"
        );
        assert_eq!(system.segfaults(), 0);
    }

    #[test]
    fn max_instructions_limit_is_respected() {
        let mut system = small_system();
        let trace = linear_trace(0x1000_0000, 10_000, 64);
        let report = system.run(&mut SliceFrontend::new("limited", trace), Some(1000));
        assert_eq!(report.instructions, 1000);
    }

    #[test]
    fn detailed_mode_injects_kernel_work_emulation_does_not() {
        let trace = linear_trace(0x1000_0000, 3000, 4096);

        let mut detailed = System::new(SystemConfig::small_test());
        detailed
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
            .unwrap();
        let det_report = detailed.run(&mut SliceFrontend::new("d", trace.clone()), None);

        let mut emulation = System::new(SystemConfig::small_test().with_emulation_baseline());
        emulation
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
            .unwrap();
        let emu_report = emulation.run(&mut SliceFrontend::new("e", trace), None);

        assert!(det_report.kernel_instructions > 0);
        assert_eq!(emu_report.kernel_instructions, 0);
        // Both modes resolve the same faults functionally.
        assert_eq!(det_report.minor_faults, emu_report.minor_faults);
        // The detailed and emulation modes disagree on timing — that
        // disagreement is exactly the accuracy gap of Fig. 8.
        assert_ne!(det_report.cycles, emu_report.cycles);
    }

    #[test]
    fn accesses_outside_vmas_are_counted_as_segfaults() {
        let mut system = small_system();
        let trace = vec![Instruction::load(
            VirtAddr::new(0x400),
            VirtAddr::new(0xdead_0000_0000),
        )];
        let report = system.run(&mut SliceFrontend::new("segv", trace), None);
        assert_eq!(system.segfaults(), 1);
        assert_eq!(report.instructions, 1);
    }

    #[test]
    fn page_walks_generate_translation_metadata_dram_traffic() {
        let mut system = small_system();
        // Strided accesses across many pages defeat the small test TLB.
        let trace = linear_trace(0x1000_0000, 4000, 2 * 1024 * 1024 / 4);
        let report = system.run(&mut SliceFrontend::new("stride", trace), None);
        assert!(report.page_walks > 0);
        assert!(report.avg_ptw_latency_cycles > 0.0);
        let dram = system.dram().stats();
        assert!(dram.accesses_by(Requestor::PageTableWalker) > 0);
    }

    #[test]
    fn different_page_tables_yield_different_walk_latencies() {
        let trace = linear_trace(0x1000_0000, 6000, 4096);
        let mut results = Vec::new();
        for kind in [PageTableKind::Radix, PageTableKind::HashedOpenAddressing] {
            let mut system = System::new(SystemConfig::small_test().with_page_table(kind));
            system
                .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
                .unwrap();
            let report = system.run(&mut SliceFrontend::new("pt", trace.clone()), None);
            results.push(report.avg_ptw_latency_cycles);
        }
        // The hashed page table's walks should not be slower than radix's on
        // average for this TLB-unfriendly pattern.
        assert!(results[1] <= results[0] * 1.5);
    }

    #[test]
    fn report_time_fractions_are_consistent() {
        let mut system = small_system();
        let trace = linear_trace(0x1000_0000, 3000, 64);
        let report = system.run(&mut SliceFrontend::new("frac", trace), None);
        assert!(report.translation_time_fraction() >= 0.0);
        assert!(report.translation_time_fraction() <= 1.0);
        assert!(report.total_time_ns > 0.0);
    }

    #[test]
    fn channels_observe_fault_traffic() {
        let mut system = small_system();
        let trace = linear_trace(0x1000_0000, 2000, 4096);
        system.run(&mut SliceFrontend::new("chan", trace), None);
        assert!(system.functional.requests_sent.get() > 0);
        assert_eq!(
            system.functional.requests_sent.get(),
            system.functional.responses_sent.get()
        );
        assert!(system.streams.streams_sent.get() > 0);
        assert_eq!(system.streams.pending(), 0, "all streams must be consumed");
    }
}
