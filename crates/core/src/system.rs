//! The assembled simulated system: core + caches + DRAM + MMU + MimicOS,
//! wired together through the functional and instruction-stream channels.
//!
//! The system runs one process ([`System::run`]) or several
//! ([`System::run_multiprogram`]): the MimicOS scheduler time-slices the
//! core between the processes' trace sources, every address-space operation
//! is tagged with the process's ASID, and context switches apply the
//! configured TLB policy (ASID-tagged survival vs full flush).

use crate::channel::{
    FunctionalChannel, InstructionStreamChannel, InterCoreChannel, KernelRequest, KernelResponse,
};
use crate::config::{SimulationMode, SystemConfig};
use crate::report::{
    CoreIpiStats, MultiProgramReport, OomStats, ProcessExitStatus, ProcessReport, ShootdownStats,
    SimulationReport,
};
use cache_sim::CacheHierarchy;
use dram_sim::DramModel;
use mimic_os::sched::ContextSwitch;
use mimic_os::{InvalidationBatch, KernelInstructionStream, KernelOp, Mapping, MimicOs, ProcessId};
use mmu_sim::{InstallInfo, Mmu, TranslationEngine, WalkOutcome};
use sim_core::{CoreModel, Instruction, TraceSource};
use std::collections::{BTreeMap, VecDeque};
use vm_types::{
    AccessType, Asid, Cycles, PageSize, PhysAddr, Requestor, VirtAddr, VmError, VmResult,
};

/// Per-process performance accounting kept by the framework (the OS keeps
/// the functional per-process state; this is the architectural side).
#[derive(Debug, Clone, Copy, Default)]
struct ProcPerf {
    instructions: u64,
    cycles: u64,
    translation_cycles: u64,
    ptw_latency_cycles: u64,
    ptw_count: u64,
    segfaults: u64,
    oom_failures: u64,
}

/// The architectural state owned by one simulated core: its timing model
/// and its private translation frontend (TLBs, PWCs, engine state). The
/// caches, DRAM and MimicOS stay machine-wide.
#[derive(Debug)]
struct CoreState {
    core: CoreModel,
    /// The TLB hierarchy, page-walk caches and per-address-space page
    /// tables — the translation infrastructure every engine composes with.
    mmu: Mmu,
    /// The design-specific translation state (conventional page table,
    /// Midgard, RMM or Utopia), selected by [`SystemConfig::engine`]. The
    /// engine borrows this core's `mmu` on every call.
    engine: TranslationEngine,
    /// The process currently holding this core.
    current: ProcessId,
    /// Cached index of `current` into `per_proc`, refreshed on context
    /// switch so the steady-state loop does a single bounds-checked index.
    current_slot: usize,
    /// Cycles spent on address translation beyond the first-level TLB.
    translation_cycles: u64,
    /// Accumulated page-walk latency (cycles) and walk count.
    ptw_latency_cycles: u64,
    ptw_count: u64,
    instructions_since_housekeeping: u64,
}

/// The core-local outcome of one memory access's translation: everything
/// [`CoreState::local_translate`] computed without touching shared machine
/// state. The walk accesses are *recorded*, not charged — replaying them
/// through the shared caches/DRAM happens serially (inline on the step
/// path, at the barrier for parallel epochs).
#[derive(Debug)]
struct LocalTranslation {
    paddr: Option<PhysAddr>,
    fixed_latency: Cycles,
    /// Cycles beyond the 1-cycle L1 TLB probe (address translation
    /// overhead), exactly as the inline path accumulates them.
    penalty_cycles: u64,
    walk: Option<WalkOutcome>,
}

/// One memory access executed core-locally during a parallel epoch slice,
/// with its shared-state half (walk charging, cache/DRAM traffic, retire)
/// deferred to the serial barrier replay.
#[derive(Debug)]
struct DeferredAccess {
    pc: VirtAddr,
    vaddr: VirtAddr,
    kind: AccessType,
    translation: LocalTranslation,
}

/// What one core's local phase of an epoch produced.
#[derive(Debug, Default)]
struct SliceLog {
    /// Instructions fully executed locally (excludes the faulting one).
    ran: u64,
    /// Successfully translated memory accesses, in program order.
    accesses: Vec<DeferredAccess>,
    /// Set when the slice stopped at a translation fault: the faulting
    /// access's core-local half. The barrier resumes it mid-instruction
    /// (the attempt-0 TLB/engine mutations already happened locally).
    fault: Option<DeferredAccess>,
}

/// Per-core plan and result of one parallel epoch, reused across epochs so
/// the steady-state loop allocates nothing.
#[derive(Debug)]
struct EpochSlice {
    /// Whether this core runs a slice this epoch.
    active: bool,
    pid: ProcessId,
    /// Index into `programs` / the leftover queues.
    prog: usize,
    asid: Asid,
    /// The core's cycle count when the slice was planned (after its
    /// dispatch context switch), for per-process cycle attribution.
    cycles_before: u64,
    /// The trace source ran dry while filling the slice.
    exhausted: bool,
    instrs: Vec<Instruction>,
    log: SliceLog,
}

impl Default for EpochSlice {
    fn default() -> Self {
        EpochSlice {
            active: false,
            pid: ProcessId(0),
            prog: usize::MAX,
            asid: System::asid_of(ProcessId(0)),
            cycles_before: 0,
            exhausted: false,
            instrs: Vec::new(),
            log: SliceLog::default(),
        }
    }
}

/// A program's trace source with the unconsumed tail of a fault-truncated
/// epoch slice queued back in front: instructions already pulled from the
/// source replay before fresh ones, so slicing never reorders or drops
/// trace instructions.
struct ReplayFront<'a> {
    pending: &'a mut VecDeque<Instruction>,
    inner: &'a mut dyn TraceSource,
}

impl TraceSource for ReplayFront<'_> {
    fn next_instruction(&mut self) -> Option<Instruction> {
        self.pending
            .pop_front()
            .or_else(|| self.inner.next_instruction())
    }
}

impl CoreState {
    /// The core-local half of one memory access: the L0 fast path, then the
    /// engine translation. Touches only this core's TLBs/PWCs/engine state,
    /// so parallel epoch workers can run it without synchronization. The
    /// accumulation mirrors [`System::memory_access`] byte for byte.
    fn local_translate(&mut self, asid: Asid, vaddr: VirtAddr) -> LocalTranslation {
        if self.engine.uses_l0() {
            if let Some((pa, latency)) = self.mmu.l0_translate(asid, vaddr) {
                return LocalTranslation {
                    paddr: Some(pa),
                    fixed_latency: latency,
                    penalty_cycles: latency.raw().saturating_sub(1),
                    walk: None,
                };
            }
        }
        let result = self.engine.translate(&mut self.mmu, asid, vaddr);
        LocalTranslation {
            paddr: result.paddr,
            fixed_latency: result.fixed_latency,
            penalty_cycles: result.fixed_latency.raw().saturating_sub(1),
            walk: result.walk,
        }
    }

    /// The parallel phase of one epoch slice: executes `instrs` against
    /// this core's private state only, logging every memory access for the
    /// serial barrier replay. Stops at the first translation fault — the
    /// fault needs the shared kernel, so the barrier resumes it exactly
    /// where this phase left off. Compute instructions retire here (the
    /// core model's accumulators are plain integer adds, so splitting them
    /// from the deferred memory retires cannot change the final counts).
    fn run_slice_local(&mut self, asid: Asid, instrs: &[Instruction], log: &mut SliceLog) {
        for instr in instrs {
            match instr.memory {
                None => self.core.retire_compute(1),
                Some((vaddr, kind)) => {
                    let translation = self.local_translate(asid, vaddr);
                    let entry = DeferredAccess {
                        pc: instr.pc,
                        vaddr,
                        kind,
                        translation,
                    };
                    if entry.translation.paddr.is_none() {
                        log.fault = Some(entry);
                        return;
                    }
                    log.accesses.push(entry);
                }
            }
            log.ran += 1;
        }
    }
}

/// Projects core `$idx`'s state out of `$sys` as a shared borrow. A macro
/// rather than a method so the borrow stays field-granular: `per_proc`,
/// `shootdowns`, `os` and the rest of `System` remain independently
/// borrowable alongside the returned reference.
macro_rules! core_ref {
    ($sys:expr, $idx:expr) => {{
        let idx: usize = $idx;
        if idx == 0 {
            &$sys.core0
        } else {
            &$sys.extra_cores[idx - 1]
        }
    }};
}

/// [`core_ref!`], mutably.
macro_rules! core_mut {
    ($sys:expr, $idx:expr) => {{
        let idx: usize = $idx;
        if idx == 0 {
            &mut $sys.core0
        } else {
            &mut $sys.extra_cores[idx - 1]
        }
    }};
}

/// The active core, shared. `$pin` is the `PIN0` const of the enclosing
/// stepping function: when `true` (the single-core run loops) the
/// projection constant-folds to the inline `core0` field, so the
/// instruction loop pays no `active` load or branch — the exact code the
/// machine ran before it grew multiple cores.
macro_rules! active_ref {
    ($sys:expr, $pin:expr) => {{
        if $pin {
            &$sys.core0
        } else {
            core_ref!($sys, $sys.active)
        }
    }};
}

/// [`active_ref!`], mutably.
macro_rules! active_mut {
    ($sys:expr, $pin:expr) => {{
        if $pin {
            &mut $sys.core0
        } else {
            core_mut!($sys, $sys.active)
        }
    }};
}

/// The full simulated machine.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    caches: CacheHierarchy,
    dram: DramModel,
    /// Core 0's translation frontend + timing model, stored inline: the
    /// single-core instruction loop reaches all its state at fixed
    /// offsets from `self`, exactly as it did before the machine grew
    /// multiple cores (measured: routing core 0 through a `Vec` cost
    /// 5–9% sustained MIPS across every single-core workload).
    core0: CoreState,
    /// Cores 1..N of a multi-core machine (empty at `num_cores = 1`).
    extra_cores: Vec<CoreState>,
    /// The core the convenience stepping API drives; the sharded
    /// multi-core loop rotates it round-robin.
    active: usize,
    os: MimicOs,
    /// The first process, used by the single-process convenience API.
    primary: ProcessId,
    /// Per-process performance accounting, indexed densely by raw pid
    /// (pids are allocated sequentially from 0). Replaces the seed's
    /// `BTreeMap`, whose two tree walks per retired instruction were one
    /// of the instruction loop's dominant constant factors.
    per_proc: Vec<ProcPerf>,
    /// Context switches performed by the framework.
    context_switches: u64,
    /// TLB entries dropped by context-switch flushes.
    switch_flushed_entries: u64,
    /// Shootdown work applied on behalf of kernel invalidation batches.
    shootdowns: ShootdownStats,
    functional: FunctionalChannel,
    streams: InstructionStreamChannel,
    /// Shootdown IPIs and acks between the simulated cores.
    ipi: InterCoreChannel,
    workload_name: String,
    /// Segmentation faults observed (accesses outside any VMA are skipped).
    segfaults: u64,
    /// Faults that stayed [`VmError::OutOfMemory`] even after reclaim and
    /// the OOM killer ran out of victims (the access is skipped, like a
    /// segfault, but the cause is machine pressure, not a bad pointer).
    oom_failures: u64,
    /// Instructions retired since the coherence fence last ran (only
    /// advanced when [`SystemConfig::invariant_check_interval`] arms it).
    instructions_since_invariant_check: u64,
    /// Total [`System::handle_fault`] invocations. The single-threaded
    /// epoch path watches this counter to truncate a slice after its first
    /// fault at exactly the instruction where a parallel worker would have
    /// stopped, keeping every host-thread count on one schedule.
    fault_events: u64,
    /// `true` while the barrier replay of a parallel epoch is resolving
    /// faults; guards debug assertions that no cross-core disturbance
    /// (reclaim shootdowns, OOM kills) slips into an epoch the headroom
    /// check declared safe.
    epoch_replay: bool,
    /// Planned epochs the sharded loop executed (as opposed to legacy
    /// one-`CORE_TICK` rounds). Not part of any report — exposed through
    /// [`System::epochs_run`] so tests can assert the epoch path actually
    /// engaged rather than silently falling back.
    epochs_run: u64,
}

impl System {
    /// Builds the system described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the MimicOS configuration is invalid (see
    /// [`mimic_os::OsConfig::validate`]).
    pub fn new(config: SystemConfig) -> Self {
        let num_cores = config.os.num_cores.max(1);
        let mut os = MimicOs::new(config.os.clone());
        let pid = os.spawn_process();
        let make_core = |c: usize| CoreState {
            core: CoreModel::new(config.core),
            mmu: Mmu::new(config.mmu.clone()),
            engine: TranslationEngine::new(config.engine),
            // With `pid % num_cores` pinning, the first process
            // dispatched on core `c` is pid `c`, so seeding `current`
            // this way avoids a spurious boot-time context switch —
            // exactly the legacy `current = primary` semantics at
            // one core.
            current: ProcessId(c),
            current_slot: c,
            translation_cycles: 0,
            ptw_latency_cycles: 0,
            ptw_count: 0,
            instructions_since_housekeeping: 0,
        };
        System {
            caches: CacheHierarchy::new(config.caches.clone()),
            dram: DramModel::new(config.dram.clone()),
            core0: make_core(0),
            extra_cores: (1..num_cores).map(make_core).collect(),
            active: 0,
            os,
            primary: pid,
            per_proc: vec![ProcPerf::default(); pid.0 + 1],
            context_switches: 0,
            switch_flushed_entries: 0,
            shootdowns: ShootdownStats::default(),
            functional: FunctionalChannel::new(),
            streams: InstructionStreamChannel::new(),
            ipi: InterCoreChannel::new(num_cores),
            workload_name: String::new(),
            segfaults: 0,
            oom_failures: 0,
            instructions_since_invariant_check: 0,
            fault_events: 0,
            epoch_replay: false,
            epochs_run: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The MimicOS kernel (for inspecting allocator / fault statistics).
    pub fn os(&self) -> &MimicOs {
        &self.os
    }

    /// The TLB-and-page-table side of core 0 (for TLB / page-walk
    /// statistics). Under the Midgard engine this is the Midgard-space
    /// backend the engine repurposes; see [`mmu_sim::MidgardEngine`].
    pub fn mmu(&self) -> &Mmu {
        &self.core0.mmu
    }

    /// The translation engine of core 0 (for engine-specific statistics).
    pub fn engine(&self) -> &TranslationEngine {
        &self.core0.engine
    }

    /// Core `core`'s private TLB-and-page-table state.
    pub fn mmu_of(&self, core: usize) -> &Mmu {
        &core_ref!(self, core).mmu
    }

    /// Core `core`'s translation engine.
    pub fn engine_of(&self, core: usize) -> &TranslationEngine {
        &core_ref!(self, core).engine
    }

    /// The DRAM model (for row-buffer statistics).
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// The core model of core 0.
    pub fn core(&self) -> &CoreModel {
        &self.core0.core
    }

    /// The core model of core `core`.
    pub fn core_model_of(&self, core: usize) -> &CoreModel {
        &core_ref!(self, core).core
    }

    /// Number of simulated cores.
    pub fn num_cores(&self) -> usize {
        1 + self.extra_cores.len()
    }

    /// Iterates the per-core state, core 0 first.
    fn each_core(&self) -> impl Iterator<Item = &CoreState> {
        std::iter::once(&self.core0).chain(self.extra_cores.iter())
    }

    /// The core a process is pinned to (`pid % num_cores`).
    pub fn core_of(&self, pid: ProcessId) -> usize {
        pid.0 % self.num_cores()
    }

    /// The first process — the one the single-process API runs.
    pub fn pid(&self) -> ProcessId {
        self.primary
    }

    /// The process currently holding core 0.
    pub fn current_pid(&self) -> ProcessId {
        self.core0.current
    }

    /// The ASID of a process.
    pub fn asid_of(pid: ProcessId) -> Asid {
        Asid::new(pid.0 as u16)
    }

    /// Context switches performed so far.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// TLB entries dropped by context-switch flushes so far (non-zero only
    /// without ASID tags).
    pub fn switch_flushed_entries(&self) -> u64 {
        self.switch_flushed_entries
    }

    /// Number of accesses that faulted outside any VMA and were skipped.
    pub fn segfaults(&self) -> u64 {
        self.segfaults
    }

    /// Number of accesses whose fault failed with
    /// [`VmError::OutOfMemory`] after reclaim and the OOM killer were
    /// exhausted (the access is skipped; see [`SimulationReport::oom`]
    /// for the machine-wide picture).
    ///
    /// [`SimulationReport::oom`]: crate::report::SimulationReport::oom
    pub fn oom_failures(&self) -> u64 {
        self.oom_failures
    }

    /// Planned multi-instruction epochs the sharded multi-core loop has
    /// executed (zero when every round fell back to the serial
    /// one-`CORE_TICK` schedule — under memory pressure, fault injection
    /// or an armed coherence fence). Diagnostic only; never serialized
    /// into reports.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Shootdown work applied so far (zero counters on a run without
    /// memory pressure or khugepaged collapses).
    pub fn shootdown_stats(&self) -> &ShootdownStats {
        &self.shootdowns
    }

    /// Creates an additional process (admitted to the scheduler's run
    /// queue) and returns its identifier.
    pub fn spawn_process(&mut self) -> ProcessId {
        let pid = self.os.spawn_process();
        self.ensure_perf_slot(pid);
        pid
    }

    /// Grows the dense per-process accounting table to cover `pid`.
    fn ensure_perf_slot(&mut self, pid: ProcessId) {
        if pid.0 >= self.per_proc.len() {
            self.per_proc.resize(pid.0 + 1, ProcPerf::default());
        }
    }

    /// The accounting slot of `pid` (growing the table if the process was
    /// created behind the system's back).
    fn perf_mut(&mut self, pid: ProcessId) -> &mut ProcPerf {
        self.ensure_perf_slot(pid);
        &mut self.per_proc[pid.0]
    }

    /// Maps an anonymous region for the primary process.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::InvalidVma`] for overlapping or empty regions.
    pub fn mmap_anonymous(&mut self, start: VirtAddr, len: u64) -> VmResult<()> {
        self.mmap_anonymous_for(self.primary, start, len)
    }

    /// Maps an anonymous region for a specific process.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::InvalidVma`] for overlapping or empty regions.
    pub fn mmap_anonymous_for(
        &mut self,
        pid: ProcessId,
        start: VirtAddr,
        len: u64,
    ) -> VmResult<()> {
        self.os.mmap_anonymous(pid, start, len, false)?;
        self.engine_note_mapped_region(pid, start, len);
        Ok(())
    }

    /// Maps a hugetlbfs-backed region for the primary process.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::InvalidVma`] for overlapping or empty regions.
    pub fn mmap_hugetlb(&mut self, start: VirtAddr, len: u64) -> VmResult<()> {
        self.os.mmap_anonymous(self.primary, start, len, true)?;
        self.engine_note_mapped_region(self.primary, start, len);
        Ok(())
    }

    /// Maps a file-backed region for the primary process.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::InvalidVma`] for overlapping or empty regions.
    pub fn mmap_file(&mut self, start: VirtAddr, len: u64, file_id: u64) -> VmResult<()> {
        self.mmap_file_for(self.primary, start, len, file_id)
    }

    /// Maps a file-backed region for a specific process.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::InvalidVma`] for overlapping or empty regions.
    pub fn mmap_file_for(
        &mut self,
        pid: ProcessId,
        start: VirtAddr,
        len: u64,
        file_id: u64,
    ) -> VmResult<()> {
        self.os.mmap_file(pid, start, len, file_id)?;
        self.engine_note_mapped_region(pid, start, len);
        Ok(())
    }

    /// Feeds engine-specific metadata of a freshly mapped region to the
    /// translation engine: the VMA itself (Midgard registers it with the
    /// frontend) and any contiguous ranges the kernel allocated eagerly
    /// for the address space (RMM registers them with the range table).
    /// A no-op on the conventional page-table engine.
    fn engine_note_mapped_region(&mut self, pid: ProcessId, start: VirtAddr, len: u64) {
        let asid = Self::asid_of(pid);
        let core = self.core_of(pid);
        let c = core_mut!(self, core);
        c.engine.note_vma(asid, start, len);
        c.engine.note_ranges(asid, self.os.ranges(pid));
    }

    /// Pre-faults every page of every VMA of `pid` (the equivalent of
    /// `MAP_POPULATE`): mappings are established functionally and installed
    /// in the MMU, but no simulated time is charged and no kernel streams
    /// are injected. Used to measure steady-state behaviour of long-running
    /// workloads without their cold first-touch phase.
    pub fn populate(&mut self, pid: ProcessId) {
        let asid = Self::asid_of(pid);
        let home = self.core_of(pid);
        let vmas: Vec<(VirtAddr, u64)> = self
            .os
            .process(pid)
            .vmas
            .iter()
            .map(|v| (v.start, v.len()))
            .collect();
        for (start, len) in vmas {
            let mut offset = 0u64;
            while offset < len {
                let va = start.add(offset);
                if let Some(existing) = self.os.process(pid).lookup_mapping(va) {
                    let c = core_mut!(self, home);
                    c.engine.handle_fault_install(
                        &mut c.mmu,
                        asid,
                        &existing,
                        InstallInfo::default(),
                    );
                    offset = existing.vaddr.add(existing.page_size.bytes()).raw() - start.raw();
                    continue;
                }
                match self.os.handle_page_fault(pid, va, false) {
                    Ok(outcome) => {
                        let info = InstallInfo {
                            restseg_placed: outcome.restseg_placed,
                        };
                        // Populating a footprint larger than memory can
                        // reclaim; the shootdowns still apply (state, not
                        // time — populate charges nothing by design).
                        self.apply_invalidations_from(home, &outcome.invalidations, false);
                        self.process_oom_kills(false);
                        let c = core_mut!(self, home);
                        c.engine
                            .handle_fault_install(&mut c.mmu, asid, &outcome.mapping, info);
                        for extra in &outcome.additional_mappings {
                            c.engine.handle_fault_install(
                                &mut c.mmu,
                                asid,
                                extra,
                                InstallInfo::default(),
                            );
                        }
                        offset = outcome
                            .mapping
                            .vaddr
                            .add(outcome.mapping.page_size.bytes())
                            .raw()
                            - start.raw();
                    }
                    Err(_) => {
                        // Out of memory (or swap): leave the rest untouched,
                        // but apply whatever reclaim tore down on the way.
                        let pending = self.os.take_pending_invalidations();
                        self.apply_invalidations_from(home, &pending, false);
                        self.process_oom_kills(false);
                        offset += PageSize::Size4K.bytes();
                    }
                }
            }
        }
    }

    /// Runs a workload until its trace ends or `max_instructions` retire.
    /// Returns the simulation report.
    pub fn run<T: TraceSource + ?Sized>(
        &mut self,
        frontend: &mut T,
        max_instructions: Option<u64>,
    ) -> SimulationReport {
        self.workload_name = frontend.name().to_string();
        let limit = max_instructions.unwrap_or(u64::MAX);
        if self.extra_cores.is_empty() {
            self.step_block::<true, T>(frontend, limit);
        } else {
            self.step_block::<false, T>(frontend, limit);
        }
        self.report()
    }

    /// Runs several processes concurrently, interleaved by the MimicOS
    /// round-robin scheduler: each runnable process executes up to one
    /// quantum of its trace, then the kernel preempts it, the context
    /// switch is charged (switch-code instruction stream, TLB flush policy)
    /// and the next process takes the core. The run ends when every trace
    /// is exhausted or `max_instructions` have retired in total.
    ///
    /// Every `(pid, source)` pair must name a process created by
    /// [`System::spawn_process`] (or [`System::pid`] for the first).
    /// Processes known to the scheduler but absent from `programs` are
    /// treated as immediately exited.
    ///
    /// # Panics
    ///
    /// Panics if the same `pid` appears twice in `programs`.
    pub fn run_multiprogram(
        &mut self,
        programs: &mut [(ProcessId, &mut dyn TraceSource)],
        max_instructions: Option<u64>,
    ) -> MultiProgramReport {
        if !self.extra_cores.is_empty() {
            return self.run_multiprogram_sharded(programs, max_instructions);
        }
        let names = self.name_programs(programs);

        let limit = max_instructions.unwrap_or(u64::MAX);
        let mut retired_total = 0u64;
        'outer: while retired_total < limit {
            let Some(pid) = self.os.scheduler_mut().schedule() else {
                break; // every process exited
            };
            if pid != self.core0.current {
                // Dispatch after an exit (or an externally spawned process):
                // architecturally still a context switch.
                self.apply_context_switch(ContextSwitch {
                    from: self.core0.current,
                    to: pid,
                });
            }
            let Some((_, source)) = programs.iter_mut().find(|(p, _)| *p == pid) else {
                // No trace for this process: it exits immediately.
                self.os.scheduler_mut().exit(pid);
                continue;
            };

            let quantum = self.os.scheduler().quantum();
            // This legacy loop only runs single-core (the sharded loop
            // handles `extra_cores`), so the pinned block applies. The
            // block never runs past the quantum or the global limit, so
            // preemption points match the per-step loop exactly.
            let n = quantum.min(limit - retired_total);
            let ran = self.step_block::<true, dyn TraceSource>(&mut **source, n);
            let exhausted = ran < n;
            retired_total += ran;
            if retired_total >= limit {
                if ran > 0 {
                    self.os.scheduler_mut().account(ran);
                }
                break 'outer;
            }
            let expired = ran > 0 && self.os.scheduler_mut().account(ran);
            if exhausted {
                self.os.scheduler_mut().exit(pid);
            } else if expired {
                if let Some(switch) = self.os.scheduler_mut().preempt() {
                    self.apply_context_switch(switch);
                }
            }
        }

        self.multiprogram_report(&names)
    }

    /// Registers the program names and builds the combined workload name.
    ///
    /// # Panics
    ///
    /// Panics if the same `pid` appears twice in `programs`.
    fn name_programs(
        &mut self,
        programs: &[(ProcessId, &mut dyn TraceSource)],
    ) -> BTreeMap<usize, String> {
        let mut names: BTreeMap<usize, String> = BTreeMap::new();
        for (pid, src) in programs.iter() {
            assert!(
                names.insert(pid.0, src.name().to_string()).is_none(),
                "{pid} appears twice"
            );
        }
        self.workload_name = {
            let mut all: Vec<&str> = names.values().map(String::as_str).collect();
            all.sort_unstable();
            all.join("+")
        };
        names
    }

    fn multiprogram_report(&self, names: &BTreeMap<usize, String>) -> MultiProgramReport {
        let processes = names
            .iter()
            .map(|(&pid, name)| self.process_report(ProcessId(pid), name.clone()))
            .collect();
        MultiProgramReport {
            processes,
            context_switches: self.context_switches,
            switch_flushed_tlb_entries: self.switch_flushed_entries,
            rollup: self.report(),
        }
    }

    /// Instructions one core runs before the round-robin loop moves on to
    /// the next: the interleaving granularity of the multi-core model.
    /// Small enough that cross-core shootdowns land promptly, large enough
    /// that the per-turn dispatch overhead stays negligible.
    const CORE_TICK: u64 = 256;

    /// `CORE_TICK` turns one epoch slice covers: the granularity at which
    /// the multi-core loop amortizes dispatch (and, with host threads, the
    /// length of the parallel phase between barriers).
    const EPOCH_TICKS: u64 = 16;

    /// Below this per-core slice length an epoch is not worth its planning
    /// and barrier overhead; the loop falls back to one classic `CORE_TICK`
    /// round instead (which is also how housekeeping ticks land at their
    /// exact per-core instruction numbers).
    const MIN_EPOCH_SLICE: u64 = Self::CORE_TICK;

    /// Upper bound on physical memory one page fault can consume: a 2 MiB
    /// THP (or reservation) allocation, up to two page-table frames and
    /// slack for metadata. The epoch headroom check multiplies this by the
    /// core count, since a slice stops at its first fault.
    const EPOCH_FAULT_ALLOC_BOUND: u64 = 4 << 20;

    /// Runs several processes on the system's simulated cores: every core
    /// round-robins over its own run queue (processes are pinned by
    /// `pid % num_cores`), the cores interleave deterministically in fixed
    /// slices, and reclaim invalidations broadcast shootdown IPIs from the
    /// faulting core to every other core.
    ///
    /// Whenever no source of cross-core disturbance can fire mid-slice
    /// (see `System::epoch_ready`), the loop runs *epochs*: each core
    /// executes up to `CORE_TICK * EPOCH_TICKS` instructions against its
    /// private translation state, and all shared-state work — page walks
    /// through the caches, DRAM traffic, page faults, scheduling — resolves
    /// serially at the epoch barrier in core-index order. With
    /// `host_threads > 1` the per-core local phases run on host threads;
    /// because they touch disjoint state and the barrier replay is a fixed
    /// serial order, **every host-thread count produces bit-identical
    /// reports** (the `multicore_differential` fence enforces this).
    /// Otherwise the loop falls back to the classic serial `CORE_TICK`
    /// round-robin round, which handles housekeeping ticks, the coherence
    /// fence, fault injection and memory pressure exactly as before.
    ///
    /// With `num_cores = 1` this is semantically identical to the legacy
    /// [`System::run_multiprogram`] loop — dispatches, preemption points
    /// and every charged cycle land on the same instructions — which the
    /// `multicore_differential` test fence pins byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics if the same `pid` appears twice in `programs`.
    pub fn run_multiprogram_sharded(
        &mut self,
        programs: &mut [(ProcessId, &mut dyn TraceSource)],
        max_instructions: Option<u64>,
    ) -> MultiProgramReport {
        let names = self.name_programs(programs);

        let limit = max_instructions.unwrap_or(u64::MAX);
        let num_cores = self.num_cores();
        let host_threads = self.config.host_threads.clamp(1, num_cores);

        // Dense pid -> program-index map: the legacy loop's per-turn linear
        // scan over `programs` was measurable dispatch overhead at
        // CORE_TICK granularity.
        let max_pid = programs.iter().map(|(pid, _)| pid.0).max().unwrap_or(0);
        let mut program_of = vec![usize::MAX; max_pid + 1];
        for (i, (pid, _)) in programs.iter().enumerate() {
            program_of[pid.0] = i;
        }
        // Fault-truncated epoch slices park their unconsumed tail here;
        // both the epoch planner and the fallback rounds drain it before
        // pulling fresh instructions from the source.
        let mut pending: Vec<VecDeque<Instruction>> =
            (0..programs.len()).map(|_| VecDeque::new()).collect();
        let mut epoch: Vec<EpochSlice> = (0..num_cores).map(|_| EpochSlice::default()).collect();

        let mut retired_total = 0u64;
        'outer: loop {
            if retired_total >= limit {
                break;
            }
            let mut any_progress = false;
            let mut ran_epoch = false;

            if self.epoch_ready() {
                // ---- Plan (serial): dispatch and slice sizing, in core
                // order. Context switches apply here so the parallel phase
                // sees post-dispatch translation state.
                let interval = self.config.housekeeping_interval;
                let mut budget = limit - retired_total;
                let mut runt = false;
                for slice in epoch.iter_mut() {
                    slice.active = false;
                }
                for (core, slice) in epoch.iter_mut().enumerate() {
                    if budget == 0 {
                        break;
                    }
                    let Some(pid) = self.os.scheduler_mut().schedule_on(core) else {
                        continue; // this core's queue is empty
                    };
                    self.active = core;
                    if pid != core_ref!(self, core).current {
                        self.apply_context_switch(ContextSwitch {
                            from: core_ref!(self, core).current,
                            to: pid,
                        });
                    }
                    let prog = program_of.get(pid.0).copied().unwrap_or(usize::MAX);
                    if prog == usize::MAX {
                        // No trace for this process: it exits immediately.
                        self.os.scheduler_mut().exit(pid);
                        any_progress = true;
                        continue;
                    }
                    // Strictly below the housekeeping threshold: background
                    // ticks (khugepaged collapses!) must never fire inside
                    // an epoch, where their invalidations would reach cores
                    // whose local phase already ran.
                    let slack = if interval > 0 {
                        (interval - core_ref!(self, core).instructions_since_housekeeping)
                            .saturating_sub(1)
                    } else {
                        u64::MAX
                    };
                    let cap = (Self::CORE_TICK * Self::EPOCH_TICKS)
                        .min(self.os.scheduler().remaining_quantum_on(core))
                        .min(slack)
                        .min(budget);
                    if cap < Self::MIN_EPOCH_SLICE {
                        runt = true;
                        break;
                    }
                    budget -= cap;
                    slice.active = true;
                    slice.pid = pid;
                    slice.prog = prog;
                    slice.asid = Self::asid_of(pid);
                    slice.exhausted = false;
                    slice.cycles_before = 0;
                    slice.instrs.clear();
                    slice.log.ran = 0;
                    slice.log.accesses.clear();
                    slice.log.fault = None;
                    // Pull the slice's instructions now (serially):
                    // leftovers from a truncated predecessor first, then
                    // the source.
                    let queue = &mut pending[prog];
                    while (slice.instrs.len() as u64) < cap {
                        if let Some(instr) = queue.pop_front() {
                            slice.instrs.push(instr);
                            continue;
                        }
                        match programs[prog].1.next_instruction() {
                            Some(instr) => slice.instrs.push(instr),
                            None => {
                                slice.exhausted = true;
                                break;
                            }
                        }
                    }
                }

                if !runt {
                    ran_epoch = true;
                    self.epochs_run += 1;
                    // Snapshot attribution baselines after every dispatch
                    // switch has been charged.
                    for (core, slice) in epoch.iter_mut().enumerate() {
                        if slice.active {
                            slice.cycles_before = core_ref!(self, core).core.cycles().raw();
                        }
                    }

                    // ---- Parallel phase: each active core runs its slice
                    // against private state only. With one host thread the
                    // slice instead executes inline during the barrier
                    // below, which is the same schedule by construction.
                    if host_threads > 1 && epoch.iter().any(|s| s.active) {
                        let mut cores: Vec<Option<&mut CoreState>> = Vec::with_capacity(num_cores);
                        cores.push(Some(&mut self.core0));
                        cores.extend(self.extra_cores.iter_mut().map(Some));
                        let mut jobs: Vec<(&mut CoreState, Asid, &[Instruction], &mut SliceLog)> =
                            Vec::new();
                        for (core, slice) in epoch.iter_mut().enumerate() {
                            if !slice.active {
                                continue;
                            }
                            let state = cores[core].take().expect("one slice per core");
                            jobs.push((state, slice.asid, &slice.instrs, &mut slice.log));
                        }
                        let buckets_n = host_threads.min(jobs.len());
                        let mut buckets: Vec<Vec<_>> = (0..buckets_n).map(|_| Vec::new()).collect();
                        for (i, job) in jobs.into_iter().enumerate() {
                            buckets[i % buckets_n].push(job);
                        }
                        std::thread::scope(|scope| {
                            let mut buckets = buckets.into_iter();
                            let local = buckets.next();
                            for bucket in buckets {
                                scope.spawn(move || {
                                    for (state, asid, instrs, log) in bucket {
                                        state.run_slice_local(asid, instrs, log);
                                    }
                                });
                            }
                            // The calling thread works too instead of
                            // blocking at the join.
                            if let Some(bucket) = local {
                                for (state, asid, instrs, log) in bucket {
                                    state.run_slice_local(asid, instrs, log);
                                }
                            }
                        });
                    }

                    // ---- Barrier (serial, core-index order): replay the
                    // logged shared-state work, resolve faults, account and
                    // reschedule. This is the only place shared machine
                    // state moves, so its order — and therefore every
                    // report — is independent of the host-thread count.
                    for (core, slice) in epoch.iter_mut().enumerate() {
                        if !slice.active {
                            continue;
                        }
                        self.active = core;
                        let ran_total = if host_threads > 1 {
                            self.epoch_replay = true;
                            for entry in &slice.log.accesses {
                                self.replay_access(entry);
                            }
                            let mut ran = slice.log.ran;
                            if let Some(entry) = slice.log.fault.take() {
                                self.finish_faulted_access(&entry);
                                ran += 1;
                            }
                            self.epoch_replay = false;
                            ran
                        } else {
                            // Single host thread: execute the slice inline,
                            // truncating after the first fault exactly
                            // where a parallel worker would have stopped.
                            let fault_before = self.fault_events;
                            let mut ran = 0u64;
                            for &instr in &slice.instrs {
                                match instr.memory {
                                    None => core_mut!(self, core).core.retire_compute(1),
                                    Some((vaddr, kind)) => {
                                        self.memory_access::<false>(instr.pc, vaddr, kind)
                                    }
                                }
                                ran += 1;
                                if self.fault_events != fault_before {
                                    break;
                                }
                            }
                            ran
                        };

                        {
                            let c = core_mut!(self, core);
                            let perf = &mut self.per_proc[c.current_slot];
                            perf.instructions += ran_total;
                            perf.cycles += c.core.cycles().raw() - slice.cycles_before;
                            c.instructions_since_housekeeping += ran_total;
                        }
                        retired_total += ran_total;
                        if retired_total >= limit {
                            if ran_total > 0 {
                                self.os.scheduler_mut().account_on(core, ran_total);
                            }
                            break 'outer;
                        }
                        if ran_total > 0 {
                            any_progress = true;
                        }
                        let expired =
                            ran_total > 0 && self.os.scheduler_mut().account_on(core, ran_total);
                        let consumed_all = ran_total == slice.instrs.len() as u64;
                        if slice.exhausted && consumed_all {
                            self.os.scheduler_mut().exit(slice.pid);
                        } else if expired {
                            if let Some(switch) = self.os.scheduler_mut().preempt_on(core) {
                                self.active = core;
                                self.apply_context_switch(switch);
                            }
                        }
                        if !consumed_all {
                            // Fault truncation: park the unconsumed tail
                            // for the next dispatch of this program.
                            let queue = &mut pending[slice.prog];
                            for instr in &slice.instrs[ran_total as usize..] {
                                queue.push_back(*instr);
                            }
                        }
                    }
                }
            }

            if !ran_epoch {
                // ---- Fallback: one classic serial CORE_TICK round-robin
                // round. Runs whenever an epoch is unsafe (fence armed,
                // fault injection, low memory headroom) or not worthwhile
                // (a core is about to cross its housekeeping threshold),
                // and fires those events at their exact per-core
                // instruction numbers via step_block's chunk clamping.
                for core in 0..num_cores {
                    if retired_total >= limit {
                        break 'outer;
                    }
                    let Some(pid) = self.os.scheduler_mut().schedule_on(core) else {
                        continue; // this core's queue is empty
                    };
                    self.active = core;
                    if pid != core_ref!(self, core).current {
                        self.apply_context_switch(ContextSwitch {
                            from: core_ref!(self, core).current,
                            to: pid,
                        });
                    }
                    let prog = program_of.get(pid.0).copied().unwrap_or(usize::MAX);
                    if prog == usize::MAX {
                        // No trace for this process: it exits immediately.
                        self.os.scheduler_mut().exit(pid);
                        any_progress = true;
                        continue;
                    }

                    // Run one turn: at most CORE_TICK instructions, never
                    // past the end of the quantum (so preemption points
                    // match the single-core loop instruction-for-
                    // instruction).
                    let turn = Self::CORE_TICK.min(self.os.scheduler().remaining_quantum_on(core));
                    let n = turn.min(limit - retired_total);
                    let mut source = ReplayFront {
                        pending: &mut pending[prog],
                        inner: &mut *programs[prog].1,
                    };
                    let ran = self.step_block::<false, _>(&mut source, n);
                    let exhausted = ran < n;
                    retired_total += ran;
                    if retired_total >= limit {
                        if ran > 0 {
                            self.os.scheduler_mut().account_on(core, ran);
                        }
                        break 'outer;
                    }
                    if ran > 0 {
                        any_progress = true;
                    }
                    let expired = ran > 0 && self.os.scheduler_mut().account_on(core, ran);
                    if exhausted {
                        self.os.scheduler_mut().exit(pid);
                    } else if expired {
                        if let Some(switch) = self.os.scheduler_mut().preempt_on(core) {
                            self.active = core;
                            self.apply_context_switch(switch);
                        }
                    }
                }
            }
            if !any_progress {
                break; // every process exited
            }
        }

        self.active = 0;
        self.multiprogram_report(&names)
    }

    /// `true` when the next multi-core interleave can run as an epoch:
    /// every source of cross-core disturbance mid-epoch is excluded up
    /// front, so each core's local phase sees exactly the private state a
    /// fully serial schedule would have shown it.
    ///
    /// - The coherence fence counts instructions globally and serially.
    /// - Injected allocation shortfalls can force reclaim (and its
    ///   shootdown broadcasts) at *any* memory headroom, so chaos runs
    ///   serialize — they remain bit-reproducible across thread counts,
    ///   which is what `tests/chaos.rs` pins.
    /// - Low headroom means a barrier-serviced fault could trigger
    ///   reclaim, khugepaged-style invalidations or the OOM killer, whose
    ///   cross-core teardown must interleave at `CORE_TICK` granularity.
    fn epoch_ready(&self) -> bool {
        self.config.invariant_check_interval == 0
            && !self.config.os.fault_injection.is_active()
            && self.epoch_fault_headroom()
    }

    /// Barrier-serviced faults must stay reclaim-free: if the worst-case
    /// epoch's allocations (one fault per core, each at most
    /// [`System::EPOCH_FAULT_ALLOC_BOUND`]) could push the buddy allocator
    /// past the swap threshold, the epoch falls back to serial rounds.
    fn epoch_fault_headroom(&self) -> bool {
        let buddy = self.os.buddy();
        let capacity = buddy.capacity_bytes();
        let used = capacity - buddy.free_bytes();
        let worst = self.num_cores() as u64 * Self::EPOCH_FAULT_ALLOC_BOUND;
        (used + worst) as f64 <= self.config.os.swap_threshold * capacity as f64
    }

    /// Applies the architectural consequences of a context switch: the
    /// switch-code kernel stream, the TLB flush policy and the bookkeeping.
    fn apply_context_switch(&mut self, switch: ContextSwitch) {
        let stream = self.os.context_switch_stream(switch);
        match self.config.mode {
            SimulationMode::Detailed => {
                self.streams.send(stream);
                self.drain_kernel_streams();
            }
            SimulationMode::Emulation { .. } => {
                // Emulation mode charges the switch as a fixed stall instead
                // of simulating the switch code.
                core_mut!(self, self.active)
                    .core
                    .stall(Cycles::new(u64::from(self.config.os.context_switch_cost)));
            }
        }
        self.ensure_perf_slot(switch.to);
        let c = core_mut!(self, self.active);
        let dropped = c
            .engine
            .context_switch(&mut c.mmu, Self::asid_of(switch.to));
        self.switch_flushed_entries += dropped as u64;
        self.context_switches += 1;
        c.current = switch.to;
        // Swap the cached accounting slot to the incoming process.
        c.current_slot = switch.to.0;
    }

    /// Builds the per-process slice of the report for `pid`.
    fn process_report(&self, pid: ProcessId, workload: String) -> ProcessReport {
        let perf = self.per_proc.get(pid.0).copied().unwrap_or_default();
        let home = self.core_of(pid);
        let asid_stats = core_ref!(self, home)
            .mmu
            .stats()
            .for_asid(Self::asid_of(pid));
        let process = self.os.process(pid);
        ProcessReport {
            pid: pid.0,
            workload,
            instructions: perf.instructions,
            cycles: perf.cycles,
            ipc: if perf.cycles == 0 {
                0.0
            } else {
                perf.instructions as f64 / perf.cycles as f64
            },
            translation_cycles: perf.translation_cycles,
            page_walks: asid_stats.walks.get(),
            tlb_translations: asid_stats.translations.get(),
            tlb_hits: asid_stats.hits(),
            avg_ptw_latency_cycles: if perf.ptw_count == 0 {
                0.0
            } else {
                perf.ptw_latency_cycles as f64 / perf.ptw_count as f64
            },
            minor_faults: process.minor_faults,
            major_faults: process.major_faults,
            read_faults: process.read_faults,
            write_faults: process.write_faults,
            segfaults: perf.segfaults,
            oom_failures: perf.oom_failures,
            scheduled_instructions: self.os.scheduler().stats().instructions_of(pid),
            exit_status: if process.exit_reason().is_some() {
                ProcessExitStatus::OomKilled
            } else if perf.segfaults > 0 {
                ProcessExitStatus::Segfaulted
            } else {
                ProcessExitStatus::Completed
            },
        }
    }

    /// Executes one application instruction on the active core, attributing
    /// its cost to the process currently holding that core.
    pub fn step(&mut self, instr: &Instruction) {
        self.step_impl::<false>(instr);
    }

    /// Runs up to `n` instructions from `frontend` through the pinned
    /// step path, amortizing the per-instruction bookkeeping (perf
    /// attribution, housekeeping counter) over chunks. Returns how many
    /// instructions actually retired — fewer than `n` only when the
    /// trace ends.
    ///
    /// Semantically identical to `n` calls of [`System::step_impl`]: the
    /// per-process cycle attribution telescopes (the active slot cannot
    /// change mid-block — only `apply_context_switch` moves it, and the
    /// step path never switches), and chunks are clamped to the
    /// housekeeping slack so background ticks fire at exactly the same
    /// instruction numbers as the per-step loop.
    fn step_block<const PIN0: bool, T: TraceSource + ?Sized>(
        &mut self,
        frontend: &mut T,
        n: u64,
    ) -> u64 {
        debug_assert!(!PIN0 || self.active == 0);
        let interval = self.config.housekeeping_interval;
        let fence_interval = self.config.invariant_check_interval;
        let mut stepped = 0u64;
        while stepped < n {
            let slack = if interval > 0 {
                interval - active_ref!(self, PIN0).instructions_since_housekeeping
            } else {
                u64::MAX
            };
            let fence_slack = if fence_interval > 0 {
                fence_interval - self.instructions_since_invariant_check
            } else {
                u64::MAX
            };
            let chunk = (n - stepped).min(slack).min(fence_slack);
            let cycles_before = active_ref!(self, PIN0).core.cycles().raw();
            let mut ran = 0u64;
            while ran < chunk {
                let Some(instr) = frontend.next_instruction() else {
                    break;
                };
                match instr.memory {
                    None => active_mut!(self, PIN0).core.retire_compute(1),
                    Some((vaddr, kind)) => self.memory_access::<PIN0>(instr.pc, vaddr, kind),
                }
                ran += 1;
            }
            let c = active_mut!(self, PIN0);
            let perf = &mut self.per_proc[c.current_slot];
            perf.instructions += ran;
            perf.cycles += c.core.cycles().raw() - cycles_before;
            c.instructions_since_housekeeping += ran;
            stepped += ran;
            if interval > 0 && c.instructions_since_housekeeping >= interval {
                c.instructions_since_housekeeping = 0;
                self.housekeeping();
            }
            if fence_interval > 0 {
                self.instructions_since_invariant_check += ran;
                if self.instructions_since_invariant_check >= fence_interval {
                    self.instructions_since_invariant_check = 0;
                    self.assert_invariants();
                }
            }
            if ran < chunk {
                break; // trace exhausted
            }
        }
        stepped
    }

    /// [`System::step`], monomorphized over `PIN0`: the single-core run
    /// loops instantiate `PIN0 = true`, pinning the active core to the
    /// inline `core0` field at compile time (callers must guarantee
    /// `active == 0`, which `extra_cores.is_empty()` implies).
    fn step_impl<const PIN0: bool>(&mut self, instr: &Instruction) {
        debug_assert!(!PIN0 || self.active == 0);
        let cycles_before = active_ref!(self, PIN0).core.cycles().raw();
        match instr.memory {
            None => active_mut!(self, PIN0).core.retire_compute(1),
            Some((vaddr, kind)) => self.memory_access::<PIN0>(instr.pc, vaddr, kind),
        }
        let housekeeping_interval = self.config.housekeeping_interval;
        let c = active_mut!(self, PIN0);
        let perf = &mut self.per_proc[c.current_slot];
        perf.instructions += 1;
        perf.cycles += c.core.cycles().raw() - cycles_before;
        c.instructions_since_housekeeping += 1;
        if housekeeping_interval > 0 && c.instructions_since_housekeeping >= housekeeping_interval {
            c.instructions_since_housekeeping = 0;
            self.housekeeping();
        }
        let fence_interval = self.config.invariant_check_interval;
        if fence_interval > 0 {
            self.instructions_since_invariant_check += 1;
            if self.instructions_since_invariant_check >= fence_interval {
                self.instructions_since_invariant_check = 0;
                self.assert_invariants();
            }
        }
    }

    /// Flushes locally accumulated translation costs into the active core's
    /// and the current process's accounting (one dense-array index per
    /// memory access; compute instructions never touch these fields).
    fn credit_translation<const PIN0: bool>(
        &mut self,
        cycles: u64,
        ptw_latency: u64,
        ptw_count: u64,
    ) {
        let c = active_mut!(self, PIN0);
        c.translation_cycles += cycles;
        c.ptw_latency_cycles += ptw_latency;
        c.ptw_count += ptw_count;
        let perf = &mut self.per_proc[c.current_slot];
        perf.translation_cycles += cycles;
        perf.ptw_latency_cycles += ptw_latency;
        perf.ptw_count += ptw_count;
    }

    /// Executes one application instruction on core `core` — the multi-core
    /// stepping API (tests and benchmarks drive interleavings with it).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn step_on(&mut self, core: usize, instr: &Instruction) {
        assert!(core < self.num_cores(), "core {core} out of range");
        self.active = core;
        self.step(instr);
    }

    /// Periodic background OS work: zeroed-pool refill and khugepaged, with
    /// the khugepaged stream injected in detailed mode. A collapse moves
    /// the region to a *new* huge frame and frees the old base frames, so
    /// its invalidation batch is applied just like a reclaim shootdown —
    /// before the fix, the TLBs kept translating into the freed frames.
    // vmlint: allow(no-alloc-in-hot-path, "periodic slow path: runs once per housekeeping interval, not per access; the counting-allocator test brackets it out of the steady-state window")
    fn housekeeping(&mut self) {
        let current = core_ref!(self, self.active).current;
        self.functional
            .post_request(KernelRequest::BackgroundTick { pid: current });
        let _ = self.functional.take_request();
        self.os.background_tick();
        let (stream, invalidations) = self.os.khugepaged_tick(current);
        self.functional.post_response(KernelResponse::TickDone);
        let _ = self.functional.take_response();
        let detailed = self.config.mode.is_detailed();
        if detailed && !stream.is_empty() {
            self.streams.send(stream);
            self.drain_kernel_streams();
        }
        self.apply_invalidations_from(self.active, &invalidations, detailed);
    }

    /// Performs one data memory access: translation, possible fault
    /// handling, then the data access itself. [`System::step`] retires the
    /// surrounding instruction's per-process accounting.
    ///
    /// The core-local half (the L0 fast path and the engine translation —
    /// [`CoreState::local_translate`]) is shared with the parallel epoch
    /// workers; the shared-state half below is exactly what the epoch
    /// barrier replays, so the inline and epoch schedules charge identical
    /// cycles in identical order.
    fn memory_access<const PIN0: bool>(&mut self, pc: VirtAddr, vaddr: VirtAddr, kind: AccessType) {
        let asid = Self::asid_of(active_ref!(self, PIN0).current);
        let translation = active_mut!(self, PIN0).local_translate(asid, vaddr);
        if translation.paddr.is_none() {
            // Fault: resolve it on the serial path shared with the epoch
            // barrier (walk charging, kernel service, one retry).
            let entry = DeferredAccess {
                pc,
                vaddr,
                kind,
                translation,
            };
            self.finish_faulted_access(&entry);
            return;
        }

        let mut total_latency = translation.fixed_latency;
        let mut translation_cycles = translation.penalty_cycles;
        let mut ptw_latency = 0u64;
        let mut ptw_count = 0u64;
        if let Some(walk) = &translation.walk {
            let walk_latency = self.charge_page_walk(walk.parallel, &walk.accesses);
            total_latency += walk_latency;
            translation_cycles += walk_latency.raw();
            ptw_latency += walk_latency.raw();
            ptw_count += 1;
        }
        self.credit_translation::<PIN0>(translation_cycles, ptw_latency, ptw_count);

        let paddr = translation.paddr.expect("checked above");
        total_latency += self.data_access(pc, paddr, kind);
        active_mut!(self, PIN0).core.retire_memory(total_latency);
    }

    /// The data access through caches and DRAM: the demanded line (and any
    /// prefetches and writebacks) move through the shared hierarchy;
    /// returns the latency the demand access exposes to the core.
    fn data_access(&mut self, pc: VirtAddr, paddr: PhysAddr, kind: AccessType) -> Cycles {
        let access = self
            .caches
            .access_with_pc(pc, paddr, kind, Requestor::Application);
        let mut latency = access.latency;
        for (i, line) in access.dram_fetches.iter().enumerate() {
            let requestor = if i == 0 {
                Requestor::Application
            } else {
                Requestor::Prefetcher
            };
            let dram_latency = self.dram.access(&vm_types::MemoryAccess::physical(
                *line,
                AccessType::Read,
                requestor,
            ));
            if i == 0 {
                latency += dram_latency;
            }
        }
        for wb in &access.writebacks {
            self.dram.access(&vm_types::MemoryAccess::physical(
                *wb,
                AccessType::Write,
                Requestor::Application,
            ));
        }
        latency
    }

    /// Replays the shared-state half of one successfully translated epoch
    /// access on the active core: walk charging, translation crediting,
    /// cache/DRAM traffic and the final retire, in exactly the order the
    /// inline path performs them.
    fn replay_access(&mut self, entry: &DeferredAccess) {
        let mut total_latency = entry.translation.fixed_latency;
        let mut translation_cycles = entry.translation.penalty_cycles;
        let mut ptw_latency = 0u64;
        let mut ptw_count = 0u64;
        if let Some(walk) = &entry.translation.walk {
            let walk_latency = self.charge_page_walk(walk.parallel, &walk.accesses);
            total_latency += walk_latency;
            translation_cycles += walk_latency.raw();
            ptw_latency += walk_latency.raw();
            ptw_count += 1;
        }
        self.credit_translation::<false>(translation_cycles, ptw_latency, ptw_count);
        let paddr = entry
            .translation
            .paddr
            .expect("replayed accesses translated locally");
        total_latency += self.data_access(entry.pc, paddr, entry.kind);
        core_mut!(self, self.active)
            .core
            .retire_memory(total_latency);
    }

    /// Completes a memory access whose core-local translation faulted:
    /// charges the recorded attempt-0 walk, services the fault through the
    /// kernel, then retries the translation once — the exact tail of the
    /// pre-epoch translation loop. Shared between the inline step path
    /// (which calls it immediately) and the epoch barrier (which calls it
    /// while resuming a truncated slice mid-instruction).
    // vmlint: allow(no-alloc-in-hot-path, "fault slow path: runs only when a translation faulted into the kernel, never on the TLB/PTW steady-state hit path the allocator test measures")
    fn finish_faulted_access(&mut self, entry: &DeferredAccess) {
        let asid = Self::asid_of(core_ref!(self, self.active).current);
        let mut total_latency = entry.translation.fixed_latency;
        let mut translation_cycles = entry.translation.penalty_cycles;
        let mut ptw_latency = 0u64;
        let mut ptw_count = 0u64;
        if let Some(walk) = &entry.translation.walk {
            let walk_latency = self.charge_page_walk(walk.parallel, &walk.accesses);
            total_latency += walk_latency;
            translation_cycles += walk_latency.raw();
            ptw_latency += walk_latency.raw();
            ptw_count += 1;
        }
        if !self.handle_fault(entry.vaddr, entry.kind.is_write()) {
            // Unresolvable fault: skip the access.
            self.credit_translation::<false>(translation_cycles, ptw_latency, ptw_count);
            core_mut!(self, self.active).core.retire_compute(1);
            return;
        }
        // Retry once; the L0 path stands down here, matching the original
        // attempt loop (the engine refills it on this translation).
        let result = {
            let c = core_mut!(self, self.active);
            c.engine.translate(&mut c.mmu, asid, entry.vaddr)
        };
        total_latency += result.fixed_latency;
        translation_cycles += result.fixed_latency.raw().saturating_sub(1);
        if let Some(walk) = &result.walk {
            let walk_latency = self.charge_page_walk(walk.parallel, &walk.accesses);
            total_latency += walk_latency;
            translation_cycles += walk_latency.raw();
            ptw_latency += walk_latency.raw();
            ptw_count += 1;
        }
        self.credit_translation::<false>(translation_cycles, ptw_latency, ptw_count);
        let Some(paddr) = result.paddr else {
            // Still unmapped after a successful fault: skip the access.
            core_mut!(self, self.active).core.retire_compute(1);
            return;
        };
        total_latency += self.data_access(entry.pc, paddr, entry.kind);
        core_mut!(self, self.active)
            .core
            .retire_memory(total_latency);
    }

    /// Replays a page-table walk through the memory hierarchy and returns
    /// its latency. Parallel (hash-based) walks cost the slowest access;
    /// serial (radix) walks cost the sum.
    fn charge_page_walk(&mut self, parallel: bool, accesses: &[PhysAddr]) -> Cycles {
        match self.config.mode {
            SimulationMode::Emulation {
                fixed_ptw_latency, ..
            } => {
                if accesses.is_empty() {
                    Cycles::ZERO
                } else {
                    fixed_ptw_latency
                }
            }
            SimulationMode::Detailed => {
                let mut total = Cycles::ZERO;
                let mut slowest = Cycles::ZERO;
                for pa in accesses {
                    let mut latency = Cycles::ZERO;
                    let access = self.caches.access_page_table(*pa);
                    latency += access.latency;
                    for line in &access.dram_fetches {
                        latency += self.dram.access(&vm_types::MemoryAccess::physical(
                            *line,
                            AccessType::Read,
                            Requestor::PageTableWalker,
                        ));
                    }
                    for wb in &access.writebacks {
                        self.dram.access(&vm_types::MemoryAccess::physical(
                            *wb,
                            AccessType::Write,
                            Requestor::PageTableWalker,
                        ));
                    }
                    total += latency;
                    slowest = slowest.max(latency);
                }
                if parallel {
                    slowest
                } else {
                    total
                }
            }
        }
    }

    /// Sends a page-fault request to MimicOS over the functional channel,
    /// injects the returned kernel stream, installs the new mappings and
    /// charges the fault latency. Returns `false` when the fault could not
    /// be resolved (segmentation fault).
    fn handle_fault(&mut self, vaddr: VirtAddr, is_write: bool) -> bool {
        self.fault_events += 1;
        self.functional.post_request(KernelRequest::PageFault {
            pid: core_ref!(self, self.active).current,
            vaddr,
            is_write,
        });
        let request = self.functional.take_request().expect("request just posted");
        let KernelRequest::PageFault {
            pid,
            vaddr,
            is_write,
        } = request
        else {
            unreachable!("only page-fault requests are posted here");
        };
        let asid = Self::asid_of(pid);

        match self.os.handle_page_fault(pid, vaddr, is_write) {
            Ok(outcome) => {
                // Engine-specific install metadata travels with the fault
                // outcome (e.g. Utopia RestSeg placement).
                let install_info = InstallInfo {
                    restseg_placed: outcome.restseg_placed,
                };
                // Move the mappings into the response instead of cloning
                // them: the fault path allocates nothing beyond what the
                // kernel already built.
                let stream = outcome.stream;
                let invalidations = outcome.invalidations;
                self.functional.post_response(KernelResponse::FaultHandled {
                    mapping: outcome.mapping,
                    additional: outcome.additional_mappings,
                    device_latency_ns: outcome.device_latency_ns,
                });
                let response = self
                    .functional
                    .take_response()
                    .expect("response just posted");
                let KernelResponse::FaultHandled {
                    mapping,
                    additional,
                    device_latency_ns,
                } = response
                else {
                    unreachable!("fault requests receive fault responses");
                };

                // The epoch headroom check promises barrier-serviced
                // faults never reclaim; a cross-core invalidation here
                // would reach cores whose local phase already ran.
                debug_assert!(
                    !self.epoch_replay || invalidations.is_empty(),
                    "reclaim fired inside an epoch the headroom check passed"
                );
                match self.config.mode {
                    SimulationMode::Detailed => {
                        self.streams.send(stream);
                        self.drain_kernel_streams();
                        // Mirror the kernel's order: reclaim (and its
                        // shootdowns) happened before the new mapping was
                        // established.
                        self.apply_invalidations_from(self.active, &invalidations, true);
                        self.install_mapping_detailed(self.active, asid, &mapping, install_info);
                        for extra in &additional {
                            self.install_mapping_detailed(
                                self.active,
                                asid,
                                extra,
                                InstallInfo::default(),
                            );
                        }
                        let device_cycles =
                            (device_latency_ns * self.config.core.frequency.ghz()).round() as u64;
                        core_mut!(self, self.active)
                            .core
                            .stall(Cycles::new(device_cycles));
                    }
                    SimulationMode::Emulation {
                        fixed_fault_latency,
                        ..
                    } => {
                        self.apply_invalidations_from(self.active, &invalidations, false);
                        let c = core_mut!(self, self.active);
                        c.engine
                            .handle_fault_install(&mut c.mmu, asid, &mapping, install_info);
                        for extra in &additional {
                            c.engine.handle_fault_install(
                                &mut c.mmu,
                                asid,
                                extra,
                                InstallInfo::default(),
                            );
                        }
                        c.core.stall(fixed_fault_latency);
                    }
                }
                self.process_oom_kills(true);
                true
            }
            Err(VmError::SegmentationFault { .. }) => {
                self.functional.post_response(KernelResponse::FaultFailed {
                    error: VmError::SegmentationFault { vaddr },
                });
                let _ = self.functional.take_response();
                self.apply_pending_invalidations();
                self.segfaults += 1;
                self.perf_mut(pid).segfaults += 1;
                false
            }
            Err(error @ VmError::OutOfMemory { .. }) => {
                // Genuine memory exhaustion, not an addressing error: the
                // kernel may have killed processes on the way (whose
                // teardown is in the pending batch) before running out of
                // victims. Attributing this to `segfaults` — as the
                // catch-all arm below once did — made pressure-run reports
                // blame innocent survivors for bad pointers.
                self.functional
                    .post_response(KernelResponse::FaultFailed { error });
                let _ = self.functional.take_response();
                self.apply_pending_invalidations();
                self.process_oom_kills(true);
                self.oom_failures += 1;
                self.perf_mut(pid).oom_failures += 1;
                false
            }
            Err(error) => {
                self.functional
                    .post_response(KernelResponse::FaultFailed { error });
                let _ = self.functional.take_response();
                self.apply_pending_invalidations();
                self.segfaults += 1;
                self.perf_mut(pid).segfaults += 1;
                false
            }
        }
    }

    /// Applies the architectural side of the OOM kills the kernel performed
    /// while handling the last fault. The per-page teardown of each victim
    /// already rode the fault's invalidation batch; what remains is the
    /// per-ASID state: every core's TLB entries and the engine's
    /// address-space structures (Midgard frontends, RMM range tables,
    /// Utopia RestSeg residency) are flushed so a recycled ASID can never
    /// inherit a dead process's translations. In detailed mode the kill's
    /// kernel stream (badness scan + `exit_mmap` teardown) is injected when
    /// `charge` is set; `populate` passes `false` because it charges
    /// nothing by design.
    fn process_oom_kills(&mut self, charge: bool) {
        let kills = self.os.take_oom_kills();
        if kills.is_empty() {
            return;
        }
        debug_assert!(
            !self.epoch_replay,
            "OOM kill fired inside an epoch the headroom check passed"
        );
        let num_cores = self.num_cores();
        let detailed = charge && self.config.mode.is_detailed();
        for kill in kills {
            let asid = Self::asid_of(kill.victim);
            for core in 0..num_cores {
                let c = core_mut!(self, core);
                let dropped = c.engine.flush_asid(&mut c.mmu, asid);
                self.shootdowns.tlb_entries_dropped += dropped as u64;
            }
            if detailed && !kill.stream.is_empty() {
                self.streams.send(kill.stream);
                self.drain_kernel_streams();
            }
        }
    }

    /// Applies the shootdown work of faults that failed partway: the
    /// kernel may have reclaimed (and torn translations down) before the
    /// fault ultimately errored, and that work is real even though the
    /// fault is not. The failed fault's stream died with it, so the
    /// kernel rebuilds the shootdown-cost portion for injection.
    fn apply_pending_invalidations(&mut self) {
        let pending = self.os.take_pending_invalidations();
        if pending.is_empty() {
            return;
        }
        let detailed = self.config.mode.is_detailed();
        // Build the replacement stream in both modes so the kernel-side
        // instruction accounting stays mode-independent (as it is for
        // successful faults); only the injection is detailed-only.
        let stream = self
            .os
            .pending_shootdown_stream(pending.victims.len() as u64);
        if detailed && !stream.is_empty() {
            self.streams.send(stream);
            self.drain_kernel_streams();
        }
        self.apply_invalidations_from(self.active, &pending, detailed);
    }

    /// Installs a mapping on `core` in detailed mode, charging the
    /// translation-metadata update accesses as that core's kernel traffic.
    fn install_mapping_detailed(
        &mut self,
        core: usize,
        asid: Asid,
        mapping: &Mapping,
        info: InstallInfo,
    ) {
        let accesses = {
            let c = core_mut!(self, core);
            c.engine
                .handle_fault_install(&mut c.mmu, asid, mapping, info)
        };
        core_mut!(self, core).core.set_kernel_mode(true);
        for pa in accesses {
            let lat = self.charge_kernel_access(pa, AccessType::Write);
            core_mut!(self, core).core.retire_memory(lat);
        }
        core_mut!(self, core).core.set_kernel_mode(false);
    }

    /// Tears down the translations of a single victim page on core `core`,
    /// folding the dropped-entry counts into the shootdown statistics and —
    /// when `charge_memory` — sending the metadata-update accesses through
    /// the hierarchy as that core's kernel traffic.
    fn invalidate_victim_on(
        &mut self,
        core: usize,
        victim: &mimic_os::InvalidationVictim,
        charge_memory: bool,
    ) {
        let asid = Self::asid_of(victim.pid);
        let outcome = {
            let c = core_mut!(self, core);
            c.engine
                .invalidate(&mut c.mmu, asid, victim.vaddr, victim.page_size)
        };
        self.shootdowns.tlb_entries_dropped += outcome.tlb_entries_dropped as u64;
        self.shootdowns.pwc_entries_dropped += outcome.pwc_entries_dropped as u64;
        self.shootdowns.engine_entries_dropped += outcome.engine_entries_dropped as u64;
        if charge_memory {
            core_mut!(self, core).core.set_kernel_mode(true);
            for pa in outcome.accesses {
                let lat = self.charge_kernel_access(pa, AccessType::Write);
                core_mut!(self, core).core.retire_memory(lat);
            }
            core_mut!(self, core).core.set_kernel_mode(false);
        }
    }

    /// Applies a kernel invalidation batch initiated on core `initiator`:
    /// every victim is shot out of the MMU (page table, TLBs, PWCs) and the
    /// engine's design-specific state through
    /// [`TranslationEngine::invalidate`], then the replacement mappings
    /// (THP-demotion survivors, khugepaged collapse results) are installed
    /// on their owners' home cores.
    ///
    /// With more than one core this is a real TLB shootdown: the initiator
    /// broadcasts an IPI to every remote core over the inter-core channel,
    /// each remote core stalls for the IPI delivery cost, tears down only
    /// its *own* TLB/PWC/engine state, and acks; the initiator collects
    /// every ack before its fault completes (a missing ack is a channel
    /// protocol violation). The initiator-side IPI *instruction* cost is
    /// already part of the kernel stream MimicOS produced; `charge_memory`
    /// additionally sends the metadata-update accesses through the cache
    /// hierarchy and charges the remote stalls (detailed mode on the
    /// simulated-time path; `populate` passes `false` because it charges
    /// nothing by design).
    fn apply_invalidations_from(
        &mut self,
        initiator: usize,
        batch: &InvalidationBatch,
        charge_memory: bool,
    ) {
        if batch.is_empty() {
            return;
        }
        self.shootdowns.batches += 1;
        let num_cores = self.num_cores();
        let remotes = if num_cores > 1 {
            let remotes = self.ipi.broadcast(initiator, &batch.victims);
            let per_core = self
                .shootdowns
                .per_core
                .get_or_insert_with(|| vec![CoreIpiStats::default(); num_cores]);
            per_core[initiator].ipis_sent += remotes as u64;
            remotes
        } else {
            0
        };

        // Initiator-local teardown (the legacy single-core path verbatim).
        for victim in &batch.victims {
            self.shootdowns.pages += 1;
            self.invalidate_victim_on(initiator, victim, charge_memory);
        }

        // Remote cores process the IPI: stall for the delivery cost, tear
        // down their local state, ack.
        if remotes > 0 {
            let ipi_cost = u64::from(self.config.os.shootdown_ipi_cost);
            for core in 0..num_cores {
                if core == initiator {
                    continue;
                }
                let ipi = self
                    .ipi
                    .take_for(core)
                    .expect("broadcast delivered an IPI to every remote core");
                if let Some(per_core) = self.shootdowns.per_core.as_mut() {
                    per_core[core].ipis_received += 1;
                }
                if charge_memory {
                    // Fault injection may hold the IPI in flight a while
                    // longer (a busy interrupt controller); the remote
                    // core's stall grows by the configured delay.
                    let stall = ipi_cost + self.os.injected_ipi_delay_cycles();
                    core_mut!(self, core).core.stall(Cycles::new(stall));
                    if let Some(per_core) = self.shootdowns.per_core.as_mut() {
                        per_core[core].ipi_stall_cycles += stall;
                    }
                }
                for victim in &ipi.victims {
                    self.invalidate_victim_on(core, victim, charge_memory);
                }
                self.ipi.post_ack(core);
            }
            self.ipi
                .take_acks(remotes)
                .expect("every remote core acked its IPI");
        }

        for (pid, mapping) in &batch.replacements {
            let asid = Self::asid_of(*pid);
            let home = self.core_of(*pid);
            if charge_memory {
                self.install_mapping_detailed(home, asid, mapping, InstallInfo::default());
            } else {
                let c = core_mut!(self, home);
                c.engine
                    .handle_fault_install(&mut c.mmu, asid, mapping, InstallInfo::default());
            }
            self.shootdowns.replacements_installed += 1;
        }
    }

    /// Injects every pending kernel instruction stream into the core model,
    /// sending its memory references through the cache hierarchy and DRAM.
    fn drain_kernel_streams(&mut self) {
        while let Some(stream) = self.streams.receive() {
            self.inject_stream(&stream);
        }
    }

    fn inject_stream(&mut self, stream: &KernelInstructionStream) {
        core_mut!(self, self.active).core.set_kernel_mode(true);
        for op in stream.ops() {
            match *op {
                KernelOp::Compute { count } => {
                    core_mut!(self, self.active)
                        .core
                        .retire_compute(count as u64);
                }
                KernelOp::Memory { paddr, kind } => {
                    let latency = self.charge_kernel_access(paddr, kind);
                    core_mut!(self, self.active).core.retire_memory(latency);
                }
            }
        }
        core_mut!(self, self.active).core.set_kernel_mode(false);
    }

    fn charge_kernel_access(&mut self, paddr: PhysAddr, kind: AccessType) -> Cycles {
        let access = self.caches.access(paddr, kind, Requestor::Kernel);
        let mut latency = access.latency;
        for line in &access.dram_fetches {
            latency += self.dram.access(&vm_types::MemoryAccess::physical(
                *line,
                kind,
                Requestor::Kernel,
            ));
        }
        for wb in &access.writebacks {
            self.dram.access(&vm_types::MemoryAccess::physical(
                *wb,
                AccessType::Write,
                Requestor::Kernel,
            ));
        }
        latency
    }

    /// Runs the coherence fence and panics on the first violation — the
    /// reporting contract when the fence is armed through
    /// [`SystemConfig::invariant_check_interval`].
    ///
    /// # Panics
    ///
    /// Panics with the violation message when
    /// [`System::check_invariants`] fails.
    // vmlint: allow(no-alloc-in-hot-path, "diagnostic slow path: the coherence fence only runs when invariant_check_interval arms it, and its diagnostics format on the failure path")
    fn assert_invariants(&self) {
        if let Err(violation) = self.check_invariants() {
            panic!("coherence fence violated: {violation}");
        }
    }

    /// The runtime coherence fence: cross-checks every piece of cached
    /// translation state against MimicOS's authoritative tables, plus the
    /// machine-wide accounting that ties them together. Cheap enough to
    /// run periodically in chaos tests, too expensive for the hot loop —
    /// arm it with [`SystemConfig::invariant_check_interval`] or call it
    /// directly after a run.
    ///
    /// Checked per core:
    /// * every TLB entry belongs to a live process and translates exactly
    ///   as the kernel's mapping table says;
    /// * every engine-resident translation (Utopia RestSeg residency) does
    ///   the same;
    /// * every engine-resident range (RMM range tables) belongs to a live
    ///   process and is contained — at the same virtual-to-physical
    ///   offset — in a range the kernel allocated for that process;
    /// * every L0 pointer the software L0 cache would serve agrees with
    ///   the mapping table (engines that consult the L0).
    ///
    /// Checked machine-wide:
    /// * mapped buddy-backed bytes (deduplicated by frame; RestSeg pages
    ///   excluded) never exceed what the buddy allocator has handed out;
    /// * no two non-file-backed mappings of live processes overlap
    ///   physically (file-backed pages legitimately share page-cache
    ///   frames);
    /// * the scheduler holds no duplicate or dead process, each queued on
    ///   its home core.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a human-readable message.
    pub fn check_invariants(&self) -> Result<(), String> {
        let num_cores = self.num_cores();
        let num_processes = self.os.num_processes();
        // Midgard's backend TLB caches *Midgard-space* addresses, which
        // have no entry in the kernel's per-process mapping table; for
        // that engine only the ownership checks apply to TLB entries.
        let tlb_holds_native_vas = !matches!(self.config.engine, mmu_sim::EngineConfig::Midgard(_));

        for core in 0..num_cores {
            let c = core_ref!(self, core);
            for (asid, cached) in c.mmu.tlb().entries() {
                let idx = asid.raw() as usize;
                if idx >= num_processes {
                    return Err(format!(
                        "core {core}: TLB entry {cached} tagged with unknown asid {}",
                        asid.raw()
                    ));
                }
                let process = self.os.process(ProcessId(idx));
                if process.is_exited() {
                    return Err(format!(
                        "core {core}: TLB entry {cached} survives its dead owner (pid {idx})"
                    ));
                }
                if !tlb_holds_native_vas {
                    continue;
                }
                let expected = process
                    .lookup_mapping(cached.vaddr)
                    .map(|m| m.translate(cached.vaddr));
                if expected != Some(cached.translate(cached.vaddr)) {
                    return Err(format!(
                        "core {core}: stale TLB entry {cached} for pid {idx} \
                         (kernel says {expected:?})"
                    ));
                }
            }
            for (asid, resident) in c.engine.resident_mappings() {
                let idx = asid.raw() as usize;
                if idx >= num_processes {
                    return Err(format!(
                        "core {core}: engine-resident {resident} tagged with unknown asid {}",
                        asid.raw()
                    ));
                }
                let process = self.os.process(ProcessId(idx));
                if process.is_exited() {
                    return Err(format!(
                        "core {core}: engine-resident {resident} survives its dead owner \
                         (pid {idx})"
                    ));
                }
                if process.lookup_mapping(resident.vaddr).map(|m| m.paddr) != Some(resident.paddr) {
                    return Err(format!(
                        "core {core}: stale engine-resident translation {resident} for pid {idx}"
                    ));
                }
            }
            for (asid, range) in c.engine.resident_ranges() {
                let idx = asid.raw() as usize;
                if idx >= num_processes || self.os.process(ProcessId(idx)).is_exited() {
                    return Err(format!(
                        "core {core}: engine range {}+{:#x} survives its dead owner (asid {})",
                        range.virt_start,
                        range.bytes,
                        asid.raw()
                    ));
                }
                // The engine may hold *split* pieces of a kernel range
                // (invalidation splits around reclaimed pages), so the
                // check is containment at the same va->pa offset, not
                // equality.
                let covered = self.os.ranges(ProcessId(idx)).iter().any(|k| {
                    k.virt_start.raw() <= range.virt_start.raw()
                        && range.virt_start.raw() + range.bytes <= k.virt_start.raw() + k.bytes
                        && range.phys_start.raw().wrapping_sub(k.phys_start.raw())
                            == range.virt_start.raw().wrapping_sub(k.virt_start.raw())
                });
                if !covered {
                    return Err(format!(
                        "core {core}: engine range {}->{}+{:#x} for pid {idx} is not backed \
                         by any kernel range",
                        range.virt_start, range.phys_start, range.bytes
                    ));
                }
            }
            if c.engine.uses_l0() {
                for idx in 0..num_processes {
                    let process = self.os.process(ProcessId(idx));
                    if process.is_exited() {
                        continue;
                    }
                    let asid = Self::asid_of(ProcessId(idx));
                    for m in process.mappings() {
                        if let Some(pa) = c.mmu.l0_peek(asid, m.vaddr) {
                            if pa != m.paddr {
                                return Err(format!(
                                    "core {core}: L0 pointer for pid {idx} at {} serves {pa}, \
                                     kernel says {}",
                                    m.vaddr, m.paddr
                                ));
                            }
                        }
                    }
                }
            }
        }

        // Buddy accounting: every mapped frame that lives in buddy memory
        // must be covered by the allocator's allocated bytes. Deduplicate
        // by frame (file-backed pages are legitimately shared) and skip
        // RestSeg placements (carved outside the buddy's frames).
        let mut buddy_backed: BTreeMap<u64, u64> = BTreeMap::new();
        let mut spans: Vec<(u64, u64, usize, VirtAddr)> = Vec::new();
        for idx in 0..num_processes {
            let process = self.os.process(ProcessId(idx));
            if process.is_exited() {
                continue;
            }
            for m in process.mappings() {
                let in_restseg = self
                    .os
                    .utopia()
                    .is_some_and(|u| u.lookup(idx as u16, m.vaddr).is_some());
                if !in_restseg {
                    buddy_backed.insert(m.paddr.raw(), m.page_size.bytes());
                }
                let file_backed = process
                    .vmas
                    .find(m.vaddr)
                    .is_some_and(|v| matches!(v.kind, mimic_os::VmaKind::FileBacked { .. }));
                if !file_backed {
                    spans.push((
                        m.paddr.raw(),
                        m.paddr.raw() + m.page_size.bytes(),
                        idx,
                        m.vaddr,
                    ));
                }
            }
        }
        let mapped: u64 = buddy_backed.values().sum();
        let buddy = self.os.buddy();
        let allocated = buddy.capacity_bytes() - buddy.free_bytes();
        if mapped > allocated {
            return Err(format!(
                "{mapped} mapped buddy-backed bytes exceed the {allocated} bytes the buddy \
                 allocator has handed out"
            ));
        }

        // Physical disjointness of private (non-file-backed) mappings.
        spans.sort_unstable();
        for w in spans.windows(2) {
            let (a_start, a_end, a_pid, a_va) = w[0];
            let (b_start, _, b_pid, b_va) = w[1];
            if b_start < a_end {
                return Err(format!(
                    "private frames overlap: pid {a_pid} maps {a_va} and pid {b_pid} maps \
                     {b_va} into overlapping physical spans at {a_start:#x}"
                ));
            }
        }

        // Scheduler sanity: no duplicates, no dead processes, home cores.
        let mut queued = std::collections::BTreeSet::new();
        for (core, pid) in self.os.scheduler().queued_snapshot() {
            if !queued.insert(pid.0) {
                return Err(format!("scheduler holds {pid} on more than one queue"));
            }
            if pid.0 >= num_processes {
                return Err(format!("scheduler holds unknown {pid}"));
            }
            if self.os.process(pid).is_exited() {
                return Err(format!("scheduler still holds dead {pid}"));
            }
            if core != self.core_of(pid) {
                return Err(format!(
                    "scheduler queues {pid} on core {core}, its home is core {}",
                    self.core_of(pid)
                ));
            }
        }

        Ok(())
    }

    /// Assembles the simulation report for everything executed so far.
    ///
    /// On a single-core system this is exactly the legacy report. With
    /// several cores the instruction counts, walks and translation costs
    /// are summed across cores, the machine's elapsed time is the slowest
    /// core's cycle count (the cores tick in lockstep rounds), and the
    /// engine section reports core 0's frontend.
    pub fn report(&self) -> SimulationReport {
        let os_stats = self.os.stats();
        let dram_stats = self.dram.stats();
        let freq = self.config.core.frequency;

        let app_instructions: u64 = self
            .each_core()
            .map(|c| c.core.stats().app_instructions.get())
            .sum();
        let kernel_instructions: u64 = self
            .each_core()
            .map(|c| c.core.stats().kernel_instructions.get())
            .sum();
        let cycles = self
            .each_core()
            .map(|c| c.core.cycles().raw())
            .max()
            .unwrap_or(0);
        let (ipc, app_ipc) = if self.extra_cores.is_empty() {
            (self.core0.core.ipc(), self.core0.core.app_ipc())
        } else if cycles == 0 {
            (0.0, 0.0)
        } else {
            (
                (app_instructions + kernel_instructions) as f64 / cycles as f64,
                app_instructions as f64 / cycles as f64,
            )
        };
        let walks: u64 = self.each_core().map(|c| c.mmu.stats().walks.get()).sum();
        let l2_tlb_mpki = if self.extra_cores.is_empty() {
            self.core0.mmu.stats().l2_mpki(app_instructions)
        } else if app_instructions == 0 {
            0.0
        } else {
            walks as f64 * 1000.0 / app_instructions as f64
        };
        let translation_cycles: u64 = self.each_core().map(|c| c.translation_cycles).sum();
        let ptw_count: u64 = self.each_core().map(|c| c.ptw_count).sum();
        let ptw_latency_cycles: u64 = self.each_core().map(|c| c.ptw_latency_cycles).sum();

        let total_time_ns = Cycles::new(cycles).to_nanos(freq).as_nanos();
        let translation_ns = Cycles::new(translation_cycles).to_nanos(freq).as_nanos();

        SimulationReport {
            workload: self.workload_name.clone(),
            instructions: app_instructions,
            kernel_instructions,
            cycles,
            ipc,
            app_ipc,
            l2_tlb_mpki,
            page_walks: ptw_count,
            avg_ptw_latency_cycles: if ptw_count == 0 {
                0.0
            } else {
                ptw_latency_cycles as f64 / ptw_count as f64
            },
            total_ptw_latency_cycles: ptw_latency_cycles as f64,
            minor_faults: os_stats.minor_faults.get() + os_stats.hugetlb_faults.get(),
            major_faults: os_stats.major_faults.get(),
            swap_in_faults: os_stats.swap_in_faults.get(),
            fault_latency_ns: os_stats.fault_latency_ns.clone(),
            total_fault_ns: os_stats.total_fault_ns,
            total_translation_ns: translation_ns,
            total_time_ns,
            dram_row_conflicts: dram_stats.conflicts(),
            dram_translation_conflicts: dram_stats.translation_metadata_conflicts(),
            swapped_pages: os_stats.reclaimed_pages.get(),
            swap_io_ns: self.os.swap().stats().total_io_ns,
            huge_mappings: os_stats.huge_mappings.get(),
            base_mappings: os_stats.base_mappings.get(),
            engine: self.core0.engine.report(&self.core0.mmu),
            shootdowns: (!self.shootdowns.is_zero()).then(|| self.shootdowns.clone()),
            oom: {
                let kills = os_stats.oom_kills.get();
                (kills > 0 || self.oom_failures > 0).then(|| OomStats {
                    kills,
                    scanned_bytes: os_stats.oom_scanned_bytes,
                    freed_bytes: os_stats.oom_freed_bytes,
                    reclaim_retries: os_stats.oom_reclaim_retries.get(),
                    oom_failures: self.oom_failures,
                })
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmu_sim::PageTableKind;
    use sim_core::SliceFrontend;

    fn linear_trace(base: u64, count: u64, stride: u64) -> Vec<Instruction> {
        (0..count)
            .map(|i| {
                Instruction::load(
                    VirtAddr::new(0x400 + (i % 64) * 4),
                    VirtAddr::new(base + i * stride),
                )
            })
            .collect()
    }

    fn small_system() -> System {
        let mut system = System::new(SystemConfig::small_test());
        system
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
            .unwrap();
        system
    }

    #[test]
    fn runs_a_simple_trace_to_completion() {
        let mut system = small_system();
        let trace = linear_trace(0x1000_0000, 5000, 64);
        let report = system.run(&mut SliceFrontend::new("linear", trace), None);
        assert_eq!(report.instructions, 5000);
        assert!(report.cycles > 0);
        assert!(report.ipc > 0.0);
        assert!(report.minor_faults > 0, "first-touch faults expected");
        assert!(
            report.kernel_instructions > 0,
            "kernel streams must be injected"
        );
        assert_eq!(system.segfaults(), 0);
    }

    #[test]
    fn max_instructions_limit_is_respected() {
        let mut system = small_system();
        let trace = linear_trace(0x1000_0000, 10_000, 64);
        let report = system.run(&mut SliceFrontend::new("limited", trace), Some(1000));
        assert_eq!(report.instructions, 1000);
    }

    #[test]
    fn detailed_mode_injects_kernel_work_emulation_does_not() {
        let trace = linear_trace(0x1000_0000, 3000, 4096);

        let mut detailed = System::new(SystemConfig::small_test());
        detailed
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
            .unwrap();
        let det_report = detailed.run(&mut SliceFrontend::new("d", trace.clone()), None);

        let mut emulation = System::new(SystemConfig::small_test().with_emulation_baseline());
        emulation
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
            .unwrap();
        let emu_report = emulation.run(&mut SliceFrontend::new("e", trace), None);

        assert!(det_report.kernel_instructions > 0);
        assert_eq!(emu_report.kernel_instructions, 0);
        // Both modes resolve the same faults functionally.
        assert_eq!(det_report.minor_faults, emu_report.minor_faults);
        // The detailed and emulation modes disagree on timing — that
        // disagreement is exactly the accuracy gap of Fig. 8.
        assert_ne!(det_report.cycles, emu_report.cycles);
    }

    #[test]
    fn accesses_outside_vmas_are_counted_as_segfaults() {
        let mut system = small_system();
        let trace = vec![Instruction::load(
            VirtAddr::new(0x400),
            VirtAddr::new(0xdead_0000_0000),
        )];
        let report = system.run(&mut SliceFrontend::new("segv", trace), None);
        assert_eq!(system.segfaults(), 1);
        assert_eq!(report.instructions, 1);
    }

    #[test]
    fn page_walks_generate_translation_metadata_dram_traffic() {
        let mut system = small_system();
        // Strided accesses across many pages defeat the small test TLB.
        let trace = linear_trace(0x1000_0000, 4000, 2 * 1024 * 1024 / 4);
        let report = system.run(&mut SliceFrontend::new("stride", trace), None);
        assert!(report.page_walks > 0);
        assert!(report.avg_ptw_latency_cycles > 0.0);
        let dram = system.dram().stats();
        assert!(dram.accesses_by(Requestor::PageTableWalker) > 0);
    }

    #[test]
    fn different_page_tables_yield_different_walk_latencies() {
        let trace = linear_trace(0x1000_0000, 6000, 4096);
        let mut results = Vec::new();
        for kind in [PageTableKind::Radix, PageTableKind::HashedOpenAddressing] {
            let mut system = System::new(SystemConfig::small_test().with_page_table(kind));
            system
                .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
                .unwrap();
            let report = system.run(&mut SliceFrontend::new("pt", trace.clone()), None);
            results.push(report.avg_ptw_latency_cycles);
        }
        // The hashed page table's walks should not be slower than radix's on
        // average for this TLB-unfriendly pattern.
        assert!(results[1] <= results[0] * 1.5);
    }

    #[test]
    fn report_time_fractions_are_consistent() {
        let mut system = small_system();
        let trace = linear_trace(0x1000_0000, 3000, 64);
        let report = system.run(&mut SliceFrontend::new("frac", trace), None);
        assert!(report.translation_time_fraction() >= 0.0);
        assert!(report.translation_time_fraction() <= 1.0);
        assert!(report.total_time_ns > 0.0);
    }

    #[test]
    fn channels_observe_fault_traffic() {
        let mut system = small_system();
        let trace = linear_trace(0x1000_0000, 2000, 4096);
        system.run(&mut SliceFrontend::new("chan", trace), None);
        assert!(system.functional.requests_sent.get() > 0);
        assert_eq!(
            system.functional.requests_sent.get(),
            system.functional.responses_sent.get()
        );
        assert!(system.streams.streams_sent.get() > 0);
        assert_eq!(system.streams.pending(), 0, "all streams must be consumed");
    }

    /// Every TLB entry and engine-resident translation must agree with the
    /// owning process's mapping table — the coherence invariant of the
    /// shootdown subsystem.
    fn assert_translation_coherence(system: &System) {
        for (asid, cached) in system.mmu().tlb().entries() {
            let process = system.os().process(ProcessId(asid.raw() as usize));
            let authoritative = process.lookup_mapping(cached.vaddr);
            let expected = authoritative.map(|m| m.translate(cached.vaddr));
            assert_eq!(
                expected,
                Some(cached.translate(cached.vaddr)),
                "stale TLB entry {cached} for asid {}",
                asid.raw()
            );
        }
        for (asid, resident) in system.engine().resident_mappings() {
            let process = system.os().process(ProcessId(asid.raw() as usize));
            assert_eq!(
                process.lookup_mapping(resident.vaddr).map(|m| m.paddr),
                Some(resident.paddr),
                "stale engine-resident translation {resident}"
            );
        }
    }

    fn pressure_config() -> SystemConfig {
        let mut config = SystemConfig::small_test();
        config.os.memory_bytes = 16 * 1024 * 1024;
        config.os.swap_bytes = 64 * 1024 * 1024;
        config.os.swap_threshold = 0.5;
        config.os.policy = mimic_os::AllocationPolicy::BuddyFourK;
        config.os.thp = mimic_os::ThpConfig::disabled();
        config.os.populate_page_cache = false;
        config
    }

    #[test]
    fn reclaim_shoots_stale_translations_out_of_the_mmu() {
        let mut system = System::new(pressure_config());
        system
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
            .unwrap();
        // Stream DOWN over more pages than memory holds: reclaim picks the
        // lowest-addressed resident pages, which under this order are the
        // most recently touched — i.e. TLB-resident — ones, the worst case
        // for coherence.
        let trace: Vec<Instruction> = (0..8000u64)
            .map(|i| {
                Instruction::load(
                    VirtAddr::new(0x400 + (i % 64) * 4),
                    VirtAddr::new(0x1000_0000 + (8000 - i) * 4096),
                )
            })
            .collect();
        let report = system.run(&mut SliceFrontend::new("pressure", trace), None);
        assert!(report.swapped_pages > 0, "pressure must swap");
        let shootdowns = report.shootdowns.expect("swapping implies shootdowns");
        assert!(shootdowns.batches > 0);
        assert_eq!(shootdowns.pages, report.swapped_pages);
        assert!(
            shootdowns.tlb_entries_dropped > 0,
            "reclaimed pages were TLB-resident; the shootdown must drop them"
        );
        assert_translation_coherence(&system);
        // Revisit a swapped-out page: it must fault back in (SwapIn)
        // instead of silently translating through a stale entry into a
        // reused frame.
        let swapped_va = (0..8000u64)
            .map(|i| VirtAddr::new(0x1000_0000 + (8000 - i) * 4096))
            .find(|&va| system.os().process(system.pid()).is_swapped(va))
            .expect("a swapped page must exist after the pressure run");
        let swap_ins_before = system.os().stats().swap_in_faults.get();
        let revisit = vec![Instruction::load(VirtAddr::new(0x400), swapped_va)];
        system.run(&mut SliceFrontend::new("revisit", revisit), None);
        assert_eq!(
            system.os().stats().swap_in_faults.get(),
            swap_ins_before + 1,
            "the revisit must take a swap-in fault, not a stale TLB hit"
        );
    }

    #[test]
    fn khugepaged_collapse_retargets_translations_to_the_new_frame() {
        // Before the shootdown subsystem, a collapse freed the base frames
        // but the MMU kept translating into them through stale TLB entries
        // and page-table leaves.
        let mut config = SystemConfig::small_test();
        config.os.thp = mimic_os::ThpConfig {
            mode: mimic_os::ThpMode::Never,
            ..mimic_os::ThpConfig::linux_default()
        };
        config.housekeeping_interval = 2_000;
        let mut system = System::new(config);
        system
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 8 * 1024 * 1024)
            .unwrap();
        // Touch every base page of a few regions, then keep running so a
        // housekeeping tick collapses them.
        let trace = linear_trace(0x1000_0000, 6000, 4096);
        let report = system.run(&mut SliceFrontend::new("collapse", trace), None);
        assert!(
            system.os().khugepaged().collapses.get() > 0,
            "the run must collapse at least one region"
        );
        let shootdowns = report.shootdowns.expect("collapses imply shootdowns");
        assert!(shootdowns.replacements_installed > 0);
        assert_translation_coherence(&system);
        // The collapsed region translates to the huge mapping's frame.
        let huge = system
            .os()
            .process(system.pid())
            .mappings()
            .find(|m| m.page_size == PageSize::Size2M)
            .copied()
            .expect("collapse created a huge mapping");
        let asid = System::asid_of(system.pid());
        let result = {
            let c = &mut system.core0;
            c.engine.translate(&mut c.mmu, asid, huge.vaddr)
        };
        assert_eq!(result.paddr, Some(huge.paddr));
    }

    #[test]
    fn emulation_mode_applies_shootdowns_functionally() {
        let mut system = System::new(pressure_config().with_emulation_baseline());
        system
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 64 * 1024 * 1024)
            .unwrap();
        let trace = linear_trace(0x1000_0000, 8000, 4096);
        let report = system.run(&mut SliceFrontend::new("emul", trace), None);
        assert!(report.swapped_pages > 0);
        assert!(report.shootdowns.is_some());
        assert_translation_coherence(&system);
    }

    #[test]
    fn process_reports_split_faults_by_access_kind() {
        let (mut system, a, b) = two_process_system(true);
        let mut fa = SliceFrontend::new("A", linear_trace(0x1000_0000, 3000, 4096));
        let stores: Vec<Instruction> = (0..3000u64)
            .map(|i| {
                Instruction::store(VirtAddr::new(0x400), VirtAddr::new(0x1000_0000 + i * 4096))
            })
            .collect();
        let mut fb = SliceFrontend::new("B", stores);
        let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = vec![(a, &mut fa), (b, &mut fb)];
        let report = system.run_multiprogram(&mut programs, None);
        let ra = &report.processes[0];
        let rb = &report.processes[1];
        assert!(ra.read_faults > 0, "loads fault as reads");
        assert_eq!(ra.write_faults, 0);
        assert!(rb.write_faults > 0, "stores fault as writes");
        assert_eq!(rb.read_faults, 0);
        assert_eq!(
            ra.read_faults + rb.write_faults,
            system.os().stats().read_faults.get() + system.os().stats().write_faults.get()
        );
    }

    #[test]
    fn populate_prefaults_the_whole_vma() {
        let mut system = System::new(SystemConfig::small_test());
        system
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 8 * 1024 * 1024)
            .unwrap();
        let pid = system.pid();
        system.populate(pid);
        assert!(system.os().process(pid).resident_bytes() >= 8 * 1024 * 1024);
        // A populated run takes no further faults.
        let before = system.os().stats().total_faults();
        let trace = linear_trace(0x1000_0000, 2000, 4096);
        system.run(&mut SliceFrontend::new("warm", trace), None);
        assert_eq!(system.os().stats().total_faults(), before);
    }

    mod engines {
        use super::*;
        use mimic_os::AllocationPolicy;
        use mmu_sim::{EngineConfig, EngineReport, MidgardConfig, RmmConfig, UtopiaMmuConfig};

        fn run_engine(config: SystemConfig, instructions: u64, stride: u64) -> SimulationReport {
            let mut system = System::new(config);
            system
                .mmap_anonymous(VirtAddr::new(0x1000_0000), 32 * 1024 * 1024)
                .unwrap();
            let trace = linear_trace(0x1000_0000, instructions, stride);
            system.run(&mut SliceFrontend::new("W", trace), None)
        }

        #[test]
        fn midgard_runs_end_to_end_through_system() {
            let config = SystemConfig::small_test()
                .with_engine(EngineConfig::Midgard(MidgardConfig::paper_baseline()));
            let report = run_engine(config, 5000, 4096);
            assert_eq!(report.instructions, 5000);
            assert!(report.minor_faults > 0, "faults flow through MimicOS");
            assert!(report.kernel_instructions > 0, "kernel streams injected");
            let Some(EngineReport::Midgard {
                translations,
                l1_vlb_hits,
                ..
            }) = report.engine
            else {
                panic!("midgard engine stats expected, got {:?}", report.engine);
            };
            assert!(translations > 0);
            assert!(l1_vlb_hits > 0, "one VMA: the L1 VLB should serve it");
        }

        #[test]
        fn rmm_engine_with_eager_paging_avoids_page_walks() {
            let mut config = SystemConfig::small_test()
                .with_engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
            config.os.policy = AllocationPolicy::EagerPaging;
            let report = run_engine(config, 5000, 4096);
            assert_eq!(report.instructions, 5000);
            let Some(EngineReport::Rmm {
                range_translations,
                range_coverage,
                ranges,
                ..
            }) = report.engine
            else {
                panic!("rmm engine stats expected, got {:?}", report.engine);
            };
            assert!(ranges > 0, "eager paging must register ranges");
            assert!(range_translations > 0);
            assert!(range_coverage > 0.9, "coverage {range_coverage}");
            // The same TLB-hostile stride on the radix baseline walks; the
            // range path does not.
            let baseline = run_engine(SystemConfig::small_test(), 5000, 4096);
            assert!(
                report.page_walks < baseline.page_walks,
                "ranges must absorb page walks ({} vs {})",
                report.page_walks,
                baseline.page_walks
            );
        }

        #[test]
        fn utopia_engine_resolves_restseg_pages_without_walks() {
            let mut config = SystemConfig::small_test().with_engine(EngineConfig::Utopia(
                UtopiaMmuConfig::paper_baseline().with_restseg_bytes(64 * 1024 * 1024),
            ));
            config.os.policy = AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
                64 * 1024 * 1024,
                16,
                PageSize::Size4K,
            ));
            // Two passes over 2000 pages: the first faults every page in
            // (RestSeg placement), the second overflows the small-test TLB
            // so revisits resolve through the RestSeg walkers.
            let mut system = System::new(config);
            system
                .mmap_anonymous(VirtAddr::new(0x1000_0000), 32 * 1024 * 1024)
                .unwrap();
            let trace: Vec<Instruction> = (0..4000u64)
                .map(|i| {
                    Instruction::load(
                        VirtAddr::new(0x400),
                        VirtAddr::new(0x1000_0000 + (i % 2000) * 4096),
                    )
                })
                .collect();
            let report = system.run(&mut SliceFrontend::new("UT", trace), None);
            assert_eq!(report.instructions, 4000);
            let Some(EngineReport::Utopia {
                lookups,
                restseg_hits,
                rsw_fetches,
                ..
            }) = report.engine
            else {
                panic!("utopia engine stats expected, got {:?}", report.engine);
            };
            assert!(lookups > 0, "every TLB miss pays the RestSeg lookup");
            assert!(restseg_hits > 0, "kernel placements resolve in the RestSeg");
            assert!(rsw_fetches > 0, "tag-array traffic reaches the hierarchy");
        }

        #[test]
        fn page_table_engine_report_has_no_engine_section() {
            let report = run_engine(SystemConfig::small_test(), 2000, 64);
            assert_eq!(report.engine, None);
            let json = serde_json::to_string(&report).unwrap();
            assert!(
                !json.contains("\"engine\":"),
                "page-table reports must serialize without an engine section"
            );
        }

        #[test]
        fn engines_run_multiprogram_with_per_process_attribution() {
            let mut config = SystemConfig::small_test()
                .with_engine(EngineConfig::Midgard(MidgardConfig::paper_baseline()));
            config.os.sched_quantum = 500;
            let mut system = System::new(config);
            let a = system.pid();
            let b = system.spawn_process();
            for pid in [a, b] {
                system
                    .mmap_anonymous_for(pid, VirtAddr::new(0x1000_0000), 8 * 1024 * 1024)
                    .unwrap();
            }
            let mut fa = SliceFrontend::new("A", linear_trace(0x1000_0000, 3000, 64));
            let mut fb = SliceFrontend::new("B", linear_trace(0x1000_0000, 3000, 4096));
            let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> =
                vec![(a, &mut fa), (b, &mut fb)];
            let report = system.run_multiprogram(&mut programs, None);
            assert_eq!(report.rollup.instructions, 6000);
            assert!(report.context_switches > 0);
            assert!(report.processes.iter().all(|p| p.minor_faults > 0));
            assert!(matches!(
                report.rollup.engine,
                Some(EngineReport::Midgard { .. })
            ));
        }
    }

    fn two_process_system(asid_tags: bool) -> (System, ProcessId, ProcessId) {
        let mut config = SystemConfig::small_test();
        config.mmu.asid_tlb_tags = asid_tags;
        let mut system = System::new(config);
        let a = system.pid();
        let b = system.spawn_process();
        system
            .mmap_anonymous_for(a, VirtAddr::new(0x1000_0000), 16 * 1024 * 1024)
            .unwrap();
        system
            .mmap_anonymous_for(b, VirtAddr::new(0x1000_0000), 16 * 1024 * 1024)
            .unwrap();
        (system, a, b)
    }

    #[test]
    fn multiprogram_run_interleaves_and_reports_per_process() {
        let (mut system, a, b) = two_process_system(true);
        let mut fa = SliceFrontend::new("A", linear_trace(0x1000_0000, 8000, 64));
        let mut fb = SliceFrontend::new("B", linear_trace(0x1000_0000, 6000, 4096));
        let report = {
            let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> =
                vec![(a, &mut fa), (b, &mut fb)];
            system.run_multiprogram(&mut programs, None)
        };
        assert_eq!(report.processes.len(), 2);
        let ra = &report.processes[0];
        let rb = &report.processes[1];
        assert_eq!(ra.workload, "A");
        assert_eq!(rb.workload, "B");
        assert_eq!(ra.instructions, 8000);
        assert_eq!(rb.instructions, 6000);
        assert_eq!(report.rollup.instructions, 14_000);
        assert_eq!(ra.instructions, ra.scheduled_instructions);
        assert!(report.context_switches > 0, "quantum is 2500 instructions");
        assert!(ra.minor_faults > 0);
        assert!(rb.minor_faults > 0);
        // Same virtual addresses, distinct address spaces: both took their
        // own faults and their own page walks.
        assert!(ra.tlb_translations > 0);
        assert!(rb.tlb_translations > 0);
        // Per-process cycles sum to the total (every cycle is attributed).
        assert!(ra.cycles + rb.cycles <= report.rollup.cycles);
    }

    #[test]
    fn asid_tags_avoid_flush_induced_tlb_misses() {
        let run = |asid_tags: bool| {
            let (mut system, a, b) = two_process_system(asid_tags);
            // Small working sets that fit the TLB, revisited every quantum.
            let mut fa = SliceFrontend::new("A", linear_trace(0x1000_0000, 12_000, 0));
            let mut fb = SliceFrontend::new("B", linear_trace(0x1000_0000, 12_000, 0));
            let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> =
                vec![(a, &mut fa), (b, &mut fb)];
            let report = system.run_multiprogram(&mut programs, None);
            let walks: u64 = report.processes.iter().map(|p| p.page_walks).sum();
            (report, walks)
        };
        let (tagged_report, tagged_walks) = run(true);
        let (flushed_report, flushed_walks) = run(false);
        assert_eq!(tagged_report.switch_flushed_tlb_entries, 0);
        assert!(flushed_report.switch_flushed_tlb_entries > 0);
        assert!(
            tagged_walks < flushed_walks,
            "ASID tags must avoid flush-induced walks: {tagged_walks} vs {flushed_walks}"
        );
    }

    #[test]
    fn multiprogram_respects_the_total_instruction_limit() {
        let (mut system, a, b) = two_process_system(true);
        let mut fa = SliceFrontend::new("A", linear_trace(0x1000_0000, 50_000, 64));
        let mut fb = SliceFrontend::new("B", linear_trace(0x1000_0000, 50_000, 64));
        let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = vec![(a, &mut fa), (b, &mut fb)];
        let report = system.run_multiprogram(&mut programs, Some(10_000));
        assert_eq!(report.rollup.instructions, 10_000);
        let per_proc: u64 = report.processes.iter().map(|p| p.instructions).sum();
        assert_eq!(per_proc, 10_000);
    }

    /// A machine so small that two modest processes cannot coexist: 4 MiB
    /// of memory, no swap to reclaim into — the OOM killer's home turf.
    fn oom_pressure_config() -> SystemConfig {
        let mut config = SystemConfig::small_test();
        config.os.memory_bytes = 4 * 1024 * 1024;
        config.os.swap_bytes = 0;
        config.os.policy = mimic_os::AllocationPolicy::BuddyFourK;
        config.os.thp = mimic_os::ThpConfig::disabled();
        config.os.populate_page_cache = false;
        config
    }

    #[test]
    fn oom_failures_are_counted_apart_from_segfaults() {
        // A sole process that outgrows memory: there is no victim to kill
        // (the faulter is never its own victim), so the faults fail — as
        // OOM failures, not as the segfaults the old catch-all arm charged.
        let mut system = System::new(oom_pressure_config());
        system
            .mmap_anonymous(VirtAddr::new(0x1000_0000), 8 * 1024 * 1024)
            .unwrap();
        let trace = linear_trace(0x1000_0000, 2000, 4096);
        let report = system.run(&mut SliceFrontend::new("hog", trace), None);
        assert_eq!(report.instructions, 2000, "failed accesses are skipped");
        assert_eq!(system.segfaults(), 0, "pressure is not an addressing error");
        assert!(system.oom_failures() > 0);
        let oom = report.oom.expect("oom section appears once failures occur");
        assert_eq!(oom.oom_failures, system.oom_failures());
        assert_eq!(oom.kills, 0);
        assert!(oom.reclaim_retries > 0, "reclaim ran before giving up");
        assert!(!system.os().process(system.pid()).is_exited());
        system.check_invariants().unwrap();
    }

    #[test]
    fn oom_kill_sacrifices_a_process_and_attributes_the_survivors() {
        let mut config = oom_pressure_config();
        config.os.sched_quantum = 500;
        let mut system = System::new(config);
        let a = system.pid();
        let b = system.spawn_process();
        for pid in [a, b] {
            system
                .mmap_anonymous_for(pid, VirtAddr::new(0x1000_0000), 16 * 1024 * 1024)
                .unwrap();
        }
        // The light process loops on one page; the hog streams through
        // 12 MiB of a 4 MiB machine, forcing the kernel to sacrifice the
        // light process (the faulter is exempt) and then to fail outright
        // once no victims remain.
        let mut fa = SliceFrontend::new("light", linear_trace(0x1000_0000, 20_000, 0));
        let mut fb = SliceFrontend::new("hog", linear_trace(0x1000_0000, 3000, 4096));
        let report = {
            let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> =
                vec![(a, &mut fa), (b, &mut fb)];
            system.run_multiprogram(&mut programs, None)
        };
        let oom = report
            .rollup
            .oom
            .expect("pressure must reach the OOM killer");
        assert!(oom.kills >= 1);
        assert!(oom.freed_bytes > 0);
        let light = &report.processes[0];
        let hog = &report.processes[1];
        assert_eq!(light.exit_status, ProcessExitStatus::OomKilled);
        assert_eq!(hog.exit_status, ProcessExitStatus::Completed);
        assert_eq!(hog.instructions, 3000, "the survivor runs to completion");
        assert!(light.instructions < 20_000, "the victim died mid-trace");
        assert!(hog.oom_failures > 0, "with no victims left, faults fail");
        assert_eq!(light.segfaults + hog.segfaults, 0);
        assert_eq!(
            report
                .processes
                .iter()
                .filter(|p| p.exit_status == ProcessExitStatus::OomKilled)
                .count() as u64,
            oom.kills,
            "each kill terminates exactly one reported process"
        );
        assert_eq!(system.os().process(a).resident_bytes(), 0);
        assert_translation_coherence(&system);
        system.check_invariants().unwrap();
    }

    #[test]
    fn segfaulted_processes_report_their_exit_status() {
        let mut system = small_system();
        let pid = system.pid();
        let mut f = SliceFrontend::new(
            "segv",
            vec![Instruction::load(
                VirtAddr::new(0x400),
                VirtAddr::new(0xdead_0000_0000),
            )],
        );
        let report = {
            let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = vec![(pid, &mut f)];
            system.run_multiprogram(&mut programs, None)
        };
        assert_eq!(
            report.processes[0].exit_status,
            ProcessExitStatus::Segfaulted
        );
        assert_eq!(report.processes[0].oom_failures, 0);
        assert!(
            report.rollup.oom.is_none(),
            "no oom section without pressure"
        );
    }

    #[test]
    fn the_fence_catches_a_planted_stale_translation() {
        let mut system = small_system();
        let trace = linear_trace(0x1000_0000, 200, 4096);
        system.run(&mut SliceFrontend::new("warm", trace), None);
        system.check_invariants().unwrap();
        // Install a translation the kernel never established: the fence
        // must flag it (this is exactly the corruption a missed shootdown
        // would leave behind).
        let bogus = Mapping {
            vaddr: VirtAddr::new(0xdead_0000),
            paddr: PhysAddr::new(0x30_0000),
            page_size: PageSize::Size4K,
        };
        let asid = System::asid_of(system.pid());
        system.core0.mmu.install_mapping(asid, &bogus);
        let violation = system.check_invariants().unwrap_err();
        assert!(
            violation.contains("stale"),
            "unexpected message: {violation}"
        );
    }

    #[test]
    fn oom_kill_keeps_every_engine_coherent_at_one_and_four_cores() {
        use mimic_os::AllocationPolicy;
        use mmu_sim::{EngineConfig, MidgardConfig, RmmConfig, UtopiaMmuConfig};
        let engines: Vec<(&str, EngineConfig, AllocationPolicy)> = vec![
            ("pt", EngineConfig::PageTable, AllocationPolicy::BuddyFourK),
            (
                "midgard",
                EngineConfig::Midgard(MidgardConfig::paper_baseline()),
                AllocationPolicy::BuddyFourK,
            ),
            (
                "rmm",
                EngineConfig::Rmm(RmmConfig::paper_baseline()),
                AllocationPolicy::EagerPaging,
            ),
            (
                "utopia",
                EngineConfig::Utopia(
                    UtopiaMmuConfig::paper_baseline().with_restseg_bytes(2 * 1024 * 1024),
                ),
                AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
                    2 * 1024 * 1024,
                    16,
                    PageSize::Size4K,
                )),
            ),
        ];
        for cores in [1usize, 4] {
            for (name, engine, policy) in &engines {
                let mut config = oom_pressure_config()
                    .with_engine(*engine)
                    .with_cores(cores)
                    .with_invariant_checks(512);
                config.os.policy = *policy;
                config.os.sched_quantum = 500;
                let mut system = System::new(config);
                let a = system.pid();
                let b = system.spawn_process();
                for pid in [a, b] {
                    system
                        .mmap_anonymous_for(pid, VirtAddr::new(0x1000_0000), 16 * 1024 * 1024)
                        .unwrap();
                }
                let mut fa = SliceFrontend::new("light", linear_trace(0x1000_0000, 20_000, 0));
                let mut fb = SliceFrontend::new("hog", linear_trace(0x1000_0000, 3000, 4096));
                let report = {
                    let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> =
                        vec![(a, &mut fa), (b, &mut fb)];
                    system.run_multiprogram(&mut programs, None)
                };
                let oom = report.rollup.oom.unwrap_or_default();
                assert!(oom.kills >= 1, "{name}/{cores} cores: pressure must kill");
                system
                    .check_invariants()
                    .unwrap_or_else(|v| panic!("{name}/{cores} cores: {v}"));
            }
        }
    }

    #[test]
    fn multiprogram_rollup_and_table_render() {
        let (mut system, a, b) = two_process_system(true);
        let mut fa = SliceFrontend::new("A", linear_trace(0x1000_0000, 3000, 64));
        let mut fb = SliceFrontend::new("B", linear_trace(0x1000_0000, 3000, 64));
        let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = vec![(a, &mut fa), (b, &mut fb)];
        let report = system.run_multiprogram(&mut programs, None);
        assert_eq!(report.rollup.workload, "A+B");
        let table = report.to_table();
        assert!(table.contains("pid"));
        assert!(table.contains("context_switches"));
    }
}
