//! The two communication channels between the architectural simulator and
//! MimicOS.
//!
//! In the paper, the simulator and MimicOS run as separate processes and
//! exchange messages through POSIX shared memory, synchronized by magic
//! instructions. In this Rust reproduction both live in one process, but the
//! *protocol* is preserved: the simulator posts a [`KernelRequest`] on the
//! functional channel, MimicOS processes it and posts a [`KernelResponse`]
//! plus an instruction stream on the instruction-stream channel, and the
//! simulator consumes both before resuming the application. Protocol
//! violations (reading a response before posting a request, dropping an
//! unconsumed stream) are detected and reported, which keeps the integration
//! honest even without real IPC.

use mimic_os::{InvalidationVictim, KernelInstructionStream, Mapping, ProcessId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vm_types::{Counter, VirtAddr, VmError, VmResult};

/// A functional request from the simulator to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelRequest {
    /// The MMU could not translate `vaddr`: handle the page fault.
    PageFault {
        /// Faulting process.
        pid: ProcessId,
        /// Faulting virtual address.
        vaddr: VirtAddr,
        /// Whether the faulting access was a write.
        is_write: bool,
    },
    /// The application requested an anonymous mapping.
    MmapAnonymous {
        /// Requesting process.
        pid: ProcessId,
        /// Desired start address.
        start: VirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// Periodic housekeeping tick (khugepaged scan, pool refill).
    BackgroundTick {
        /// Process whose address space khugepaged scans.
        pid: ProcessId,
    },
}

/// A functional response from the kernel to the simulator.
///
/// (Only `Serialize` is derived: the embedded [`VmError`] borrows a
/// `&'static str` and therefore cannot be deserialized from arbitrary
/// input.)
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum KernelResponse {
    /// A page fault was handled; the simulator should install the mapping
    /// and restart the page-table walk.
    FaultHandled {
        /// The established mapping.
        mapping: Mapping,
        /// Mappings created as side effects (promotions, eager ranges).
        additional: Vec<Mapping>,
        /// Storage-device latency incurred, in nanoseconds.
        device_latency_ns: f64,
    },
    /// The fault could not be handled (e.g. a segmentation fault).
    FaultFailed {
        /// Why the fault failed.
        error: VmError,
    },
    /// An mmap request completed.
    MmapDone,
    /// A background tick completed.
    TickDone,
}

/// The functional channel: request/response queues with protocol checking.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FunctionalChannel {
    requests: VecDeque<KernelRequest>,
    responses: VecDeque<KernelResponse>,
    /// Requests posted by the simulator.
    pub requests_sent: Counter,
    /// Responses posted by the kernel.
    pub responses_sent: Counter,
}

impl FunctionalChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        FunctionalChannel::default()
    }

    /// Simulator side: posts a request to the kernel.
    pub fn post_request(&mut self, request: KernelRequest) {
        self.requests.push_back(request);
        self.requests_sent.inc();
    }

    /// Kernel side: takes the next pending request.
    pub fn take_request(&mut self) -> Option<KernelRequest> {
        self.requests.pop_front()
    }

    /// Kernel side: posts a response.
    pub fn post_response(&mut self, response: KernelResponse) {
        self.responses.push_back(response);
        self.responses_sent.inc();
    }

    /// Simulator side: takes the response to its earlier request.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::ChannelProtocol`] if no response is pending, which
    /// indicates a protocol violation (the kernel never answered).
    pub fn take_response(&mut self) -> VmResult<KernelResponse> {
        self.responses.pop_front().ok_or(VmError::ChannelProtocol {
            reason: "response read before the kernel posted one".to_string(),
        })
    }

    /// Number of requests the kernel has not yet consumed.
    pub fn pending_requests(&self) -> usize {
        self.requests.len()
    }
}

/// The instruction-stream channel: kernel instruction streams queued for
/// injection into the core model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstructionStreamChannel {
    streams: VecDeque<KernelInstructionStream>,
    /// Streams injected so far.
    pub streams_sent: Counter,
    /// Total kernel instructions carried by the channel.
    pub instructions_sent: Counter,
}

impl InstructionStreamChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        InstructionStreamChannel::default()
    }

    /// Kernel side: sends an instruction stream for injection.
    pub fn send(&mut self, stream: KernelInstructionStream) {
        self.instructions_sent.add(stream.instruction_count());
        self.streams_sent.inc();
        self.streams.push_back(stream);
    }

    /// Simulator side: takes the next stream to inject, if any.
    pub fn receive(&mut self) -> Option<KernelInstructionStream> {
        self.streams.pop_front()
    }

    /// Number of streams waiting for injection.
    pub fn pending(&self) -> usize {
        self.streams.len()
    }
}

/// A TLB-shootdown inter-processor interrupt: the initiating core asks a
/// remote core to invalidate its local translations for the victim pages.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShootdownIpi {
    /// The core that initiated the shootdown (runs the reclaim pass).
    pub from_core: usize,
    /// The pages every remote core must stop translating.
    pub victims: Vec<InvalidationVictim>,
}

/// The inter-core message channel carrying shootdown IPIs and their acks.
///
/// Mirrors the functional channel's honesty checks: an initiator that
/// collects acks before every remote core has posted one is a protocol
/// violation (a real kernel spinning in `smp_call_function_many` would
/// deadlock or, worse, let a stale translation survive).
///
/// Delivery is immediate: an IPI is visible to the remote core within
/// the initiating fault, never deferred. Parallel host-thread stepping
/// keeps this contract by construction — the epoch planner only runs
/// epochs when no reclaim (and hence no shootdown) can fire, so every
/// IPI is sent and serviced on the serial path in core-index order.
#[derive(Debug, Clone, Serialize)]
pub struct InterCoreChannel {
    /// One IPI inbox per core.
    inboxes: Vec<VecDeque<ShootdownIpi>>,
    /// Acks posted by remote cores, in completion order.
    acks: VecDeque<usize>,
    /// IPIs delivered to remote inboxes.
    pub ipis_sent: Counter,
    /// Acks posted by remote cores.
    pub acks_sent: Counter,
}

impl InterCoreChannel {
    /// Creates a channel connecting `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        InterCoreChannel {
            inboxes: (0..num_cores.max(1)).map(|_| VecDeque::new()).collect(),
            acks: VecDeque::new(),
            ipis_sent: Counter::new(),
            acks_sent: Counter::new(),
        }
    }

    /// Number of cores the channel connects.
    pub fn num_cores(&self) -> usize {
        self.inboxes.len()
    }

    /// Initiator side: broadcasts a shootdown IPI to every core except
    /// `from`. Returns the number of remote cores that must ack.
    pub fn broadcast(&mut self, from: usize, victims: &[InvalidationVictim]) -> usize {
        let mut remotes = 0;
        for core in 0..self.inboxes.len() {
            if core == from {
                continue;
            }
            self.inboxes[core].push_back(ShootdownIpi {
                from_core: from,
                victims: victims.to_vec(),
            });
            self.ipis_sent.inc();
            remotes += 1;
        }
        remotes
    }

    /// Remote side: takes the next IPI pending for `core`, if any.
    pub fn take_for(&mut self, core: usize) -> Option<ShootdownIpi> {
        self.inboxes[core].pop_front()
    }

    /// Remote side: acknowledges a processed IPI.
    pub fn post_ack(&mut self, core: usize) {
        self.acks.push_back(core);
        self.acks_sent.inc();
    }

    /// Initiator side: collects exactly `expected` acks, completing the
    /// shootdown round.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::ChannelProtocol`] when fewer acks are pending —
    /// a remote core dropped the IPI without tearing its state down.
    pub fn take_acks(&mut self, expected: usize) -> VmResult<()> {
        if self.acks.len() < expected {
            return Err(VmError::ChannelProtocol {
                reason: format!(
                    "shootdown initiator expected {expected} acks, found {}",
                    self.acks.len()
                ),
            });
        }
        for _ in 0..expected {
            self.acks.pop_front();
        }
        Ok(())
    }

    /// IPIs not yet consumed by `core`.
    pub fn pending_for(&self, core: usize) -> usize {
        self.inboxes[core].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimic_os::{KernelRoutine, ProcessId};

    #[test]
    fn request_response_roundtrip() {
        let mut ch = FunctionalChannel::new();
        ch.post_request(KernelRequest::PageFault {
            pid: ProcessId(0),
            vaddr: VirtAddr::new(0x1000),
            is_write: false,
        });
        assert_eq!(ch.pending_requests(), 1);
        let req = ch.take_request().unwrap();
        assert!(matches!(req, KernelRequest::PageFault { .. }));
        ch.post_response(KernelResponse::MmapDone);
        assert_eq!(ch.take_response().unwrap(), KernelResponse::MmapDone);
        assert_eq!(ch.requests_sent.get(), 1);
        assert_eq!(ch.responses_sent.get(), 1);
    }

    #[test]
    fn missing_response_is_a_protocol_violation() {
        let mut ch = FunctionalChannel::new();
        assert!(matches!(
            ch.take_response(),
            Err(VmError::ChannelProtocol { .. })
        ));
    }

    #[test]
    fn instruction_stream_channel_preserves_order_and_counts() {
        let mut ch = InstructionStreamChannel::new();
        let mut a = KernelInstructionStream::new(KernelRoutine::PageFaultHandler);
        a.compute(10);
        let mut b = KernelInstructionStream::new(KernelRoutine::Khugepaged);
        b.compute(20);
        ch.send(a.clone());
        ch.send(b.clone());
        assert_eq!(ch.pending(), 2);
        assert_eq!(ch.instructions_sent.get(), 30);
        assert_eq!(ch.receive().unwrap(), a);
        assert_eq!(ch.receive().unwrap(), b);
        assert!(ch.receive().is_none());
    }

    fn victim(vaddr: u64) -> InvalidationVictim {
        InvalidationVictim {
            pid: ProcessId(0),
            vaddr: VirtAddr::new(vaddr),
            page_size: vm_types::PageSize::Size4K,
        }
    }

    #[test]
    fn shootdown_broadcast_reaches_every_remote_core() {
        let mut ch = InterCoreChannel::new(4);
        let remotes = ch.broadcast(1, &[victim(0x1000)]);
        assert_eq!(remotes, 3);
        assert_eq!(ch.pending_for(1), 0, "the initiator never IPIs itself");
        for core in [0, 2, 3] {
            let ipi = ch.take_for(core).expect("remote core has an IPI");
            assert_eq!(ipi.from_core, 1);
            assert_eq!(ipi.victims.len(), 1);
            ch.post_ack(core);
        }
        ch.take_acks(remotes).expect("all remotes acked");
        assert_eq!(ch.ipis_sent.get(), 3);
        assert_eq!(ch.acks_sent.get(), 3);
    }

    #[test]
    fn missing_ack_is_a_protocol_violation() {
        let mut ch = InterCoreChannel::new(2);
        let remotes = ch.broadcast(0, &[victim(0x2000)]);
        assert_eq!(remotes, 1);
        // Remote takes the IPI but never acks: collecting must fail rather
        // than silently complete the shootdown.
        let _ = ch.take_for(1);
        assert!(matches!(
            ch.take_acks(remotes),
            Err(VmError::ChannelProtocol { .. })
        ));
    }

    #[test]
    fn single_core_broadcast_has_no_remotes() {
        let mut ch = InterCoreChannel::new(1);
        assert_eq!(ch.broadcast(0, &[victim(0x3000)]), 0);
        assert!(ch.take_acks(0).is_ok());
        assert_eq!(ch.ipis_sent.get(), 0);
    }
}
