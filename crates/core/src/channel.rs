//! The two communication channels between the architectural simulator and
//! MimicOS.
//!
//! In the paper, the simulator and MimicOS run as separate processes and
//! exchange messages through POSIX shared memory, synchronized by magic
//! instructions. In this Rust reproduction both live in one process, but the
//! *protocol* is preserved: the simulator posts a [`KernelRequest`] on the
//! functional channel, MimicOS processes it and posts a [`KernelResponse`]
//! plus an instruction stream on the instruction-stream channel, and the
//! simulator consumes both before resuming the application. Protocol
//! violations (reading a response before posting a request, dropping an
//! unconsumed stream) are detected and reported, which keeps the integration
//! honest even without real IPC.

use mimic_os::{KernelInstructionStream, Mapping, ProcessId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vm_types::{Counter, VirtAddr, VmError, VmResult};

/// A functional request from the simulator to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelRequest {
    /// The MMU could not translate `vaddr`: handle the page fault.
    PageFault {
        /// Faulting process.
        pid: ProcessId,
        /// Faulting virtual address.
        vaddr: VirtAddr,
        /// Whether the faulting access was a write.
        is_write: bool,
    },
    /// The application requested an anonymous mapping.
    MmapAnonymous {
        /// Requesting process.
        pid: ProcessId,
        /// Desired start address.
        start: VirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// Periodic housekeeping tick (khugepaged scan, pool refill).
    BackgroundTick {
        /// Process whose address space khugepaged scans.
        pid: ProcessId,
    },
}

/// A functional response from the kernel to the simulator.
///
/// (Only `Serialize` is derived: the embedded [`VmError`] borrows a
/// `&'static str` and therefore cannot be deserialized from arbitrary
/// input.)
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum KernelResponse {
    /// A page fault was handled; the simulator should install the mapping
    /// and restart the page-table walk.
    FaultHandled {
        /// The established mapping.
        mapping: Mapping,
        /// Mappings created as side effects (promotions, eager ranges).
        additional: Vec<Mapping>,
        /// Storage-device latency incurred, in nanoseconds.
        device_latency_ns: f64,
    },
    /// The fault could not be handled (e.g. a segmentation fault).
    FaultFailed {
        /// Why the fault failed.
        error: VmError,
    },
    /// An mmap request completed.
    MmapDone,
    /// A background tick completed.
    TickDone,
}

/// The functional channel: request/response queues with protocol checking.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FunctionalChannel {
    requests: VecDeque<KernelRequest>,
    responses: VecDeque<KernelResponse>,
    /// Requests posted by the simulator.
    pub requests_sent: Counter,
    /// Responses posted by the kernel.
    pub responses_sent: Counter,
}

impl FunctionalChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        FunctionalChannel::default()
    }

    /// Simulator side: posts a request to the kernel.
    pub fn post_request(&mut self, request: KernelRequest) {
        self.requests.push_back(request);
        self.requests_sent.inc();
    }

    /// Kernel side: takes the next pending request.
    pub fn take_request(&mut self) -> Option<KernelRequest> {
        self.requests.pop_front()
    }

    /// Kernel side: posts a response.
    pub fn post_response(&mut self, response: KernelResponse) {
        self.responses.push_back(response);
        self.responses_sent.inc();
    }

    /// Simulator side: takes the response to its earlier request.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::ChannelProtocol`] if no response is pending, which
    /// indicates a protocol violation (the kernel never answered).
    pub fn take_response(&mut self) -> VmResult<KernelResponse> {
        self.responses.pop_front().ok_or(VmError::ChannelProtocol {
            reason: "response read before the kernel posted one".to_string(),
        })
    }

    /// Number of requests the kernel has not yet consumed.
    pub fn pending_requests(&self) -> usize {
        self.requests.len()
    }
}

/// The instruction-stream channel: kernel instruction streams queued for
/// injection into the core model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstructionStreamChannel {
    streams: VecDeque<KernelInstructionStream>,
    /// Streams injected so far.
    pub streams_sent: Counter,
    /// Total kernel instructions carried by the channel.
    pub instructions_sent: Counter,
}

impl InstructionStreamChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        InstructionStreamChannel::default()
    }

    /// Kernel side: sends an instruction stream for injection.
    pub fn send(&mut self, stream: KernelInstructionStream) {
        self.instructions_sent.add(stream.instruction_count());
        self.streams_sent.inc();
        self.streams.push_back(stream);
    }

    /// Simulator side: takes the next stream to inject, if any.
    pub fn receive(&mut self) -> Option<KernelInstructionStream> {
        self.streams.pop_front()
    }

    /// Number of streams waiting for injection.
    pub fn pending(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimic_os::{KernelRoutine, ProcessId};

    #[test]
    fn request_response_roundtrip() {
        let mut ch = FunctionalChannel::new();
        ch.post_request(KernelRequest::PageFault {
            pid: ProcessId(0),
            vaddr: VirtAddr::new(0x1000),
            is_write: false,
        });
        assert_eq!(ch.pending_requests(), 1);
        let req = ch.take_request().unwrap();
        assert!(matches!(req, KernelRequest::PageFault { .. }));
        ch.post_response(KernelResponse::MmapDone);
        assert_eq!(ch.take_response().unwrap(), KernelResponse::MmapDone);
        assert_eq!(ch.requests_sent.get(), 1);
        assert_eq!(ch.responses_sent.get(), 1);
    }

    #[test]
    fn missing_response_is_a_protocol_violation() {
        let mut ch = FunctionalChannel::new();
        assert!(matches!(
            ch.take_response(),
            Err(VmError::ChannelProtocol { .. })
        ));
    }

    #[test]
    fn instruction_stream_channel_preserves_order_and_counts() {
        let mut ch = InstructionStreamChannel::new();
        let mut a = KernelInstructionStream::new(KernelRoutine::PageFaultHandler);
        a.compute(10);
        let mut b = KernelInstructionStream::new(KernelRoutine::Khugepaged);
        b.compute(20);
        ch.send(a.clone());
        ch.send(b.clone());
        assert_eq!(ch.pending(), 2);
        assert_eq!(ch.instructions_sent.get(), 30);
        assert_eq!(ch.receive().unwrap(), a);
        assert_eq!(ch.receive().unwrap(), b);
        assert!(ch.receive().is_none());
    }
}
