//! System-level configuration: the simulated machine (Table 4 of the paper)
//! and the simulation mode (detailed Virtuoso vs. fixed-latency emulation).

use cache_sim::HierarchyConfig;
use dram_sim::DramConfig;
use mimic_os::OsConfig;
use mmu_sim::{EngineConfig, MmuConfig, PageTableKind, TlbHierarchyConfig};
use serde::{Deserialize, Serialize};
use sim_core::CoreConfig;
use vm_types::{Cycles, PhysAddr};

/// How OS and translation overheads are simulated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SimulationMode {
    /// The Virtuoso methodology: page walks traverse the memory hierarchy,
    /// page faults are handled by MimicOS and its instruction stream is
    /// injected into the core model.
    #[default]
    Detailed,
    /// The emulation-based baseline (e.g. unmodified Sniper/ChampSim):
    /// page walks and page faults cost fixed latencies and generate no
    /// memory traffic; MimicOS is consulted only functionally.
    Emulation {
        /// Fixed page-table-walk latency charged on every L2 TLB miss.
        fixed_ptw_latency: Cycles,
        /// Fixed page-fault latency charged on every fault.
        fixed_fault_latency: Cycles,
    },
}

impl SimulationMode {
    /// The emulation baseline used in the paper's Fig. 8 comparison: the
    /// fixed PTW latency is set to the average PTW latency of the reference
    /// machine and the fault latency to a canonical 1 µs.
    pub fn emulation_baseline() -> Self {
        SimulationMode::Emulation {
            fixed_ptw_latency: Cycles::new(80),
            fixed_fault_latency: Cycles::new(2900),
        }
    }

    /// `true` for the detailed (Virtuoso) mode.
    pub fn is_detailed(&self) -> bool {
        matches!(self, SimulationMode::Detailed)
    }
}

/// Configuration of the whole simulated system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core timing model.
    pub core: CoreConfig,
    /// Cache hierarchy.
    pub caches: HierarchyConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// MMU (TLBs, PWCs, page-table design).
    pub mmu: MmuConfig,
    /// Translation engine the machine runs (conventional page table,
    /// Midgard, RMM or Utopia). The default page-table engine drives the
    /// [`MmuConfig`] exactly as before; the alternative engines layer
    /// their design-specific hardware on top of it.
    pub engine: EngineConfig,
    /// MimicOS configuration.
    pub os: OsConfig,
    /// Simulation mode.
    pub mode: SimulationMode,
    /// Run MimicOS housekeeping (khugepaged, pool refill) every this many
    /// retired application instructions (0 disables housekeeping).
    pub housekeeping_interval: u64,
    /// Run the runtime coherence fence
    /// ([`System::check_invariants`](crate::System::check_invariants))
    /// every this many retired application instructions (0, the default,
    /// disables the fence). The fence cross-checks kernel mapping tables
    /// against all cached translation state and panics on the first
    /// violation; it is a debugging and chaos-testing aid, not part of the
    /// simulated machine.
    pub invariant_check_interval: u64,
    /// Host threads the sharded multi-core loop steps simulated cores on
    /// (clamped to `[1, num_cores]` at run time). This is a *host*
    /// performance knob, not part of the simulated machine: any value
    /// produces bit-identical [`SimulationReport`](crate::report::SimulationReport)s — parallel epochs
    /// defer all shared-state work to a serial barrier replay in
    /// core-index order, so the simulated schedule never depends on host
    /// scheduling. The test-config constructors honour the
    /// `VIRTUOSO_THREADS` environment variable so CI can sweep it.
    pub host_threads: usize,
}

/// Reads the `VIRTUOSO_THREADS` environment knob (defaults to 1).
fn env_host_threads() -> usize {
    std::env::var("VIRTUOSO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

impl SystemConfig {
    /// The paper's baseline system (Table 4) with the given page-table
    /// design and the detailed simulation mode.
    pub fn paper_baseline(page_table: PageTableKind) -> Self {
        SystemConfig {
            core: CoreConfig::paper_baseline(),
            caches: HierarchyConfig::paper_baseline(),
            dram: DramConfig::ddr4_2400(),
            mmu: MmuConfig {
                tlb: TlbHierarchyConfig::paper_baseline(),
                page_walk_caches: true,
                page_table,
                metadata_base: PhysAddr::new(0x30_0000_0000),
                asid_tlb_tags: true,
                skip_empty_size_probes: false,
            },
            engine: EngineConfig::PageTable,
            os: OsConfig::paper_baseline(),
            mode: SimulationMode::Detailed,
            housekeeping_interval: 100_000,
            invariant_check_interval: 0,
            host_threads: env_host_threads(),
        }
    }

    /// A small, fast configuration for unit tests, integration tests and
    /// examples: small caches/TLBs, 256 MB of memory, no pre-fragmentation.
    pub fn small_test() -> Self {
        SystemConfig {
            core: CoreConfig::paper_baseline(),
            caches: HierarchyConfig::small_test(),
            dram: DramConfig::small_test(),
            mmu: MmuConfig::small_test(PageTableKind::Radix),
            engine: EngineConfig::PageTable,
            os: OsConfig::small_test(),
            mode: SimulationMode::Detailed,
            housekeeping_interval: 10_000,
            invariant_check_interval: 0,
            host_threads: env_host_threads(),
        }
    }

    /// Switches to the emulation-baseline mode (fixed latencies), keeping
    /// everything else identical — the comparison of Fig. 8.
    pub fn with_emulation_baseline(mut self) -> Self {
        self.mode = SimulationMode::emulation_baseline();
        self
    }

    /// Switches the page-table design, keeping everything else identical —
    /// the sweep of Use Case 1.
    pub fn with_page_table(mut self, kind: PageTableKind) -> Self {
        self.mmu.page_table = kind;
        self
    }

    /// Switches the translation engine, keeping everything else identical —
    /// the engine comparisons of Use Cases 3–5. The Rmm engine is usually
    /// paired with [`mimic_os::AllocationPolicy::EagerPaging`] (ranges come
    /// from eager allocation) and the Utopia engine with
    /// [`mimic_os::AllocationPolicy::Utopia`] (RestSeg placement happens in
    /// the kernel); pair them explicitly in the experiment configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Switches the allocation policy, keeping everything else identical —
    /// the sweep of Use Case 2.
    pub fn with_allocation_policy(mut self, policy: mimic_os::AllocationPolicy) -> Self {
        self.os.policy = policy;
        self
    }

    /// Sets the number of simulated cores, keeping everything else
    /// identical. `1` (the default everywhere) is the single-core model;
    /// larger values shard the translation frontend per core and turn
    /// reclaim invalidations into cross-core shootdown IPIs.
    pub fn with_cores(mut self, num_cores: usize) -> Self {
        self.os.num_cores = num_cores;
        self
    }

    /// Arms the runtime coherence fence to run every `interval` retired
    /// application instructions (0 disables it), keeping everything else
    /// identical.
    pub fn with_invariant_checks(mut self, interval: u64) -> Self {
        self.invariant_check_interval = interval;
        self
    }

    /// Sets the number of host threads the sharded multi-core loop steps
    /// simulated cores on, keeping everything else identical. Reports are
    /// bit-identical for every value — this knob trades host CPU for wall
    /// clock, never simulated behaviour.
    pub fn with_host_threads(mut self, host_threads: usize) -> Self {
        self.host_threads = host_threads.max(1);
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_baseline(PageTableKind::Radix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table4_headlines() {
        let cfg = SystemConfig::paper_baseline(PageTableKind::Radix);
        assert!((cfg.core.frequency.ghz() - 2.9).abs() < 1e-9);
        assert_eq!(cfg.caches.l2.capacity_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.mmu.tlb.l2.entries, 2048);
        assert_eq!(cfg.os.memory_bytes, 256 * 1024 * 1024 * 1024);
        assert!(cfg.mode.is_detailed());
    }

    #[test]
    fn emulation_baseline_uses_fixed_latencies() {
        let cfg = SystemConfig::small_test().with_emulation_baseline();
        match cfg.mode {
            SimulationMode::Emulation {
                fixed_ptw_latency,
                fixed_fault_latency,
            } => {
                assert!(fixed_ptw_latency.raw() > 0);
                assert!(fixed_fault_latency.raw() > 0);
            }
            SimulationMode::Detailed => panic!("expected emulation mode"),
        }
    }

    #[test]
    fn builders_change_only_their_field() {
        let base = SystemConfig::small_test();
        let ech = base.clone().with_page_table(PageTableKind::ElasticCuckoo);
        assert_eq!(ech.mmu.page_table, PageTableKind::ElasticCuckoo);
        assert_eq!(ech.os, base.os);
        let bd = base
            .clone()
            .with_allocation_policy(mimic_os::AllocationPolicy::BuddyFourK);
        assert_eq!(bd.os.policy, mimic_os::AllocationPolicy::BuddyFourK);
        assert_eq!(bd.mmu, base.mmu);
        let mc = base.clone().with_cores(4);
        assert_eq!(mc.os.num_cores, 4);
        assert_eq!(base.os.num_cores, 1);
        assert_eq!(mc.mmu, base.mmu);
    }
}
