//! **Virtuoso**: an imitation-based OS simulation framework for fast and
//! accurate virtual-memory research — the primary contribution of the paper
//! this repository reproduces.
//!
//! Virtuoso couples a lightweight userspace kernel ([`mimic_os::MimicOs`])
//! with an architectural simulator (core model, cache hierarchy, DRAM and
//! SSD models, MMU) through two channels:
//!
//! * the **functional channel** ([`channel::FunctionalChannel`]) carries
//!   functional events — page faults, mmap requests — from the simulator to
//!   MimicOS and the functional results back;
//! * the **instruction-stream channel**
//!   ([`channel::InstructionStreamChannel`]) carries the kernel's dynamically
//!   generated instruction streams into the simulator's core model, so the
//!   OS work is charged for latency, cache pollution and DRAM contention.
//!
//! The [`System`] type assembles the full simulated machine and runs
//! workloads expressed as [`sim_core::TraceSource`]s. Two simulation modes
//! are provided:
//!
//! * [`SimulationMode::Detailed`] — the Virtuoso methodology (walks, faults
//!   and kernel streams are simulated in detail);
//! * [`SimulationMode::Emulation`] — the "baseline Sniper" methodology the
//!   paper compares against (fixed page-walk and page-fault latencies).
//!
//! # Examples
//!
//! ```
//! use virtuoso::{SimulationMode, System, SystemConfig};
//! use sim_core::{Instruction, SliceFrontend};
//! use vm_types::VirtAddr;
//!
//! let mut config = SystemConfig::small_test();
//! config.mode = SimulationMode::Detailed;
//! let mut system = System::new(config);
//! system.mmap_anonymous(VirtAddr::new(0x1000_0000), 4 * 1024 * 1024).unwrap();
//!
//! let trace: Vec<Instruction> = (0..1000)
//!     .map(|i| Instruction::load(VirtAddr::new(0x400 + i * 4), VirtAddr::new(0x1000_0000 + i * 64)))
//!     .collect();
//! let report = system.run(&mut SliceFrontend::new("quickstart", trace), None);
//! assert_eq!(report.instructions, 1000);
//! assert!(report.ipc > 0.0);
//! ```

pub mod channel;
pub mod config;
pub mod report;
pub mod system;
pub mod validation;

pub use channel::{
    FunctionalChannel, InstructionStreamChannel, InterCoreChannel, KernelRequest, KernelResponse,
    ShootdownIpi,
};
pub use config::{SimulationMode, SystemConfig};
pub use report::{
    CoreIpiStats, MultiProgramReport, OomStats, ProcessExitStatus, ProcessReport, ShootdownStats,
    SimulationReport,
};
pub use system::System;
pub use validation::{accuracy_percent, cosine_similarity_series, ReferenceMachine};
