//! The simulation report: every metric the paper's figures read out, in one
//! serializable structure.

use serde::{Deserialize, Serialize};
use vm_types::{LatencyStats, Percentiles};

/// The result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Name of the workload that was run.
    pub workload: String,
    /// Application instructions retired.
    pub instructions: u64,
    /// Kernel (MimicOS) instructions injected and retired.
    pub kernel_instructions: u64,
    /// Total elapsed core cycles.
    pub cycles: u64,
    /// Instructions per cycle including kernel work in the cycle count.
    pub ipc: f64,
    /// Application-only IPC (the metric validated in Fig. 8).
    pub app_ipc: f64,
    /// L2 TLB misses per kilo instruction (Fig. 10, top).
    pub l2_tlb_mpki: f64,
    /// Number of page-table walks performed.
    pub page_walks: u64,
    /// Average page-table walk latency in cycles (Fig. 3 and Fig. 10,
    /// bottom).
    pub avg_ptw_latency_cycles: f64,
    /// Total page-table walk latency in cycles (Fig. 13).
    pub total_ptw_latency_cycles: f64,
    /// Page faults taken, by kind.
    pub minor_faults: u64,
    /// Major faults (device reads).
    pub major_faults: u64,
    /// Swap-in faults.
    pub swap_in_faults: u64,
    /// Per-fault latency samples in nanoseconds (Figs. 2, 9, 15, 16).
    pub fault_latency_ns: LatencyStats,
    /// Total time spent in the page-fault handler, nanoseconds.
    pub total_fault_ns: f64,
    /// Total time spent on address translation beyond the L1 TLB,
    /// nanoseconds (Fig. 1).
    pub total_translation_ns: f64,
    /// Total wall-clock time of the simulated execution, nanoseconds.
    pub total_time_ns: f64,
    /// DRAM row-buffer conflicts, total (Fig. 14).
    pub dram_row_conflicts: u64,
    /// DRAM row-buffer conflicts caused by translation metadata (Fig. 21).
    pub dram_translation_conflicts: u64,
    /// Pages swapped out during the run and total swap I/O time (Fig. 20).
    pub swapped_pages: u64,
    /// Total nanoseconds spent on swap device I/O (Fig. 20).
    pub swap_io_ns: f64,
    /// 2 MiB (or larger) mappings created by the kernel.
    pub huge_mappings: u64,
    /// 4 KiB mappings created by the kernel.
    pub base_mappings: u64,
}

impl SimulationReport {
    /// Fraction of execution time spent on address translation (Fig. 1).
    pub fn translation_time_fraction(&self) -> f64 {
        if self.total_time_ns == 0.0 {
            0.0
        } else {
            self.total_translation_ns / self.total_time_ns
        }
    }

    /// Fraction of execution time spent on physical memory allocation,
    /// i.e. in the page-fault handler (Fig. 1).
    pub fn allocation_time_fraction(&self) -> f64 {
        if self.total_time_ns == 0.0 {
            0.0
        } else {
            self.total_fault_ns / self.total_time_ns
        }
    }

    /// Percentile summary of the fault latency distribution (Figs. 2, 16).
    pub fn fault_latency_percentiles(&self) -> Percentiles {
        self.fault_latency_ns.percentiles()
    }

    /// Fraction of total minor-fault latency contributed by faults longer
    /// than `threshold_ns` (the outlier-contribution metric of Fig. 2).
    pub fn fault_outlier_contribution(&self, threshold_ns: f64) -> f64 {
        self.fault_latency_ns.outlier_contribution(threshold_ns)
    }

    /// Total fault count.
    pub fn total_faults(&self) -> u64 {
        self.minor_faults + self.major_faults + self.swap_in_faults
    }

    /// Renders the report as aligned `key value` lines for harness output.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let mut push = |k: &str, v: String| {
            s.push_str(&format!("{k:<32} {v}\n"));
        };
        push("workload", self.workload.clone());
        push("instructions", self.instructions.to_string());
        push("kernel_instructions", self.kernel_instructions.to_string());
        push("cycles", self.cycles.to_string());
        push("ipc", format!("{:.4}", self.ipc));
        push("app_ipc", format!("{:.4}", self.app_ipc));
        push("l2_tlb_mpki", format!("{:.3}", self.l2_tlb_mpki));
        push(
            "avg_ptw_latency_cycles",
            format!("{:.2}", self.avg_ptw_latency_cycles),
        );
        push("minor_faults", self.minor_faults.to_string());
        push("major_faults", self.major_faults.to_string());
        push(
            "mean_fault_latency_ns",
            format!("{:.1}", self.fault_latency_ns.mean()),
        );
        push(
            "translation_time_fraction",
            format!("{:.4}", self.translation_time_fraction()),
        );
        push(
            "allocation_time_fraction",
            format!("{:.4}", self.allocation_time_fraction()),
        );
        push("dram_row_conflicts", self.dram_row_conflicts.to_string());
        push(
            "dram_translation_conflicts",
            self.dram_translation_conflicts.to_string(),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimulationReport {
        let mut fault_latency_ns = LatencyStats::new();
        for v in [500.0, 800.0, 40_000.0] {
            fault_latency_ns.record(v);
        }
        SimulationReport {
            workload: "test".to_string(),
            instructions: 1_000_000,
            cycles: 500_000,
            ipc: 2.0,
            app_ipc: 1.8,
            total_time_ns: 1_000_000.0,
            total_translation_ns: 250_000.0,
            total_fault_ns: 50_000.0,
            fault_latency_ns,
            minor_faults: 3,
            ..SimulationReport::default()
        }
    }

    #[test]
    fn time_fractions() {
        let r = sample();
        assert!((r.translation_time_fraction() - 0.25).abs() < 1e-12);
        assert!((r.allocation_time_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn outlier_contribution_uses_fault_samples() {
        let r = sample();
        assert!(r.fault_outlier_contribution(10_000.0) > 0.9);
    }

    #[test]
    fn table_contains_key_metrics() {
        let r = sample();
        let table = r.to_table();
        assert!(table.contains("app_ipc"));
        assert!(table.contains("l2_tlb_mpki"));
        assert!(table.contains("allocation_time_fraction"));
    }

    #[test]
    fn empty_report_has_zero_fractions() {
        let r = SimulationReport::default();
        assert_eq!(r.translation_time_fraction(), 0.0);
        assert_eq!(r.allocation_time_fraction(), 0.0);
        assert_eq!(r.total_faults(), 0);
    }
}
