//! The simulation report: every metric the paper's figures read out, in one
//! serializable structure — plus the per-process breakdown produced by
//! multi-programmed runs.

use mmu_sim::EngineReport;
use serde::{Deserialize, Serialize};
use vm_types::{LatencyStats, Percentiles};

/// Per-core shootdown-IPI activity of a multi-core run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreIpiStats {
    /// Shootdown IPIs this core broadcast as an initiator (one per remote
    /// core per invalidation batch).
    pub ipis_sent: u64,
    /// Shootdown IPIs this core received and processed as a remote.
    pub ipis_received: u64,
    /// Cycles this core stalled servicing remote shootdown IPIs.
    pub ipi_stall_cycles: u64,
}

/// TLB-shootdown activity applied by the framework on behalf of the
/// kernel's invalidation batches (reclaim swap-outs, THP demotions,
/// khugepaged collapses). All counters are zero on a run without memory
/// pressure or collapses, and the whole section is omitted from the
/// serialized report in that case.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShootdownStats {
    /// Invalidation batches applied (one per kernel operation that tore
    /// translations down — the IPI rounds of a real kernel).
    pub batches: u64,
    /// Page translations shot down.
    pub pages: u64,
    /// TLB entries actually dropped across the hierarchy.
    pub tlb_entries_dropped: u64,
    /// Page-walk-cache entries dropped.
    pub pwc_entries_dropped: u64,
    /// Engine-resident translations dropped or rewritten (RMM ranges,
    /// Utopia RestSeg residency and TAR/SF lines).
    pub engine_entries_dropped: u64,
    /// Replacement mappings installed after shootdowns (THP-demotion
    /// survivors, khugepaged collapse results).
    pub replacements_installed: u64,
    /// Per-core IPI traffic, indexed by core id. `None` — and absent from
    /// the serialized JSON, keeping single-core reports byte-identical —
    /// until a multi-core run broadcasts its first shootdown.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub per_core: Option<Vec<CoreIpiStats>>,
}

impl ShootdownStats {
    /// `true` when no shootdown work happened (the section is then omitted
    /// from serialized reports, keeping pressure-free reports identical to
    /// those of builds without the shootdown subsystem).
    pub fn is_zero(&self) -> bool {
        *self == ShootdownStats::default()
    }
}

/// Out-of-memory activity of a run: kills performed by the MimicOS OOM
/// killer and faults that failed outright because no victim was left.
/// The whole section is omitted from serialized reports when the run saw
/// neither a kill nor an OOM failure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OomStats {
    /// Processes killed by the OOM killer.
    pub kills: u64,
    /// Bytes of badness scanned across all victim-selection passes.
    pub scanned_bytes: u64,
    /// Resident bytes freed by kills.
    pub freed_bytes: u64,
    /// Allocation attempts that entered the direct-reclaim retry path.
    pub reclaim_retries: u64,
    /// Faults that failed with out-of-memory even after reclaim and the
    /// OOM killer (or with the killer disabled).
    pub oom_failures: u64,
}

/// How a process left a multi-programmed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessExitStatus {
    /// The process ran its full trace.
    Completed,
    /// The process was killed by the MimicOS OOM killer.
    OomKilled,
    /// The process made at least one access outside any VMA.
    Segfaulted,
}

// Not `#[derive(Default)]`: the vendored serde_derive shim does not parse
// variant-level attributes, so `#[default]` would break the Serialize
// derive on this enum.
#[allow(clippy::derivable_impls)]
impl Default for ProcessExitStatus {
    fn default() -> Self {
        ProcessExitStatus::Completed
    }
}

impl ProcessExitStatus {
    /// `true` for [`ProcessExitStatus::Completed`] (the field is then
    /// omitted from serialized reports).
    pub fn is_completed(&self) -> bool {
        matches!(self, ProcessExitStatus::Completed)
    }
}

/// Skip-serialization predicate for counters that stay zero on healthy
/// runs, keeping their reports byte-identical to earlier formats.
fn u64_is_zero(v: &u64) -> bool {
    *v == 0
}

/// The result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Name of the workload that was run.
    pub workload: String,
    /// Application instructions retired.
    pub instructions: u64,
    /// Kernel (MimicOS) instructions injected and retired.
    pub kernel_instructions: u64,
    /// Total elapsed core cycles.
    pub cycles: u64,
    /// Instructions per cycle including kernel work in the cycle count.
    pub ipc: f64,
    /// Application-only IPC (the metric validated in Fig. 8).
    pub app_ipc: f64,
    /// L2 TLB misses per kilo instruction (Fig. 10, top).
    pub l2_tlb_mpki: f64,
    /// Number of page-table walks performed.
    pub page_walks: u64,
    /// Average page-table walk latency in cycles (Fig. 3 and Fig. 10,
    /// bottom).
    pub avg_ptw_latency_cycles: f64,
    /// Total page-table walk latency in cycles (Fig. 13).
    pub total_ptw_latency_cycles: f64,
    /// Page faults taken, by kind.
    pub minor_faults: u64,
    /// Major faults (device reads).
    pub major_faults: u64,
    /// Swap-in faults.
    pub swap_in_faults: u64,
    /// Per-fault latency samples in nanoseconds (Figs. 2, 9, 15, 16).
    pub fault_latency_ns: LatencyStats,
    /// Total time spent in the page-fault handler, nanoseconds.
    pub total_fault_ns: f64,
    /// Total time spent on address translation beyond the L1 TLB,
    /// nanoseconds (Fig. 1).
    pub total_translation_ns: f64,
    /// Total wall-clock time of the simulated execution, nanoseconds.
    pub total_time_ns: f64,
    /// DRAM row-buffer conflicts, total (Fig. 14).
    pub dram_row_conflicts: u64,
    /// DRAM row-buffer conflicts caused by translation metadata (Fig. 21).
    pub dram_translation_conflicts: u64,
    /// Pages swapped out during the run and total swap I/O time (Fig. 20).
    pub swapped_pages: u64,
    /// Total nanoseconds spent on swap device I/O (Fig. 20).
    pub swap_io_ns: f64,
    /// 2 MiB (or larger) mappings created by the kernel.
    pub huge_mappings: u64,
    /// 4 KiB mappings created by the kernel.
    pub base_mappings: u64,
    /// Per-engine statistics (Midgard VLB behaviour, RMM range coverage,
    /// Utopia RestSeg hits). `None` — and absent from the serialized JSON,
    /// keeping the page-table-engine reports byte-identical — on the
    /// conventional page-table engine.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub engine: Option<EngineReport>,
    /// TLB-shootdown activity (reclaim / demotion / collapse coherence
    /// work). `None` — and absent from the serialized JSON — when the run
    /// tore no translations down.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shootdowns: Option<ShootdownStats>,
    /// Out-of-memory activity. `None` — and absent from the serialized
    /// JSON — when the run saw neither an OOM kill nor an OOM failure.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub oom: Option<OomStats>,
}

impl SimulationReport {
    /// Fraction of execution time spent on address translation (Fig. 1).
    pub fn translation_time_fraction(&self) -> f64 {
        if self.total_time_ns == 0.0 {
            0.0
        } else {
            self.total_translation_ns / self.total_time_ns
        }
    }

    /// Fraction of execution time spent on physical memory allocation,
    /// i.e. in the page-fault handler (Fig. 1).
    pub fn allocation_time_fraction(&self) -> f64 {
        if self.total_time_ns == 0.0 {
            0.0
        } else {
            self.total_fault_ns / self.total_time_ns
        }
    }

    /// Translation and allocation time fractions of the execution segment
    /// between `earlier` and `self`, where `earlier` is a cumulative report
    /// taken earlier on the *same* system (e.g. after a warm-up phase).
    ///
    /// Long-running workloads are translation-bound only in steady state;
    /// measured from a cold start their one-off first-touch faults swamp
    /// everything else (the `fig01` calibration bug). Subtracting the
    /// warm-up report isolates the steady-state behaviour.
    pub fn fractions_since(&self, earlier: &SimulationReport) -> (f64, f64) {
        let time = self.total_time_ns - earlier.total_time_ns;
        if time <= 0.0 {
            return (0.0, 0.0);
        }
        let translation = (self.total_translation_ns - earlier.total_translation_ns).max(0.0);
        let allocation = (self.total_fault_ns - earlier.total_fault_ns).max(0.0);
        (translation / time, allocation / time)
    }

    /// Percentile summary of the fault latency distribution (Figs. 2, 16).
    pub fn fault_latency_percentiles(&self) -> Percentiles {
        self.fault_latency_ns.percentiles()
    }

    /// Fraction of total minor-fault latency contributed by faults longer
    /// than `threshold_ns` (the outlier-contribution metric of Fig. 2).
    pub fn fault_outlier_contribution(&self, threshold_ns: f64) -> f64 {
        self.fault_latency_ns.outlier_contribution(threshold_ns)
    }

    /// Total fault count.
    pub fn total_faults(&self) -> u64 {
        self.minor_faults + self.major_faults + self.swap_in_faults
    }

    /// Renders the report as aligned `key value` lines for harness output.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let mut push = |k: &str, v: String| {
            s.push_str(&format!("{k:<32} {v}\n"));
        };
        push("workload", self.workload.clone());
        push("instructions", self.instructions.to_string());
        push("kernel_instructions", self.kernel_instructions.to_string());
        push("cycles", self.cycles.to_string());
        push("ipc", format!("{:.4}", self.ipc));
        push("app_ipc", format!("{:.4}", self.app_ipc));
        push("l2_tlb_mpki", format!("{:.3}", self.l2_tlb_mpki));
        push(
            "avg_ptw_latency_cycles",
            format!("{:.2}", self.avg_ptw_latency_cycles),
        );
        push("minor_faults", self.minor_faults.to_string());
        push("major_faults", self.major_faults.to_string());
        push(
            "mean_fault_latency_ns",
            format!("{:.1}", self.fault_latency_ns.mean()),
        );
        push(
            "translation_time_fraction",
            format!("{:.4}", self.translation_time_fraction()),
        );
        push(
            "allocation_time_fraction",
            format!("{:.4}", self.allocation_time_fraction()),
        );
        push("dram_row_conflicts", self.dram_row_conflicts.to_string());
        push(
            "dram_translation_conflicts",
            self.dram_translation_conflicts.to_string(),
        );
        if let Some(shootdowns) = &self.shootdowns {
            push("shootdown_batches", shootdowns.batches.to_string());
            push("shootdown_pages", shootdowns.pages.to_string());
            push(
                "shootdown_tlb_entries_dropped",
                shootdowns.tlb_entries_dropped.to_string(),
            );
            push(
                "shootdown_replacements",
                shootdowns.replacements_installed.to_string(),
            );
            if let Some(per_core) = &shootdowns.per_core {
                for (core, ipi) in per_core.iter().enumerate() {
                    push(&format!("core{core}_ipis_sent"), ipi.ipis_sent.to_string());
                    push(
                        &format!("core{core}_ipis_received"),
                        ipi.ipis_received.to_string(),
                    );
                    push(
                        &format!("core{core}_ipi_stall_cycles"),
                        ipi.ipi_stall_cycles.to_string(),
                    );
                }
            }
        }
        if let Some(oom) = &self.oom {
            push("oom_kills", oom.kills.to_string());
            push("oom_freed_bytes", oom.freed_bytes.to_string());
            push("oom_reclaim_retries", oom.reclaim_retries.to_string());
            push("oom_failures", oom.oom_failures.to_string());
        }
        match &self.engine {
            None => {}
            Some(EngineReport::Midgard {
                frontend_fraction,
                l2_vlb_hit_ratio,
                backend_walks,
                ..
            }) => {
                push("engine", "midgard".into());
                push(
                    "midgard_frontend_fraction",
                    format!("{frontend_fraction:.4}"),
                );
                push("midgard_l2_vlb_hit_ratio", format!("{l2_vlb_hit_ratio:.4}"));
                push("midgard_backend_walks", backend_walks.to_string());
            }
            Some(EngineReport::Rmm {
                range_coverage,
                fallback_translations,
                ..
            }) => {
                push("engine", "rmm".into());
                push("rmm_range_coverage", format!("{range_coverage:.4}"));
                push(
                    "rmm_fallback_translations",
                    fallback_translations.to_string(),
                );
            }
            Some(EngineReport::Utopia {
                restseg_hits,
                rsw_fetches,
                tar_hit_ratio,
                ..
            }) => {
                push("engine", "utopia".into());
                push("utopia_restseg_hits", restseg_hits.to_string());
                push("utopia_rsw_fetches", rsw_fetches.to_string());
                push("utopia_tar_hit_ratio", format!("{tar_hit_ratio:.4}"));
            }
        }
        s
    }
}

/// The slice of a multi-programmed run attributable to one process.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcessReport {
    /// Raw process identifier (also its ASID).
    pub pid: usize,
    /// Name of the workload the process ran.
    pub workload: String,
    /// Application instructions the process retired.
    pub instructions: u64,
    /// Core cycles elapsed while the process held the core (including the
    /// kernel work done on its behalf).
    pub cycles: u64,
    /// Instructions per cycle over the process's own cycles.
    pub ipc: f64,
    /// Cycles the process spent on address translation beyond the L1 TLB.
    pub translation_cycles: u64,
    /// Page-table walks performed under the process's ASID.
    pub page_walks: u64,
    /// Translation requests issued under the process's ASID.
    pub tlb_translations: u64,
    /// Translation requests satisfied by the TLBs (either level).
    pub tlb_hits: u64,
    /// Average page-table walk latency in cycles.
    pub avg_ptw_latency_cycles: f64,
    /// Minor page faults the process took.
    pub minor_faults: u64,
    /// Major page faults (device reads and swap-ins) the process took.
    pub major_faults: u64,
    /// Faults the process took on read accesses (spurious ones included).
    pub read_faults: u64,
    /// Faults the process took on write accesses (spurious ones included).
    pub write_faults: u64,
    /// Accesses the process made outside any VMA.
    pub segfaults: u64,
    /// Accesses whose faults failed with out-of-memory (reclaim and the
    /// OOM killer together could not free enough memory). Omitted from
    /// serialized reports while zero.
    #[serde(skip_serializing_if = "u64_is_zero")]
    pub oom_failures: u64,
    /// Instructions accounted by the scheduler (cross-check: equals
    /// `instructions`).
    pub scheduled_instructions: u64,
    /// How the process left the run. Omitted from serialized reports when
    /// [`ProcessExitStatus::Completed`], keeping healthy reports
    /// byte-identical to the earlier format.
    #[serde(skip_serializing_if = "ProcessExitStatus::is_completed")]
    pub exit_status: ProcessExitStatus,
}

impl ProcessReport {
    /// TLB miss ratio of the process's translations, in `[0, 1]`.
    pub fn tlb_miss_ratio(&self) -> f64 {
        if self.tlb_translations == 0 {
            0.0
        } else {
            self.page_walks as f64 / self.tlb_translations as f64
        }
    }
}

/// The result of one multi-programmed simulation run: per-process reports
/// rolled up into the machine-wide [`SimulationReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiProgramReport {
    /// One report per process, in pid order.
    pub processes: Vec<ProcessReport>,
    /// Context switches performed.
    pub context_switches: u64,
    /// TLB entries dropped by context-switch flushes (zero when the TLBs
    /// are ASID-tagged).
    pub switch_flushed_tlb_entries: u64,
    /// The machine-wide rollup across all processes.
    pub rollup: SimulationReport,
}

impl MultiProgramReport {
    /// Renders a per-process table plus the rollup summary.
    pub fn to_table(&self) -> String {
        let mut s = format!(
            "{:>4} {:>12} {:>12} {:>12} {:>7} {:>10} {:>10} {:>9} {:>9}\n",
            "pid",
            "workload",
            "instrs",
            "cycles",
            "ipc",
            "walks",
            "tlb_miss%",
            "min_flt",
            "maj_flt"
        );
        for p in &self.processes {
            s.push_str(&format!(
                "{:>4} {:>12} {:>12} {:>12} {:>7.4} {:>10} {:>10.3} {:>9} {:>9}\n",
                p.pid,
                p.workload,
                p.instructions,
                p.cycles,
                p.ipc,
                p.page_walks,
                100.0 * p.tlb_miss_ratio(),
                p.minor_faults,
                p.major_faults,
            ));
        }
        s.push_str(&format!(
            "context_switches {}  switch_flushed_tlb_entries {}\n",
            self.context_switches, self.switch_flushed_tlb_entries
        ));
        s.push_str(&self.rollup.to_table());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimulationReport {
        let mut fault_latency_ns = LatencyStats::new();
        for v in [500.0, 800.0, 40_000.0] {
            fault_latency_ns.record(v);
        }
        SimulationReport {
            workload: "test".to_string(),
            instructions: 1_000_000,
            cycles: 500_000,
            ipc: 2.0,
            app_ipc: 1.8,
            total_time_ns: 1_000_000.0,
            total_translation_ns: 250_000.0,
            total_fault_ns: 50_000.0,
            fault_latency_ns,
            minor_faults: 3,
            ..SimulationReport::default()
        }
    }

    #[test]
    fn time_fractions() {
        let r = sample();
        assert!((r.translation_time_fraction() - 0.25).abs() < 1e-12);
        assert!((r.allocation_time_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn outlier_contribution_uses_fault_samples() {
        let r = sample();
        assert!(r.fault_outlier_contribution(10_000.0) > 0.9);
    }

    #[test]
    fn table_contains_key_metrics() {
        let r = sample();
        let table = r.to_table();
        assert!(table.contains("app_ipc"));
        assert!(table.contains("l2_tlb_mpki"));
        assert!(table.contains("allocation_time_fraction"));
    }

    #[test]
    fn shootdown_section_is_omitted_until_nonzero() {
        let quiet = sample();
        let json = serde_json::to_string(&quiet).unwrap();
        assert!(
            !json.contains("shootdowns"),
            "pressure-free reports must serialize without a shootdown section"
        );
        assert!(!quiet.to_table().contains("shootdown_batches"));
        let mut noisy = sample();
        noisy.shootdowns = Some(ShootdownStats {
            batches: 2,
            pages: 64,
            tlb_entries_dropped: 80,
            pwc_entries_dropped: 6,
            engine_entries_dropped: 3,
            replacements_installed: 448,
            per_core: None,
        });
        let json = serde_json::to_string(&noisy).unwrap();
        assert!(json.contains("\"shootdowns\":"));
        assert!(json.contains("\"pages\":64"));
        assert!(
            !json.contains("per_core"),
            "single-core shootdown sections must not grow a per_core field"
        );
        let table = noisy.to_table();
        assert!(table.contains("shootdown_batches"));
        assert!(table.contains("shootdown_replacements"));
        assert!(ShootdownStats::default().is_zero());
        assert!(!noisy.shootdowns.unwrap().is_zero());
    }

    #[test]
    fn oom_section_and_exit_status_are_omitted_until_nonzero() {
        let quiet = sample();
        let json = serde_json::to_string(&quiet).unwrap();
        assert!(
            !json.contains("\"oom\""),
            "healthy reports must serialize without an oom section"
        );
        assert!(!quiet.to_table().contains("oom_kills"));
        let mut noisy = sample();
        noisy.oom = Some(OomStats {
            kills: 1,
            scanned_bytes: 3 << 20,
            freed_bytes: 2 << 20,
            reclaim_retries: 9,
            oom_failures: 0,
        });
        let json = serde_json::to_string(&noisy).unwrap();
        assert!(json.contains("\"oom\":"));
        assert!(json.contains("\"kills\":1"));
        let table = noisy.to_table();
        assert!(table.contains("oom_kills"));
        assert!(table.contains("oom_freed_bytes"));

        let completed = ProcessReport::default();
        let json = serde_json::to_string(&completed).unwrap();
        assert!(!json.contains("exit_status"));
        assert!(!json.contains("oom_failures"));
        assert!(ProcessExitStatus::default().is_completed());
        let killed = ProcessReport {
            exit_status: ProcessExitStatus::OomKilled,
            oom_failures: 2,
            ..ProcessReport::default()
        };
        let json = serde_json::to_string(&killed).unwrap();
        assert!(json.contains("\"exit_status\":\"OomKilled\""));
        assert!(json.contains("\"oom_failures\":2"));
    }

    #[test]
    fn per_core_ipi_stats_serialize_when_present() {
        let mut r = sample();
        r.shootdowns = Some(ShootdownStats {
            batches: 1,
            pages: 8,
            per_core: Some(vec![
                CoreIpiStats {
                    ipis_sent: 1,
                    ipis_received: 0,
                    ipi_stall_cycles: 0,
                },
                CoreIpiStats {
                    ipis_sent: 0,
                    ipis_received: 1,
                    ipi_stall_cycles: 1800,
                },
            ]),
            ..ShootdownStats::default()
        });
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"per_core\":"));
        assert!(json.contains("\"ipi_stall_cycles\":1800"));
        let table = r.to_table();
        assert!(table.contains("core0_ipis_sent"));
        assert!(table.contains("core1_ipi_stall_cycles"));
        assert!(!r.shootdowns.unwrap().is_zero());
    }

    #[test]
    fn empty_report_has_zero_fractions() {
        let r = SimulationReport::default();
        assert_eq!(r.translation_time_fraction(), 0.0);
        assert_eq!(r.allocation_time_fraction(), 0.0);
        assert_eq!(r.total_faults(), 0);
    }

    #[test]
    fn fractions_since_isolate_the_measured_segment() {
        // Warm-up: 1 ms total, fault-dominated (900 µs of faults).
        let warm = SimulationReport {
            total_time_ns: 1_000_000.0,
            total_translation_ns: 10_000.0,
            total_fault_ns: 900_000.0,
            ..SimulationReport::default()
        };
        // Cumulative end state: the measured segment added 1 ms of time, of
        // which 400 µs was translation and nothing was faults.
        let full = SimulationReport {
            total_time_ns: 2_000_000.0,
            total_translation_ns: 410_000.0,
            total_fault_ns: 900_000.0,
            ..SimulationReport::default()
        };
        let (t, a) = full.fractions_since(&warm);
        assert!((t - 0.4).abs() < 1e-12);
        assert_eq!(a, 0.0);
        // The cumulative report alone would report the cold-start mixture.
        assert!(full.translation_time_fraction() < 0.3);
        // Degenerate segment: no time elapsed.
        assert_eq!(full.fractions_since(&full), (0.0, 0.0));
    }

    #[test]
    fn process_report_miss_ratio_and_multiprogram_table() {
        let p = ProcessReport {
            pid: 1,
            workload: "RND".to_string(),
            instructions: 1000,
            cycles: 4000,
            ipc: 0.25,
            page_walks: 50,
            tlb_translations: 400,
            tlb_hits: 350,
            minor_faults: 7,
            ..ProcessReport::default()
        };
        assert!((p.tlb_miss_ratio() - 0.125).abs() < 1e-12);
        let report = MultiProgramReport {
            processes: vec![p],
            context_switches: 3,
            switch_flushed_tlb_entries: 0,
            rollup: SimulationReport::default(),
        };
        let table = report.to_table();
        assert!(table.contains("RND"));
        assert!(table.contains("context_switches 3"));
        assert_eq!(ProcessReport::default().tlb_miss_ratio(), 0.0);
    }
}
