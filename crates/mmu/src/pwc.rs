//! Page-walk caches (PWCs): small caches of upper-level page-table entries
//! that let the radix walker skip levels (Barr et al., "Translation Caching:
//! Skip, Don't Walk (the Page Table)", ISCA 2010). The paper's baseline
//! uses three 32-entry, 4-way, 2-cycle PWCs — one per intermediate level.

use serde::{Deserialize, Serialize};
use vm_types::{Counter, Cycles, FastDiv, VirtAddr};

/// One page-walk cache level (caching entries of one radix level).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PwcLevel {
    entries: usize,
    ways: usize,
    tags: Vec<Vec<Option<(u64, u64)>>>, // (tag, lru)
    clock: u64,
    hits: Counter,
    misses: Counter,
    /// Precomputed set-count divisor for the per-probe index.
    set_div: FastDiv,
}

impl PwcLevel {
    fn new(entries: usize, ways: usize) -> Self {
        let sets = (entries / ways).max(1);
        PwcLevel {
            entries,
            ways,
            tags: vec![vec![None; ways]; sets],
            clock: 0,
            hits: Counter::new(),
            misses: Counter::new(),
            set_div: FastDiv::new(sets as u64),
        }
    }

    fn probe(&mut self, tag: u64) -> bool {
        self.clock += 1;
        let set = self.set_div.rem(tag) as usize;
        for slot in self.tags[set].iter_mut().flatten() {
            if slot.0 == tag {
                slot.1 = self.clock;
                self.hits.inc();
                return true;
            }
        }
        self.misses.inc();
        false
    }

    fn fill(&mut self, tag: u64) {
        self.clock += 1;
        let set = self.set_div.rem(tag) as usize;
        let clock = self.clock;
        let ways = &mut self.tags[set];
        if let Some(slot) = ways.iter_mut().find(|s| s.is_none()) {
            *slot = Some((tag, clock));
            return;
        }
        if let Some(victim) = ways
            .iter_mut()
            .min_by_key(|s| s.map(|(_, lru)| lru).unwrap_or(0))
        {
            *victim = Some((tag, clock));
        }
    }
}

/// The set of page-walk caches covering the PML4, PDPT and PD levels of a
/// 4-level radix walk.
///
/// # Examples
///
/// ```
/// use mmu_sim::PageWalkCaches;
/// use vm_types::VirtAddr;
///
/// let mut pwc = PageWalkCaches::paper_baseline();
/// let va = VirtAddr::new(0x7f12_3456_7000);
/// // Cold: the walk must start from the root (skip 0 levels).
/// assert_eq!(pwc.levels_skipped(va), 0);
/// pwc.fill(va);
/// // Warm: all three intermediate levels can be skipped.
/// assert_eq!(pwc.levels_skipped(va), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageWalkCaches {
    levels: Vec<PwcLevel>,
    latency: Cycles,
}

impl PageWalkCaches {
    /// The paper's baseline: three 32-entry, 4-way, 2-cycle PWCs.
    pub fn paper_baseline() -> Self {
        PageWalkCaches {
            levels: vec![
                PwcLevel::new(32, 4),
                PwcLevel::new(32, 4),
                PwcLevel::new(32, 4),
            ],
            latency: Cycles::new(2),
        }
    }

    /// A PWC-less configuration (every walk starts from the root).
    pub fn disabled() -> Self {
        PageWalkCaches {
            levels: Vec::new(),
            latency: Cycles::ZERO,
        }
    }

    /// Lookup latency of probing the PWCs.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Tag for PWC level `i` (0 = deepest / PD level, covering the most
    /// specific prefix).
    fn tag(va: VirtAddr, level: usize) -> u64 {
        // Level 0 caches PD entries (bits 63..21), level 1 PDPT (63..30),
        // level 2 PML4 (63..39).
        match level {
            0 => va.raw() >> 21,
            1 => va.raw() >> 30,
            _ => va.raw() >> 39,
        }
    }

    /// Number of radix levels the walker may skip for `va` (0–3), probing
    /// the deepest cache first.
    pub fn levels_skipped(&mut self, va: VirtAddr) -> usize {
        let count = self.levels.len();
        for i in 0..count {
            if self.levels[i].probe(Self::tag(va, i)) {
                return count - i;
            }
        }
        0
    }

    /// Fills the PWCs with the intermediate entries discovered by a
    /// completed walk of `va`.
    pub fn fill(&mut self, va: VirtAddr) {
        for i in 0..self.levels.len() {
            let tag = Self::tag(va, i);
            self.levels[i].fill(tag);
        }
    }

    /// Drops every cached intermediate entry. The PWCs tag by virtual
    /// address alone (no ASID), so a context switch must flush them to keep
    /// walks of the incoming address space honest.
    pub fn flush(&mut self) {
        for level in &mut self.levels {
            for set in &mut level.tags {
                for slot in set {
                    *slot = None;
                }
            }
        }
    }

    /// Invalidates the cached intermediate entries covering `va` at every
    /// level — the paging-structure-cache side of an `invlpg`-style
    /// shootdown. Conservative like the hardware: the upper-level entries
    /// for the address are dropped even if only the leaf changed, so the
    /// next walk of the region re-descends from the root. Returns the
    /// number of entries dropped.
    pub fn invalidate(&mut self, va: VirtAddr) -> usize {
        let mut dropped = 0;
        for i in 0..self.levels.len() {
            let tag = Self::tag(va, i);
            let level = &mut self.levels[i];
            let set = level.set_div.rem(tag) as usize;
            for slot in &mut level.tags[set] {
                if matches!(slot, Some((t, _)) if *t == tag) {
                    *slot = None;
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Total hits across all levels.
    pub fn hits(&self) -> u64 {
        self.levels.iter().map(|l| l.hits.get()).sum()
    }

    /// Total misses across all levels.
    pub fn misses(&self) -> u64 {
        self.levels.iter().map(|l| l.misses.get()).sum()
    }
}

impl Default for PageWalkCaches {
    fn default() -> Self {
        PageWalkCaches::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_walk_skips_nothing() {
        let mut pwc = PageWalkCaches::paper_baseline();
        assert_eq!(pwc.levels_skipped(VirtAddr::new(0x1234_5678_9000)), 0);
        assert!(pwc.misses() > 0);
    }

    #[test]
    fn warm_walk_skips_all_levels() {
        let mut pwc = PageWalkCaches::paper_baseline();
        let va = VirtAddr::new(0x7f00_1234_5000);
        pwc.fill(va);
        assert_eq!(pwc.levels_skipped(va), 3);
        assert!(pwc.hits() > 0);
    }

    #[test]
    fn nearby_addresses_share_upper_levels() {
        let mut pwc = PageWalkCaches::paper_baseline();
        pwc.fill(VirtAddr::new(0x7f00_0000_0000));
        // Same 2 MiB region: skip 3. Different 2 MiB, same 1 GiB: skip >= 2.
        assert_eq!(pwc.levels_skipped(VirtAddr::new(0x7f00_0000_1000)), 3);
        assert!(pwc.levels_skipped(VirtAddr::new(0x7f00_0020_0000)) >= 2);
        // Completely different top-level index: skip 0.
        assert_eq!(pwc.levels_skipped(VirtAddr::new(0x0000_0000_1000)), 0);
    }

    #[test]
    fn invalidate_drops_the_address_without_flushing_neighbours() {
        let mut pwc = PageWalkCaches::paper_baseline();
        let victim = VirtAddr::new(0x7f00_1234_5000);
        let neighbour = VirtAddr::new(0x7e00_0000_0000);
        pwc.fill(victim);
        pwc.fill(neighbour);
        assert_eq!(pwc.invalidate(victim), 3, "all three levels covered it");
        assert_eq!(pwc.levels_skipped(victim), 0, "walk restarts at the root");
        assert!(
            pwc.levels_skipped(neighbour) > 0,
            "unrelated regions keep their cached levels"
        );
        assert_eq!(pwc.invalidate(VirtAddr::new(0x1000)), 0);
    }

    #[test]
    fn disabled_pwcs_never_skip() {
        let mut pwc = PageWalkCaches::disabled();
        let va = VirtAddr::new(0x7f00_1234_5000);
        pwc.fill(va);
        assert_eq!(pwc.levels_skipped(va), 0);
        assert_eq!(pwc.latency(), Cycles::ZERO);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut pwc = PageWalkCaches::paper_baseline();
        // Fill many distinct 2 MiB regions within one 1 GiB region: the
        // deepest PWC (32 entries) thrashes but upper levels stay warm.
        for i in 0..256u64 {
            pwc.fill(VirtAddr::new(0x7f00_0000_0000 + i * 0x20_0000));
        }
        let skipped = pwc.levels_skipped(VirtAddr::new(0x7f00_0000_0000));
        assert!(skipped >= 1, "upper levels should still hit");
    }
}
