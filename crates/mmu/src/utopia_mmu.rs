//! The MMU side of Utopia (Kanellopoulos et al., MICRO 2023): translating
//! addresses that live in a restrictive segment requires only a lightweight
//! set-index computation plus a lookup of the segment's tag/permission
//! metadata (the RestSeg walkers, "RSW"), cached by two small structures —
//! the TAR cache (tag array) and the SF cache (set filter). Addresses not
//! resident in a RestSeg fall back to the conventional page table.
//!
//! The experiment of Fig. 19 shows that growing the RestSeg enlarges the
//! metadata footprint and therefore the RSW access latency; this module
//! reproduces that effect because the tag-array addresses span a region
//! proportional to the RestSeg size, so larger segments thrash the TAR/SF
//! caches and the data caches behind them.

use crate::pt::WalkAccessList;
use serde::{Deserialize, Serialize};
use vm_types::{Counter, Cycles, PageSize, PhysAddr, VirtAddr};

/// Configuration of the Utopia MMU hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtopiaMmuConfig {
    /// RestSeg size in bytes.
    pub restseg_bytes: u64,
    /// RestSeg associativity.
    pub ways: u32,
    /// Page size stored in the RestSeg.
    pub page_size: PageSize,
    /// TAR-cache capacity in entries (the paper: 8 KB ≈ 1024 tags).
    pub tar_cache_entries: usize,
    /// SF-cache capacity in entries.
    pub sf_cache_entries: usize,
    /// TAR/SF cache hit latency.
    pub cache_latency: Cycles,
}

impl UtopiaMmuConfig {
    /// The paper's Table 4 configuration with an 8 GB RestSeg.
    pub fn paper_baseline() -> Self {
        UtopiaMmuConfig {
            restseg_bytes: 8 << 30,
            ways: 16,
            page_size: PageSize::Size4K,
            tar_cache_entries: 1024,
            sf_cache_entries: 1024,
            cache_latency: Cycles::new(2),
        }
    }

    /// Same geometry with a different RestSeg size (for the Fig. 19 sweep).
    pub fn with_restseg_bytes(self, bytes: u64) -> Self {
        UtopiaMmuConfig {
            restseg_bytes: bytes,
            ..self
        }
    }

    /// Number of sets in the RestSeg.
    pub fn sets(&self) -> u64 {
        (self.restseg_bytes / self.page_size.bytes() / self.ways as u64).max(1)
    }
}

impl Default for UtopiaMmuConfig {
    fn default() -> Self {
        UtopiaMmuConfig::paper_baseline()
    }
}

/// A tiny direct-mapped cache of set indices (shared shape for the TAR and
/// SF caches).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SetCache {
    entries: Vec<Option<u64>>,
    /// `len - 1` when the capacity is a power of two, letting the hot-path
    /// slot computation use a mask instead of a (non-pipelined) `u64`
    /// division; `None` falls back to the modulo. Same slot either way.
    mask: Option<u64>,
    hits: Counter,
    misses: Counter,
}

impl SetCache {
    fn new(entries: usize) -> Self {
        let len = entries.max(1);
        SetCache {
            entries: vec![None; len],
            mask: len.is_power_of_two().then(|| len as u64 - 1),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    #[inline]
    fn slot(&self, set: u64) -> usize {
        match self.mask {
            Some(mask) => (set & mask) as usize,
            None => (set % self.entries.len() as u64) as usize,
        }
    }

    fn probe_and_fill(&mut self, set: u64) -> bool {
        let idx = self.slot(set);
        if self.entries[idx] == Some(set) {
            self.hits.inc();
            true
        } else {
            self.entries[idx] = Some(set);
            self.misses.inc();
            false
        }
    }

    /// Drops the cached entry for `set`, if present. Returns `true` when
    /// an entry was dropped.
    fn invalidate(&mut self, set: u64) -> bool {
        let idx = self.slot(set);
        if self.entries[idx] == Some(set) {
            self.entries[idx] = None;
            true
        } else {
            false
        }
    }
}

/// Result of a Utopia translation attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtopiaTranslation {
    /// Fixed-latency component (set-index computation + TAR/SF lookups).
    pub latency: Cycles,
    /// RestSeg metadata (RSW) accesses that must go through the memory
    /// hierarchy; empty when the TAR cache absorbed the lookup. Inline
    /// storage: the group count is `ways.div_ceil(8)` — 2 for the paper's
    /// 16-way RestSeg — so this sits on the translation hot path with no
    /// heap allocation.
    pub metadata_accesses: WalkAccessList,
}

/// The Utopia MMU path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtopiaMmu {
    config: UtopiaMmuConfig,
    metadata_base: PhysAddr,
    /// `config.sets()`, precomputed off the per-translation path.
    sets: u64,
    /// `sets - 1` when the set count is a power of two (every paper
    /// configuration) — the hot-path set index then reduces with a mask
    /// instead of a `u64` modulo. Same index either way.
    set_mask: Option<u64>,
    tar_cache: SetCache,
    sf_cache: SetCache,
    /// Translations attempted through the RestSeg path.
    pub lookups: Counter,
    /// RestSeg-side shootdowns applied (kernel evictions of resident
    /// pages).
    pub invalidations: Counter,
}

impl UtopiaMmu {
    /// Creates the Utopia MMU; `metadata_base` is where the RestSeg tag
    /// arrays live in physical memory.
    pub fn new(config: UtopiaMmuConfig, metadata_base: PhysAddr) -> Self {
        let sets = config.sets();
        UtopiaMmu {
            tar_cache: SetCache::new(config.tar_cache_entries),
            sf_cache: SetCache::new(config.sf_cache_entries),
            config,
            metadata_base,
            sets,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            lookups: Counter::new(),
            invalidations: Counter::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &UtopiaMmuConfig {
        &self.config
    }

    fn set_index(&self, va: VirtAddr) -> u64 {
        let vpn = va.page_number(self.config.page_size).number();
        let hash = vpn.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        match self.set_mask {
            Some(mask) => hash & mask,
            None => hash % self.sets,
        }
    }

    /// Performs the RestSeg-side translation work for `va`: returns the
    /// fixed latency plus the tag-array (RSW) accesses that must traverse
    /// the memory hierarchy. Whether the page actually resides in the
    /// RestSeg is decided by the kernel's occupancy (tracked in
    /// `mimic_os::utopia`); the hardware always pays this lookup cost first.
    pub fn translate(&mut self, va: VirtAddr) -> UtopiaTranslation {
        self.lookups.inc();
        let set = self.set_index(va);
        let mut latency = self.config.cache_latency;
        let mut accesses = WalkAccessList::new();
        let tar_hit = self.tar_cache.probe_and_fill(set);
        let sf_hit = self.sf_cache.probe_and_fill(set >> 3);
        latency += self.config.cache_latency;
        if !tar_hit || !sf_hit {
            // Fetch the set's tag group(s) from the in-memory tag array. The
            // tag array spans a region proportional to the RestSeg size, so
            // large RestSegs have poor locality here (Fig. 19).
            let groups = (self.config.ways as u64).div_ceil(8);
            for g in 0..groups {
                accesses.push(self.metadata_base.add(set * groups * 64 + g * 64));
            }
        }
        UtopiaTranslation {
            latency,
            metadata_accesses: accesses,
        }
    }

    /// Invalidates the RestSeg-side cached metadata for the set holding
    /// `va` — the kernel evicted the page from its RestSeg, so the tag
    /// array changed and the TAR/SF caches must refetch the set's tag
    /// group on the next lookup. Returns the number of cache entries
    /// dropped (0–2).
    pub fn invalidate(&mut self, va: VirtAddr) -> usize {
        self.invalidations.inc();
        let set = self.set_index(va);
        usize::from(self.tar_cache.invalidate(set))
            + usize::from(self.sf_cache.invalidate(set >> 3))
    }

    /// TAR-cache hit ratio.
    pub fn tar_hit_ratio(&self) -> f64 {
        let total = self.tar_cache.hits.get() + self.tar_cache.misses.get();
        if total == 0 {
            0.0
        } else {
            self.tar_cache.hits.get() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_translations_hit_the_tar_cache() {
        let mut mmu = UtopiaMmu::new(
            UtopiaMmuConfig::paper_baseline(),
            PhysAddr::new(0xD0_0000_0000),
        );
        let va = VirtAddr::new(0x1234_5000);
        let first = mmu.translate(va);
        let second = mmu.translate(va);
        assert!(!first.metadata_accesses.is_empty());
        assert!(second.metadata_accesses.is_empty());
        assert!(mmu.tar_hit_ratio() > 0.0);
    }

    #[test]
    fn larger_restsegs_touch_a_larger_metadata_footprint() {
        let base = PhysAddr::new(0xD0_0000_0000);
        let small_cfg = UtopiaMmuConfig::paper_baseline().with_restseg_bytes(1 << 30);
        let large_cfg = UtopiaMmuConfig::paper_baseline().with_restseg_bytes(64 << 30);
        let mut small = UtopiaMmu::new(small_cfg, base);
        let mut large = UtopiaMmu::new(large_cfg, base);
        let mut small_span = 0u64;
        let mut large_span = 0u64;
        for i in 0..4096u64 {
            let va = VirtAddr::new(i * 0x40_0000 + 0x123_0000);
            for a in &small.translate(va).metadata_accesses {
                small_span = small_span.max(a.raw() - base.raw());
            }
            for a in &large.translate(va).metadata_accesses {
                large_span = large_span.max(a.raw() - base.raw());
            }
        }
        assert!(
            large_span > small_span,
            "large RestSeg metadata should span more memory ({large_span} vs {small_span})"
        );
    }

    #[test]
    fn invalidation_forces_the_next_lookup_to_refetch_tags() {
        let mut mmu = UtopiaMmu::new(
            UtopiaMmuConfig::paper_baseline(),
            PhysAddr::new(0xD0_0000_0000),
        );
        let va = VirtAddr::new(0x1234_5000);
        mmu.translate(va); // cold: fetches + fills TAR/SF
        assert!(mmu.translate(va).metadata_accesses.is_empty(), "warm");
        let dropped = mmu.invalidate(va);
        assert!(dropped >= 1, "the cached set entry must be dropped");
        assert!(
            !mmu.translate(va).metadata_accesses.is_empty(),
            "after the shootdown the tag group is refetched from memory"
        );
        assert_eq!(mmu.invalidations.get(), 1);
    }

    #[test]
    fn latency_includes_both_cache_probes() {
        let mut mmu = UtopiaMmu::new(
            UtopiaMmuConfig::paper_baseline(),
            PhysAddr::new(0xD0_0000_0000),
        );
        let t = mmu.translate(VirtAddr::new(0x9000));
        assert_eq!(t.latency, Cycles::new(4));
    }

    #[test]
    fn sets_scale_with_size() {
        let small = UtopiaMmuConfig::paper_baseline().with_restseg_bytes(1 << 30);
        let large = UtopiaMmuConfig::paper_baseline().with_restseg_bytes(8 << 30);
        assert!(large.sets() > small.sets());
    }
}
