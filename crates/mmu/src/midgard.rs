//! Midgard (Gupta et al., ISCA 2021): an intermediate address space that
//! splits translation into a *frontend* (virtual → Midgard address, at VMA
//! granularity, cached by two levels of VMA lookaside buffers) and a
//! *backend* (Midgard → physical, performed lazily with a radix-like table
//! at cache-miss time).
//!
//! The paper's Use Case 3 (Fig. 17) measures how much of the total
//! translation latency each side contributes, and Fig. 18 explains BC's
//! outlier behaviour by its VMA-size distribution: one huge VMA plus ~147
//! small ones that thrash the 16-entry L2 VLB (3 % hit ratio).

use crate::pt::WalkAccessList;
use serde::{Deserialize, Serialize};
use vm_types::{Counter, Cycles, PhysAddr, VirtAddr};

/// Configuration of the Midgard MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MidgardConfig {
    /// L1 VMA-lookaside-buffer entries (the paper: 64, 1 cycle).
    pub l1_vlb_entries: usize,
    /// L1 VLB latency.
    pub l1_vlb_latency: Cycles,
    /// L2 range VLB entries (the paper: 16, 4 cycles).
    pub l2_vlb_entries: usize,
    /// L2 VLB latency.
    pub l2_vlb_latency: Cycles,
    /// Levels of the backend (Midgard → physical) radix table (the paper: 6).
    pub backend_levels: usize,
}

impl MidgardConfig {
    /// The paper's Table 4 configuration.
    pub fn paper_baseline() -> Self {
        MidgardConfig {
            l1_vlb_entries: 64,
            l1_vlb_latency: Cycles::new(1),
            l2_vlb_entries: 16,
            l2_vlb_latency: Cycles::new(4),
            backend_levels: 6,
        }
    }
}

impl Default for MidgardConfig {
    fn default() -> Self {
        MidgardConfig::paper_baseline()
    }
}

/// One VMA registered with the frontend: a virtual range mapped to a
/// contiguous region of the Midgard address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MidgardVma {
    /// Virtual start.
    pub virt_start: VirtAddr,
    /// Length in bytes.
    pub bytes: u64,
    /// Start of the corresponding Midgard-address range.
    pub midgard_start: u64,
}

impl MidgardVma {
    fn covers(&self, va: VirtAddr) -> bool {
        va >= self.virt_start && va.raw() < self.virt_start.raw() + self.bytes
    }
}

/// Statistics for the Midgard MMU, split by translation side.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MidgardStats {
    /// Translations performed.
    pub translations: Counter,
    /// L1 VLB hits.
    pub l1_vlb_hits: Counter,
    /// L2 VLB hits.
    pub l2_vlb_hits: Counter,
    /// Frontend walks of the in-memory VMA B-tree.
    pub frontend_walks: Counter,
    /// Total frontend latency in cycles.
    pub frontend_cycles: u64,
    /// Total backend latency in cycles (charged by the framework from the
    /// backend accesses it replays; this field accumulates the fixed part).
    pub backend_cycles: u64,
}

impl MidgardStats {
    /// Fraction of the total (frontend + backend) latency spent in the
    /// frontend — the quantity plotted in Fig. 17.
    pub fn frontend_fraction(&self) -> f64 {
        let total = self.frontend_cycles + self.backend_cycles;
        if total == 0 {
            0.0
        } else {
            self.frontend_cycles as f64 / total as f64
        }
    }

    /// L2 VLB hit ratio.
    pub fn l2_vlb_hit_ratio(&self) -> f64 {
        let lookups = self.frontend_walks.get() + self.l2_vlb_hits.get();
        if lookups == 0 {
            0.0
        } else {
            self.l2_vlb_hits.get() as f64 / lookups as f64
        }
    }
}

/// Result of one Midgard translation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MidgardTranslation {
    /// The Midgard (intermediate) address.
    pub midgard_addr: u64,
    /// Frontend latency (VLB probes, plus the VMA-tree walk when both VLBs
    /// miss).
    pub frontend_latency: Cycles,
    /// In-memory accesses performed by the frontend VMA-tree walk.
    pub frontend_accesses: WalkAccessList,
    /// In-memory accesses performed by the backend (Midgard → physical)
    /// walk; charged only when the access misses in the cache hierarchy.
    pub backend_accesses: WalkAccessList,
}

/// The Midgard MMU model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MidgardMmu {
    config: MidgardConfig,
    vmas: Vec<MidgardVma>,
    l1_vlb: Vec<(usize, u64)>,
    l2_vlb: Vec<(usize, u64)>,
    clock: u64,
    next_midgard: u64,
    metadata_base: u64,
    stats: MidgardStats,
}

impl MidgardMmu {
    /// Creates a Midgard MMU; frontend/backend tables live at
    /// `metadata_base`.
    // vmlint: allow(no-alloc-in-hot-path, "lazy first-touch construction: MidgardEngine::frontend_for builds one frontend per address space on its first translation, never per access")
    pub fn new(config: MidgardConfig, metadata_base: PhysAddr) -> Self {
        MidgardMmu {
            config,
            vmas: Vec::new(),
            l1_vlb: Vec::new(),
            l2_vlb: Vec::new(),
            clock: 0,
            next_midgard: 1 << 40,
            metadata_base: metadata_base.raw(),
            stats: MidgardStats::default(),
        }
    }

    /// Statistics.
    pub fn stats(&self) -> &MidgardStats {
        &self.stats
    }

    /// Registers a VMA with the frontend, assigning it a contiguous Midgard
    /// range. Returns the created descriptor.
    ///
    /// The assigned range preserves the VMA start's offset within 1 GiB
    /// (`midgard_start ≡ virt_start (mod 1 GiB)`), so any page-aligned
    /// virtual address stays page-aligned — at every supported page size —
    /// after the linear virtual→Midgard remap. The end-to-end engine
    /// relies on this to key its Midgard-space backend table by page base.
    pub fn register_vma(&mut self, virt_start: VirtAddr, bytes: u64) -> MidgardVma {
        const GIB: u64 = 1 << 30;
        let aligned = self.next_midgard.div_ceil(GIB) * GIB;
        let vma = MidgardVma {
            virt_start,
            bytes,
            midgard_start: aligned + (virt_start.raw() & (GIB - 1)),
        };
        self.next_midgard = vma.midgard_start + bytes.max(4096);
        self.vmas.push(vma);
        vma
    }

    /// The Midgard address of `va`, or `None` when no registered VMA covers
    /// it. A pure lookup: no VLB state or statistics are touched (used by
    /// the engine's install path, which remaps kernel-established mappings
    /// into the Midgard space).
    pub fn midgard_of(&self, va: VirtAddr) -> Option<u64> {
        self.vmas
            .iter()
            .find(|v| v.covers(va))
            .map(|v| v.midgard_start + (va.raw() - v.virt_start.raw()))
    }

    /// Number of registered VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    fn probe_vlb(vlb: &mut [(usize, u64)], idx: usize, clock: u64) -> bool {
        if let Some(entry) = vlb.iter_mut().find(|(i, _)| *i == idx) {
            entry.1 = clock;
            true
        } else {
            false
        }
    }

    fn fill_vlb(vlb: &mut Vec<(usize, u64)>, capacity: usize, idx: usize, clock: u64) {
        if vlb.iter().any(|(i, _)| *i == idx) {
            return;
        }
        if vlb.len() >= capacity {
            if let Some(victim) = vlb
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
            {
                vlb.swap_remove(victim);
            }
        }
        vlb.push((idx, clock));
    }

    /// Translates `va` to a Midgard address (frontend) and produces the
    /// backend accesses that a last-level-cache miss on the resulting
    /// Midgard address would require. Returns `None` when no VMA covers
    /// `va`.
    pub fn translate(&mut self, va: VirtAddr) -> Option<MidgardTranslation> {
        let (midgard_addr, frontend_latency, frontend_accesses) = self.translate_frontend(va)?;
        // Backend: a radix walk over the Midgard space performed only on LLC
        // misses; emit its node accesses for the framework to charge.
        let mut backend_accesses = WalkAccessList::new();
        for level in 0..self.config.backend_levels as u64 {
            backend_accesses.push(PhysAddr::new(
                self.metadata_base
                    + (1 << 30)
                    + level * 4096
                    + ((midgard_addr >> (12 + 9 * level.min(4))) & 0x1ff) * 8,
            ));
        }
        self.stats.backend_cycles += 2 * self.config.backend_levels as u64;

        Some(MidgardTranslation {
            midgard_addr,
            frontend_latency,
            frontend_accesses,
            backend_accesses,
        })
    }

    /// The frontend half of [`MidgardMmu::translate`]: VLB probes plus the
    /// VMA-tree walk when both miss, without synthesizing the standalone
    /// backend-access model. Returns the Midgard address, the frontend
    /// latency and the VMA-tree node accesses (empty on a VLB hit), or
    /// `None` when no VMA covers `va`. The end-to-end engine uses this —
    /// its backend is a real, separately-simulated structure, so the
    /// synthetic backend accesses would be allocated only to be thrown
    /// away on every single memory access.
    pub fn translate_frontend(&mut self, va: VirtAddr) -> Option<(u64, Cycles, WalkAccessList)> {
        self.clock += 1;
        self.stats.translations.inc();
        let idx = self.vmas.iter().position(|v| v.covers(va))?;
        let vma = self.vmas[idx];

        let mut frontend_latency = self.config.l1_vlb_latency;
        let mut frontend_accesses = WalkAccessList::new();
        if Self::probe_vlb(&mut self.l1_vlb, idx, self.clock) {
            self.stats.l1_vlb_hits.inc();
        } else {
            frontend_latency += self.config.l2_vlb_latency;
            if Self::probe_vlb(&mut self.l2_vlb, idx, self.clock) {
                self.stats.l2_vlb_hits.inc();
                Self::fill_vlb(
                    &mut self.l1_vlb,
                    self.config.l1_vlb_entries,
                    idx,
                    self.clock,
                );
            } else {
                // Walk the in-memory VMA B-tree: log2(n) node accesses.
                self.stats.frontend_walks.inc();
                let depth = ((self.vmas.len().max(2) as f64).log2().ceil() as u64).max(1);
                for level in 0..depth {
                    frontend_accesses.push(PhysAddr::new(
                        self.metadata_base + level * 64 + (idx as u64 % 16) * 1024,
                    ));
                    frontend_latency += Cycles::new(20);
                }
                Self::fill_vlb(
                    &mut self.l2_vlb,
                    self.config.l2_vlb_entries,
                    idx,
                    self.clock,
                );
                Self::fill_vlb(
                    &mut self.l1_vlb,
                    self.config.l1_vlb_entries,
                    idx,
                    self.clock,
                );
            }
        }
        self.stats.frontend_cycles += frontend_latency.raw();

        let midgard_addr = vma.midgard_start + (va.raw() - vma.virt_start.raw());
        Some((midgard_addr, frontend_latency, frontend_accesses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_large_vmas_are_served_by_the_l1_vlb() {
        let mut mmu = MidgardMmu::new(
            MidgardConfig::paper_baseline(),
            PhysAddr::new(0xE0_0000_0000),
        );
        mmu.register_vma(VirtAddr::new(0x1000_0000), 1 << 30);
        // Warm-up translation, then repeated hits.
        for i in 0..100u64 {
            mmu.translate(VirtAddr::new(0x1000_0000 + i * 0x10_000))
                .unwrap();
        }
        assert!(mmu.stats().l1_vlb_hits.get() >= 99);
        assert!(mmu.stats().frontend_fraction() < 0.5);
    }

    #[test]
    fn many_small_vmas_thrash_the_vlbs() {
        let mut mmu = MidgardMmu::new(
            MidgardConfig::paper_baseline(),
            PhysAddr::new(0xE0_0000_0000),
        );
        // 147 small VMAs (the BC profile of Fig. 18).
        for i in 0..147u64 {
            mmu.register_vma(VirtAddr::new(0x2000_0000 + i * 0x100_0000), 64 * 1024);
        }
        // Round-robin accesses across all VMAs defeat a 16-entry L2 VLB.
        for round in 0..20u64 {
            for i in 0..147u64 {
                mmu.translate(VirtAddr::new(0x2000_0000 + i * 0x100_0000 + round * 64))
                    .unwrap();
            }
        }
        assert!(mmu.stats().l2_vlb_hit_ratio() < 0.2);
        assert!(mmu.stats().frontend_walks.get() > 1000);
    }

    #[test]
    fn translation_preserves_offsets_within_the_vma() {
        let mut mmu = MidgardMmu::new(
            MidgardConfig::paper_baseline(),
            PhysAddr::new(0xE0_0000_0000),
        );
        let vma = mmu.register_vma(VirtAddr::new(0x4000_0000), 1 << 24);
        let t = mmu.translate(VirtAddr::new(0x4000_1234)).unwrap();
        assert_eq!(t.midgard_addr, vma.midgard_start + 0x1234);
    }

    #[test]
    fn uncovered_addresses_return_none() {
        let mut mmu = MidgardMmu::new(
            MidgardConfig::paper_baseline(),
            PhysAddr::new(0xE0_0000_0000),
        );
        mmu.register_vma(VirtAddr::new(0x4000_0000), 4096);
        assert!(mmu.translate(VirtAddr::new(0x9000_0000)).is_none());
    }

    #[test]
    fn backend_accesses_match_configured_levels() {
        let mut mmu = MidgardMmu::new(
            MidgardConfig::paper_baseline(),
            PhysAddr::new(0xE0_0000_0000),
        );
        mmu.register_vma(VirtAddr::new(0x4000_0000), 1 << 24);
        let t = mmu.translate(VirtAddr::new(0x4000_0000)).unwrap();
        assert_eq!(t.backend_accesses.len(), 6);
    }

    #[test]
    fn distinct_vmas_get_distinct_midgard_ranges() {
        let mut mmu = MidgardMmu::new(
            MidgardConfig::paper_baseline(),
            PhysAddr::new(0xE0_0000_0000),
        );
        let a = mmu.register_vma(VirtAddr::new(0x1000_0000), 1 << 20);
        let b = mmu.register_vma(VirtAddr::new(0x9000_0000), 1 << 20);
        assert!(b.midgard_start >= a.midgard_start + (1 << 20));
    }
}
