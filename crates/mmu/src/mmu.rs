//! The top-level MMU: TLB hierarchy + page-walk caches + one page-table
//! walker per address space for the configured page-table design.
//!
//! Every request names the [`Asid`] it executes under. TLB entries are
//! tagged (see [`crate::tlb`]); page tables are instantiated per address
//! space, each with its own metadata region in physical memory. A context
//! switch either keeps the TLBs warm (ASID-tagged mode, the default) or
//! performs the full flush of an ASID-less machine — the comparison the
//! multi-process experiments read out.

use crate::pt::{build_page_table, PageTable, PageTableKind, WalkOutcome};
use crate::pwc::PageWalkCaches;
use crate::tlb::{TlbHierarchy, TlbHierarchyConfig, TlbLevel};
use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use vm_types::{Asid, Counter, Cycles, PhysAddr, VirtAddr};

/// Physical distance between the per-ASID page-table metadata regions
/// (4 GiB — far more than any scaled-down table needs).
const ASID_TABLE_STRIDE: u64 = 0x1_0000_0000;

/// Configuration of the full MMU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuConfig {
    /// TLB hierarchy geometry.
    pub tlb: TlbHierarchyConfig,
    /// Whether page-walk caches are present (only meaningful for the radix
    /// design).
    pub page_walk_caches: bool,
    /// Page-table design walked on TLB misses.
    pub page_table: PageTableKind,
    /// Physical base address where page-table metadata is placed. Each
    /// address space gets its own region at a fixed stride above this base.
    pub metadata_base: PhysAddr,
    /// `true` (default): TLB entries are ASID-tagged and survive context
    /// switches. `false`: the ASID-less baseline that flushes the whole
    /// TLB hierarchy on every switch.
    pub asid_tlb_tags: bool,
    /// When `true`, the hash-based page-table walkers (ECH, HDC, HT) skip
    /// the probe for any page size with no resident leaves in the table
    /// (e.g. a THP-disabled address space never probes the 2 MiB or 1 GiB
    /// tables). This is a *modeling* choice, not just an optimization: the
    /// skipped probes disappear from the walk's modeled memory accesses,
    /// so walk latency and translation-metadata cache/DRAM traffic both
    /// shrink. The hardware analogue is a per-size valid bit maintained by
    /// the kernel. Default `false` — the paper's configuration probes all
    /// sizes unconditionally. The radix walker is unaffected (its per-size
    /// skip is a pure software fast path that never changes the modeled
    /// access list).
    pub skip_empty_size_probes: bool,
}

impl MmuConfig {
    /// The paper's baseline MMU (Table 4) with the given page-table design.
    pub fn paper_baseline(page_table: PageTableKind) -> Self {
        MmuConfig {
            tlb: TlbHierarchyConfig::paper_baseline(),
            page_walk_caches: true,
            page_table,
            metadata_base: PhysAddr::new(0x30_0000_0000),
            asid_tlb_tags: true,
            skip_empty_size_probes: false,
        }
    }

    /// A small configuration for tests.
    pub fn small_test(page_table: PageTableKind) -> Self {
        MmuConfig {
            tlb: TlbHierarchyConfig::small_test(),
            ..MmuConfig::paper_baseline(page_table)
        }
    }

    /// Enables (or disables) skipping hash-table walk probes for page
    /// sizes with no resident leaves — see
    /// [`MmuConfig::skip_empty_size_probes`] for the modeled-access
    /// implications. Keeps everything else identical.
    pub fn with_skip_empty_size_probes(mut self, enabled: bool) -> Self {
        self.skip_empty_size_probes = enabled;
        self
    }

    /// Disables ASID tagging (full TLB flush on every context switch),
    /// keeping everything else identical — the baseline of the
    /// multi-process interference experiments.
    pub fn without_asid_tags(mut self) -> Self {
        self.asid_tlb_tags = false;
        self
    }
}

impl Default for MmuConfig {
    fn default() -> Self {
        MmuConfig::paper_baseline(PageTableKind::Radix)
    }
}

/// Translation statistics of one address space.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsidMmuStats {
    /// Translations requested under this ASID.
    pub translations: Counter,
    /// Translations satisfied by the L1 TLBs.
    pub l1_hits: Counter,
    /// Translations satisfied by the L2 TLB.
    pub l2_hits: Counter,
    /// Page-table walks performed.
    pub walks: Counter,
    /// Walks that ended in a page fault.
    pub faults: Counter,
}

impl AsidMmuStats {
    /// TLB hits (either level) under this ASID.
    pub fn hits(&self) -> u64 {
        self.l1_hits.get() + self.l2_hits.get()
    }

    /// Miss ratio of this address space's translations, in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.translations.get() == 0 {
            0.0
        } else {
            self.walks.get() as f64 / self.translations.get() as f64
        }
    }
}

/// Statistics accumulated by the MMU.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuStats {
    /// Translations requested.
    pub translations: Counter,
    /// Translations satisfied by the L1 TLBs.
    pub l1_hits: Counter,
    /// Translations satisfied by the L2 TLB.
    pub l2_hits: Counter,
    /// Page-table walks performed.
    pub walks: Counter,
    /// Total page-table accesses issued by the walker.
    pub walk_accesses: Counter,
    /// Walks that ended in a page fault.
    pub faults: Counter,
    /// Page-table update accesses performed on behalf of the kernel.
    pub insert_accesses: Counter,
    /// Context switches observed by the MMU.
    pub context_switches: Counter,
    /// TLB entries dropped by context-switch flushes (non-zero only in the
    /// ASID-less full-flush mode).
    pub switch_flushed_entries: Counter,
    /// Per-address-space hit/miss accounting, indexed densely by raw ASID
    /// (ASIDs are allocated sequentially from the pid). A dense table
    /// keeps the per-translation accounting to one bounds-checked index —
    /// the seed's `BTreeMap` walk was paid on every single translation.
    pub per_asid: Vec<AsidMmuStats>,
}

impl MmuStats {
    /// L2 TLB misses (page walks) per 1000 of the given instruction count —
    /// the MPKI metric validated in Fig. 10.
    pub fn l2_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.walks.get() as f64 * 1000.0 / instructions as f64
        }
    }

    /// Translation statistics of one address space (zeros if the ASID never
    /// translated).
    pub fn for_asid(&self, asid: Asid) -> AsidMmuStats {
        self.per_asid
            .get(asid.raw() as usize)
            .cloned()
            .unwrap_or_default()
    }
}

/// The outcome of removing one translation (a TLB shootdown): the
/// page-table update accesses to charge as kernel memory traffic, plus how
/// much cached state the shootdown actually dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RemovedTranslation {
    /// Page-table update accesses performed by the removal.
    pub accesses: Vec<PhysAddr>,
    /// TLB entries dropped across the hierarchy.
    pub tlb_entries_dropped: usize,
    /// Page-walk-cache entries dropped (radix only).
    pub pwc_entries_dropped: usize,
}

/// The outcome of one translation request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationResult {
    /// The translated physical address, or `None` when the walk faulted.
    pub paddr: Option<PhysAddr>,
    /// The mapping used, when one was found.
    pub mapping: Option<Mapping>,
    /// TLB level that hit, or `None` when a page walk was needed.
    pub tlb_hit_level: Option<TlbLevel>,
    /// Fixed latency of the TLB (and PWC) probes.
    pub fixed_latency: Cycles,
    /// The page-table walk performed on a TLB miss.
    pub walk: Option<WalkOutcome>,
}

impl TranslationResult {
    /// `true` when the translation ended in a page fault.
    pub fn is_fault(&self) -> bool {
        self.paddr.is_none()
    }
}

/// The MMU model.
pub struct Mmu {
    config: MmuConfig,
    tlb: TlbHierarchy,
    pwc: PageWalkCaches,
    /// One page table per address space, created on first use.
    tables: Vec<(Asid, Box<dyn PageTable + Send>)>,
    stats: MmuStats,
}

impl std::fmt::Debug for Mmu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmu")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .field("page_table_kind", &self.config.page_table)
            .field("address_spaces", &self.tables.len())
            .finish_non_exhaustive()
    }
}

impl Mmu {
    /// Builds an MMU from its configuration.
    pub fn new(config: MmuConfig) -> Self {
        let pwc = if config.page_walk_caches && config.page_table == PageTableKind::Radix {
            PageWalkCaches::paper_baseline()
        } else {
            PageWalkCaches::disabled()
        };
        let mut mmu = Mmu {
            tlb: TlbHierarchy::new(config.tlb.clone()),
            pwc,
            tables: Vec::new(),
            stats: MmuStats::default(),
            config,
        };
        // The first address space exists from boot, as before the MMU went
        // multi-process — `page_table()` is valid on a fresh MMU.
        mmu.table_for(Asid::KERNEL);
        mmu
    }

    /// The MMU's configuration.
    pub fn config(&self) -> &MmuConfig {
        &self.config
    }

    /// Statistics.
    pub fn stats(&self) -> &MmuStats {
        &self.stats
    }

    /// The TLB hierarchy (for detailed per-level statistics).
    pub fn tlb(&self) -> &TlbHierarchy {
        &self.tlb
    }

    /// The page table of address space `asid`, if it has one.
    pub fn page_table_of(&self, asid: Asid) -> Option<&(dyn PageTable + Send)> {
        self.tables
            .iter()
            .find(|(a, _)| *a == asid)
            .map(|(_, t)| t.as_ref())
    }

    /// The page table of the first address space ([`Asid::KERNEL`]) — the
    /// single-process case. Always present (it is created at boot).
    pub fn page_table(&self) -> &(dyn PageTable + Send) {
        self.page_table_of(Asid::KERNEL)
            .expect("the ASID-0 table is created by Mmu::new")
    }

    fn table_for(&mut self, asid: Asid) -> &mut Box<dyn PageTable + Send> {
        if let Some(idx) = self.tables.iter().position(|(a, _)| *a == asid) {
            return &mut self.tables[idx].1;
        }
        let base = PhysAddr::new(
            self.config.metadata_base.raw() + u64::from(asid.raw()) * ASID_TABLE_STRIDE,
        );
        let mut table = build_page_table(self.config.page_table, base);
        table.set_skip_empty_size_probes(self.config.skip_empty_size_probes);
        self.tables.push((asid, table));
        &mut self.tables.last_mut().expect("just pushed").1
    }

    fn asid_stats(&mut self, asid: Asid) -> &mut AsidMmuStats {
        let idx = asid.raw() as usize;
        if idx >= self.stats.per_asid.len() {
            self.stats.per_asid.resize(idx + 1, AsidMmuStats::default());
        }
        &mut self.stats.per_asid[idx]
    }

    /// Translates `va` in address space `asid`. On a TLB miss the address
    /// space's page table is walked; the returned [`WalkOutcome`] carries
    /// the page-table accesses the caller must replay through the memory
    /// hierarchy to obtain the walk latency.
    ///
    /// Semantically this is exactly [`Mmu::probe_tlb`] followed, on a
    /// miss, by [`Mmu::walk_after_miss`] — the two halves the alternative
    /// translation engines interpose between (pinned by the
    /// `translate_equals_probe_plus_walk` test). The body is kept
    /// monolithic rather than composed from the halves because the radix
    /// hot path is allocation- and copy-sensitive: routing the hit result
    /// through a `Result` return costs measurable sustained MIPS.
    pub fn translate(&mut self, asid: Asid, va: VirtAddr) -> TranslationResult {
        self.stats.translations.inc();
        let (tlb_hit, fixed_latency) = self.tlb.lookup(asid, va);
        if let Some((mapping, level)) = tlb_hit {
            match level {
                TlbLevel::L1 => self.stats.l1_hits.inc(),
                TlbLevel::L2 => self.stats.l2_hits.inc(),
            }
            let per_asid = self.asid_stats(asid);
            per_asid.translations.inc();
            match level {
                TlbLevel::L1 => per_asid.l1_hits.inc(),
                TlbLevel::L2 => per_asid.l2_hits.inc(),
            }
            return TranslationResult {
                paddr: Some(mapping.translate(va)),
                mapping: Some(mapping),
                tlb_hit_level: Some(level),
                fixed_latency,
                walk: None,
            };
        }
        self.walk_after_miss(asid, va, fixed_latency)
    }

    /// Fast-path translation through the TLB hierarchy's L0 pointer cache
    /// (see [`TlbHierarchy::l0_lookup`]): on a hit, returns the physical
    /// address and the fixed probe latency with state and statistics
    /// effects **identical** to the L1-hit path of [`Mmu::translate`] /
    /// [`Mmu::probe_tlb`]. Returns `None` — mutating nothing — when the L0
    /// has no verified pointer for the page; the caller then dispatches
    /// the ordinary engine translation.
    ///
    /// Only sound for engines whose translate begins with an unmodified
    /// TLB probe of the raw virtual address (the conventional page table,
    /// RMM, Utopia). Midgard probes its backend with *Midgard* addresses,
    /// so the framework must not consult the L0 for it (see
    /// `TranslationEngine::uses_l0`).
    #[inline]
    pub fn l0_translate(&mut self, asid: Asid, va: VirtAddr) -> Option<(PhysAddr, Cycles)> {
        let (mapping, latency) = self.tlb.l0_lookup(asid, va)?;
        self.stats.translations.inc();
        self.stats.l1_hits.inc();
        let per_asid = self.asid_stats(asid);
        per_asid.translations.inc();
        per_asid.l1_hits.inc();
        Some((mapping.translate(va), latency))
    }

    /// Read-only view of what [`Mmu::l0_translate`] would serve, for
    /// invariant checking (no statistics or replacement state perturbed).
    pub fn l0_peek(&self, asid: Asid, va: VirtAddr) -> Option<PhysAddr> {
        self.tlb.l0_peek(asid, va).map(|m| m.translate(va))
    }

    /// First half of a translation: the TLB hierarchy probe. On a hit the
    /// completed [`TranslationResult`] is returned; on a miss the
    /// accumulated probe latency is returned so the caller can either walk
    /// the page table ([`Mmu::walk_after_miss`]) or consult an alternative
    /// translation structure (range TLB, RestSeg walker, VLB) first.
    #[inline]
    pub fn probe_tlb(&mut self, asid: Asid, va: VirtAddr) -> Result<TranslationResult, Cycles> {
        self.stats.translations.inc();
        let (tlb_hit, fixed_latency) = self.tlb.lookup(asid, va);
        if let Some((mapping, level)) = tlb_hit {
            match level {
                TlbLevel::L1 => self.stats.l1_hits.inc(),
                TlbLevel::L2 => self.stats.l2_hits.inc(),
            }
            let per_asid = self.asid_stats(asid);
            per_asid.translations.inc();
            match level {
                TlbLevel::L1 => per_asid.l1_hits.inc(),
                TlbLevel::L2 => per_asid.l2_hits.inc(),
            }
            return Ok(TranslationResult {
                paddr: Some(mapping.translate(va)),
                mapping: Some(mapping),
                tlb_hit_level: Some(level),
                fixed_latency,
                walk: None,
            });
        }
        Err(fixed_latency)
    }

    /// Second half of a translation after a TLB miss: consult the PWCs
    /// (radix only) and walk the page table. `fixed_latency` is whatever
    /// the caller has already accumulated (at least the TLB probe cost).
    pub fn walk_after_miss(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        mut fixed_latency: Cycles,
    ) -> TranslationResult {
        let skip = if self.config.page_table == PageTableKind::Radix {
            fixed_latency += self.pwc.latency();
            self.pwc.levels_skipped(va)
        } else {
            0
        };
        self.stats.walks.inc();
        let walk = self.table_for(asid).walk(va, skip);
        self.stats.walk_accesses.add(walk.accesses.len() as u64);
        let faulted = walk.mapping.is_none();
        if faulted {
            self.stats.faults.inc();
        }
        let per_asid = self.asid_stats(asid);
        per_asid.translations.inc();
        per_asid.walks.inc();
        if faulted {
            per_asid.faults.inc();
        }

        match walk.mapping {
            Some(mapping) => {
                self.tlb.fill(asid, mapping);
                if self.config.page_table == PageTableKind::Radix {
                    self.pwc.fill(va);
                }
                TranslationResult {
                    paddr: Some(mapping.translate(va)),
                    mapping: Some(mapping),
                    tlb_hit_level: None,
                    fixed_latency,
                    walk: Some(walk),
                }
            }
            None => TranslationResult {
                paddr: None,
                mapping: None,
                tlb_hit_level: None,
                fixed_latency,
                walk: Some(walk),
            },
        }
    }

    /// Records a translation completed by an alternative engine structure
    /// (a range TLB, the RestSeg walkers) after a TLB miss: the address
    /// space's per-ASID accounting sees the translation and the TLBs are
    /// filled with `mapping` so subsequent accesses to the page hit. The
    /// global `translations` counter was already incremented by the
    /// [`Mmu::probe_tlb`] that preceded this call; no page walk is counted.
    pub fn external_translation(&mut self, asid: Asid, mapping: &Mapping) {
        self.asid_stats(asid).translations.inc();
        self.tlb.fill(asid, *mapping);
    }

    /// Installs a mapping produced by the kernel (after a page fault) into
    /// the address space's page table and the TLB. Returns the page-table
    /// update accesses (to be charged as kernel memory traffic).
    pub fn install_mapping(&mut self, asid: Asid, mapping: &Mapping) -> Vec<PhysAddr> {
        let accesses = self.table_for(asid).insert(*mapping);
        self.stats.insert_accesses.add(accesses.len() as u64);
        self.tlb.fill(asid, *mapping);
        accesses
    }

    /// Removes the translation covering `va` from the address space's page
    /// table and invalidates the TLBs and (for the radix design) the
    /// page-walk caches covering the address — the MMU half of a TLB
    /// shootdown. Returns the update accesses and the dropped-entry counts.
    pub fn remove_mapping(&mut self, asid: Asid, va: VirtAddr) -> RemovedTranslation {
        let accesses = self.table_for(asid).remove(va);
        let tlb_entries_dropped = self.tlb.invalidate(asid, va);
        // The PWCs tag by virtual address alone, so entries covering the
        // address are dropped regardless of which address space asked.
        let pwc_entries_dropped = self.pwc.invalidate(va);
        RemovedTranslation {
            accesses,
            tlb_entries_dropped,
            pwc_entries_dropped,
        }
    }

    /// Notifies the MMU of a context switch into `to`. In ASID-tagged mode
    /// the TLBs survive; in the full-flush baseline every entry is dropped.
    /// The page-walk caches tag by virtual address alone and are flushed in
    /// both modes. Returns the number of TLB entries dropped.
    pub fn context_switch(&mut self, to: Asid) -> usize {
        let _ = to;
        self.stats.context_switches.inc();
        self.pwc.flush();
        if self.config.asid_tlb_tags {
            0
        } else {
            let dropped = self.tlb.flush();
            self.stats.switch_flushed_entries.add(dropped as u64);
            dropped
        }
    }

    /// Flushes the TLB hierarchy (all address spaces).
    pub fn flush_tlb(&mut self) {
        self.tlb.flush();
    }

    /// Flushes only the TLB entries of `asid` (address-space teardown).
    /// Returns the number of entries dropped.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        self.tlb.flush_asid(asid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::PageSize;

    const A0: Asid = Asid::KERNEL;

    fn mapping(va: u64, size: PageSize) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va).page_base(size),
            paddr: PhysAddr::new(0x10_0000_0000 + (va & !(size.bytes() - 1))),
            page_size: size,
        }
    }

    #[test]
    fn translate_miss_walk_then_tlb_hit() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x7f00_1000, PageSize::Size4K);
        mmu.install_mapping(A0, &m);
        mmu.flush_tlb();
        let first = mmu.translate(A0, VirtAddr::new(0x7f00_1234));
        assert_eq!(first.paddr, Some(m.translate(VirtAddr::new(0x7f00_1234))));
        assert!(first.tlb_hit_level.is_none());
        assert!(first.walk.is_some());
        let second = mmu.translate(A0, VirtAddr::new(0x7f00_1234));
        assert!(second.tlb_hit_level.is_some());
        assert!(second.walk.is_none());
        assert_eq!(mmu.stats().walks.get(), 1);
        assert_eq!(mmu.stats().l1_hits.get() + mmu.stats().l2_hits.get(), 1);
    }

    #[test]
    fn unmapped_translation_faults() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let result = mmu.translate(A0, VirtAddr::new(0x0dea_dbee_f000));
        assert!(result.is_fault());
        assert_eq!(mmu.stats().faults.get(), 1);
    }

    #[test]
    fn l0_translate_serves_l1_hits_and_dies_with_the_shootdown() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x7f00_1000, PageSize::Size4K);
        mmu.install_mapping(A0, &m);
        let va = VirtAddr::new(0x7f00_1234);
        let full = mmu.translate(A0, va);
        assert!(full.tlb_hit_level.is_some());
        let translations = mmu.stats().translations.get();
        let l1_hits = mmu.stats().l1_hits.get();
        let (pa, latency) = mmu.l0_translate(A0, va).expect("hot page serves from L0");
        assert_eq!(Some(pa), full.paddr);
        assert_eq!(latency, full.fixed_latency);
        assert_eq!(mmu.stats().translations.get(), translations + 1);
        assert_eq!(mmu.stats().l1_hits.get(), l1_hits + 1);

        // A shootdown of the page must kill the fast path at once: an L0
        // hit after the invalidation would be a stale translation.
        mmu.remove_mapping(A0, va);
        assert_eq!(mmu.l0_peek(A0, va), None);
        assert_eq!(mmu.l0_translate(A0, va), None);

        // Remapping the page to a different frame: the fast path must
        // serve the new frame (or stand down), never the old one.
        let mut remapped = m;
        remapped.paddr = PhysAddr::new(0x20_0000_0000);
        mmu.install_mapping(A0, &remapped);
        let refreshed = mmu.translate(A0, va);
        assert_eq!(refreshed.paddr, Some(remapped.translate(va)));
        if let Some((pa, _)) = mmu.l0_translate(A0, va) {
            assert_eq!(pa, remapped.translate(va));
        }
    }

    #[test]
    fn install_fills_tlb_so_next_access_hits() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x1000, PageSize::Size4K);
        mmu.install_mapping(A0, &m);
        let r = mmu.translate(A0, VirtAddr::new(0x1000));
        assert!(r.tlb_hit_level.is_some());
    }

    #[test]
    fn remove_mapping_causes_subsequent_fault() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x1000, PageSize::Size4K);
        mmu.install_mapping(A0, &m);
        let removed = mmu.remove_mapping(A0, VirtAddr::new(0x1000));
        assert!(
            removed.tlb_entries_dropped > 0,
            "install filled the TLBs; the shootdown must drop those entries"
        );
        assert!(mmu.translate(A0, VirtAddr::new(0x1000)).is_fault());
    }

    #[test]
    fn remove_mapping_invalidates_warm_pwcs_for_the_address() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x7f00_1000, PageSize::Size4K);
        mmu.install_mapping(A0, &m);
        mmu.flush_tlb();
        // Warm the PWCs with a completed walk.
        assert!(!mmu.translate(A0, VirtAddr::new(0x7f00_1234)).is_fault());
        let removed = mmu.remove_mapping(A0, VirtAddr::new(0x7f00_1000));
        assert!(removed.pwc_entries_dropped > 0, "invlpg drops PWC entries");
        // The next walk of the address starts from the root again and
        // faults (leaf gone).
        assert!(mmu.translate(A0, VirtAddr::new(0x7f00_1234)).is_fault());
    }

    #[test]
    fn works_with_every_page_table_design() {
        for kind in PageTableKind::ALL {
            let mut mmu = Mmu::new(MmuConfig::small_test(kind));
            let m = mapping(0x2222_0000, PageSize::Size4K);
            mmu.install_mapping(A0, &m);
            mmu.flush_tlb();
            let r = mmu.translate(A0, VirtAddr::new(0x2222_0abc));
            assert_eq!(r.paddr, Some(PhysAddr::new(0x10_2222_0abc)), "{kind}");
            assert!(r.walk.is_some(), "{kind}");
        }
    }

    #[test]
    fn translate_equals_probe_plus_walk() {
        // `translate` keeps a monolithic body for hot-path reasons; this
        // pins that it stays behaviorally identical — results and
        // accumulated statistics — to the probe_tlb/walk_after_miss
        // composition the alternative engines build on.
        for kind in PageTableKind::ALL {
            let mut mono = Mmu::new(MmuConfig::small_test(kind));
            let mut split = Mmu::new(MmuConfig::small_test(kind));
            let asids = [A0, Asid::new(1)];
            for i in 0..64u64 {
                let m = mapping(0x4000_0000 + i * 0x20_0000, PageSize::Size4K);
                mono.install_mapping(asids[(i % 2) as usize], &m);
                split.install_mapping(asids[(i % 2) as usize], &m);
            }
            mono.flush_tlb();
            split.flush_tlb();
            for i in 0..256u64 {
                let asid = asids[(i % 2) as usize];
                // Mix of mapped pages (repeated, so TLB hits occur too)
                // and unmapped addresses (faulting walks).
                let va = VirtAddr::new(0x4000_0000 + (i % 80) * 0x20_0000 + (i * 64) % 4096);
                let a = mono.translate(asid, va);
                let b = match split.probe_tlb(asid, va) {
                    Ok(hit) => hit,
                    Err(fixed) => split.walk_after_miss(asid, va, fixed),
                };
                assert_eq!(a, b, "{kind}: translation {i} diverged");
            }
            assert_eq!(mono.stats(), split.stats(), "{kind}: statistics diverged");
        }
    }

    #[test]
    fn skip_empty_size_probes_knob_changes_hash_walk_accesses_only_when_on() {
        // Pin both settings of `MmuConfig::skip_empty_size_probes` against
        // an open-addressing table holding only 4 KiB leaves: default off
        // probes all three sizes (2 modeled accesses for a home-cluster
        // hit), on elides the empty 2 MiB/1 GiB probes (1 access).
        let walk_len = |skip: bool| {
            let config = MmuConfig::small_test(PageTableKind::HashedOpenAddressing)
                .with_skip_empty_size_probes(skip);
            let mut mmu = Mmu::new(config);
            mmu.install_mapping(A0, &mapping(0x7f00_1000, PageSize::Size4K));
            mmu.flush_tlb();
            let r = mmu.translate(A0, VirtAddr::new(0x7f00_1234));
            assert!(!r.is_fault());
            r.walk.expect("cold TLB walks").accesses.len()
        };
        assert_eq!(walk_len(false), 2, "default: every size is probed");
        assert_eq!(walk_len(true), 1, "knob on: empty sizes skipped");
    }

    #[test]
    fn radix_walks_shrink_once_pwcs_warm_up() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        // Map many pages in the same 2 MiB region.
        for i in 0..16u64 {
            mmu.install_mapping(A0, &mapping(0x7f00_0000 + i * 4096, PageSize::Size4K));
        }
        mmu.flush_tlb();
        let first = mmu.translate(A0, VirtAddr::new(0x7f00_0000));
        mmu.flush_tlb();
        let warm = mmu.translate(A0, VirtAddr::new(0x7f00_1000));
        let first_len = first.walk.unwrap().accesses.len();
        let warm_len = warm.walk.unwrap().accesses.len();
        assert!(warm_len < first_len, "PWC should shorten the second walk");
    }

    #[test]
    fn mpki_reflects_walk_count() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        for i in 0..100u64 {
            mmu.install_mapping(A0, &mapping(i * (1 << 21), PageSize::Size4K));
        }
        mmu.flush_tlb();
        for i in 0..100u64 {
            mmu.translate(A0, VirtAddr::new(i * (1 << 21)));
        }
        // Sparse accesses across 2 MiB-strided pages: most should walk.
        assert!(mmu.stats().l2_mpki(100_000) > 0.5);
    }

    #[test]
    fn huge_mappings_translate_any_interior_address() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x4000_0000, PageSize::Size2M);
        mmu.install_mapping(A0, &m);
        let r = mmu.translate(A0, VirtAddr::new(0x4012_3456));
        assert_eq!(r.paddr.unwrap().raw(), 0x10_4012_3456);
    }

    #[test]
    fn address_spaces_are_isolated() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let a = Asid::new(1);
        let b = Asid::new(2);
        // Same virtual page mapped to different frames in two processes.
        let ma = Mapping {
            vaddr: VirtAddr::new(0x5000),
            paddr: PhysAddr::new(0x10_0000_5000),
            page_size: PageSize::Size4K,
        };
        let mb = Mapping {
            vaddr: VirtAddr::new(0x5000),
            paddr: PhysAddr::new(0x20_0000_5000),
            page_size: PageSize::Size4K,
        };
        mmu.install_mapping(a, &ma);
        mmu.install_mapping(b, &mb);
        assert_eq!(
            mmu.translate(a, VirtAddr::new(0x5008)).paddr,
            Some(PhysAddr::new(0x10_0000_5008))
        );
        assert_eq!(
            mmu.translate(b, VirtAddr::new(0x5008)).paddr,
            Some(PhysAddr::new(0x20_0000_5008))
        );
        // A third address space sees nothing at all (walks its own, empty
        // table).
        assert!(mmu
            .translate(Asid::new(3), VirtAddr::new(0x5008))
            .is_fault());
        // Per-ASID accounting tracked each request.
        assert_eq!(mmu.stats().for_asid(a).translations.get(), 1);
        assert_eq!(mmu.stats().for_asid(b).translations.get(), 1);
        assert_eq!(mmu.stats().for_asid(Asid::new(3)).faults.get(), 1);
    }

    #[test]
    fn per_asid_tables_use_disjoint_metadata_regions() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let a = Asid::new(1);
        let b = Asid::new(2);
        mmu.install_mapping(a, &mapping(0x9000, PageSize::Size4K));
        mmu.install_mapping(b, &mapping(0x9000, PageSize::Size4K));
        mmu.flush_tlb();
        let wa = mmu.translate(a, VirtAddr::new(0x9000)).walk.unwrap();
        let wb = mmu.translate(b, VirtAddr::new(0x9000)).walk.unwrap();
        let overlap = wa.accesses.iter().any(|pa| wb.accesses.contains(pa));
        assert!(!overlap, "walk accesses must target different tables");
    }

    #[test]
    fn asid_mode_keeps_tlb_warm_across_context_switches() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let a = Asid::new(1);
        let m = mapping(0x9000, PageSize::Size4K);
        mmu.install_mapping(a, &m);
        let dropped = mmu.context_switch(Asid::new(2));
        assert_eq!(dropped, 0);
        let back = mmu.context_switch(a);
        assert_eq!(back, 0);
        let r = mmu.translate(a, VirtAddr::new(0x9000));
        assert!(r.tlb_hit_level.is_some(), "entry survived both switches");
        assert_eq!(mmu.stats().context_switches.get(), 2);
        assert_eq!(mmu.stats().switch_flushed_entries.get(), 0);
    }

    #[test]
    fn full_flush_mode_drops_entries_on_context_switches() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix).without_asid_tags());
        let a = Asid::new(1);
        let m = mapping(0x9000, PageSize::Size4K);
        mmu.install_mapping(a, &m);
        let dropped = mmu.context_switch(Asid::new(2));
        assert!(dropped > 0, "install filled L1+L2, flush drops them");
        mmu.context_switch(a);
        let r = mmu.translate(a, VirtAddr::new(0x9000));
        assert!(r.tlb_hit_level.is_none(), "entry lost to the full flush");
        assert!(mmu.stats().switch_flushed_entries.get() > 0);
    }

    #[test]
    fn flush_asid_tears_down_one_address_space() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let a = Asid::new(1);
        let b = Asid::new(2);
        mmu.install_mapping(a, &mapping(0x9000, PageSize::Size4K));
        mmu.install_mapping(b, &mapping(0x9000, PageSize::Size4K));
        assert!(mmu.flush_asid(a) > 0);
        assert!(mmu
            .translate(b, VirtAddr::new(0x9000))
            .tlb_hit_level
            .is_some());
    }
}
