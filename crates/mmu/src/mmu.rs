//! The top-level MMU: TLB hierarchy + page-walk caches + a page-table
//! walker for the configured page-table design.

use crate::pt::{build_page_table, PageTable, PageTableKind, WalkOutcome};
use crate::pwc::PageWalkCaches;
use crate::tlb::{TlbHierarchy, TlbHierarchyConfig, TlbLevel};
use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use vm_types::{Counter, Cycles, PhysAddr, VirtAddr};

/// Configuration of the full MMU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuConfig {
    /// TLB hierarchy geometry.
    pub tlb: TlbHierarchyConfig,
    /// Whether page-walk caches are present (only meaningful for the radix
    /// design).
    pub page_walk_caches: bool,
    /// Page-table design walked on TLB misses.
    pub page_table: PageTableKind,
    /// Physical base address where page-table metadata is placed.
    pub metadata_base: PhysAddr,
}

impl MmuConfig {
    /// The paper's baseline MMU (Table 4) with the given page-table design.
    pub fn paper_baseline(page_table: PageTableKind) -> Self {
        MmuConfig {
            tlb: TlbHierarchyConfig::paper_baseline(),
            page_walk_caches: true,
            page_table,
            metadata_base: PhysAddr::new(0x30_0000_0000),
        }
    }

    /// A small configuration for tests.
    pub fn small_test(page_table: PageTableKind) -> Self {
        MmuConfig {
            tlb: TlbHierarchyConfig::small_test(),
            ..MmuConfig::paper_baseline(page_table)
        }
    }
}

impl Default for MmuConfig {
    fn default() -> Self {
        MmuConfig::paper_baseline(PageTableKind::Radix)
    }
}

/// Statistics accumulated by the MMU.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuStats {
    /// Translations requested.
    pub translations: Counter,
    /// Translations satisfied by the L1 TLBs.
    pub l1_hits: Counter,
    /// Translations satisfied by the L2 TLB.
    pub l2_hits: Counter,
    /// Page-table walks performed.
    pub walks: Counter,
    /// Total page-table accesses issued by the walker.
    pub walk_accesses: Counter,
    /// Walks that ended in a page fault.
    pub faults: Counter,
    /// Page-table update accesses performed on behalf of the kernel.
    pub insert_accesses: Counter,
}

impl MmuStats {
    /// L2 TLB misses (page walks) per 1000 of the given instruction count —
    /// the MPKI metric validated in Fig. 10.
    pub fn l2_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.walks.get() as f64 * 1000.0 / instructions as f64
        }
    }
}

/// The outcome of one translation request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationResult {
    /// The translated physical address, or `None` when the walk faulted.
    pub paddr: Option<PhysAddr>,
    /// The mapping used, when one was found.
    pub mapping: Option<Mapping>,
    /// TLB level that hit, or `None` when a page walk was needed.
    pub tlb_hit_level: Option<TlbLevel>,
    /// Fixed latency of the TLB (and PWC) probes.
    pub fixed_latency: Cycles,
    /// The page-table walk performed on a TLB miss.
    pub walk: Option<WalkOutcome>,
}

impl TranslationResult {
    /// `true` when the translation ended in a page fault.
    pub fn is_fault(&self) -> bool {
        self.paddr.is_none()
    }
}

/// The MMU model.
pub struct Mmu {
    config: MmuConfig,
    tlb: TlbHierarchy,
    pwc: PageWalkCaches,
    page_table: Box<dyn PageTable + Send>,
    stats: MmuStats,
}

impl std::fmt::Debug for Mmu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmu")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .field("page_table_kind", &self.page_table.kind())
            .finish_non_exhaustive()
    }
}

impl Mmu {
    /// Builds an MMU from its configuration.
    pub fn new(config: MmuConfig) -> Self {
        let pwc = if config.page_walk_caches && config.page_table == PageTableKind::Radix {
            PageWalkCaches::paper_baseline()
        } else {
            PageWalkCaches::disabled()
        };
        Mmu {
            tlb: TlbHierarchy::new(config.tlb.clone()),
            pwc,
            page_table: build_page_table(config.page_table, config.metadata_base),
            stats: MmuStats::default(),
            config,
        }
    }

    /// The MMU's configuration.
    pub fn config(&self) -> &MmuConfig {
        &self.config
    }

    /// Statistics.
    pub fn stats(&self) -> &MmuStats {
        &self.stats
    }

    /// The TLB hierarchy (for detailed per-level statistics).
    pub fn tlb(&self) -> &TlbHierarchy {
        &self.tlb
    }

    /// The underlying page table.
    pub fn page_table(&self) -> &(dyn PageTable + Send) {
        self.page_table.as_ref()
    }

    /// Translates `va`. On a TLB miss the configured page table is walked;
    /// the returned [`WalkOutcome`] carries the page-table accesses the
    /// caller must replay through the memory hierarchy to obtain the walk
    /// latency.
    pub fn translate(&mut self, va: VirtAddr) -> TranslationResult {
        self.stats.translations.inc();
        let (tlb_hit, mut fixed_latency) = self.tlb.lookup(va);
        if let Some((mapping, level)) = tlb_hit {
            match level {
                TlbLevel::L1 => self.stats.l1_hits.inc(),
                TlbLevel::L2 => self.stats.l2_hits.inc(),
            }
            return TranslationResult {
                paddr: Some(mapping.translate(va)),
                mapping: Some(mapping),
                tlb_hit_level: Some(level),
                fixed_latency,
                walk: None,
            };
        }

        // TLB miss: consult the PWCs (radix only) and walk the page table.
        let skip = if self.config.page_table == PageTableKind::Radix {
            fixed_latency += self.pwc.latency();
            self.pwc.levels_skipped(va)
        } else {
            0
        };
        self.stats.walks.inc();
        let walk = self.page_table.walk(va, skip);
        self.stats.walk_accesses.add(walk.accesses.len() as u64);

        match walk.mapping {
            Some(mapping) => {
                self.tlb.fill(mapping);
                if self.config.page_table == PageTableKind::Radix {
                    self.pwc.fill(va);
                }
                TranslationResult {
                    paddr: Some(mapping.translate(va)),
                    mapping: Some(mapping),
                    tlb_hit_level: None,
                    fixed_latency,
                    walk: Some(walk),
                }
            }
            None => {
                self.stats.faults.inc();
                TranslationResult {
                    paddr: None,
                    mapping: None,
                    tlb_hit_level: None,
                    fixed_latency,
                    walk: Some(walk),
                }
            }
        }
    }

    /// Installs a mapping produced by the kernel (after a page fault) into
    /// the page table and the TLB. Returns the page-table update accesses
    /// (to be charged as kernel memory traffic).
    pub fn install_mapping(&mut self, mapping: &Mapping) -> Vec<PhysAddr> {
        let accesses = self.page_table.insert(*mapping);
        self.stats.insert_accesses.add(accesses.len() as u64);
        self.tlb.fill(*mapping);
        accesses
    }

    /// Removes the translation covering `va` from the page table and
    /// invalidates the TLBs (a TLB shootdown). Returns the update accesses.
    pub fn remove_mapping(&mut self, va: VirtAddr) -> Vec<PhysAddr> {
        let accesses = self.page_table.remove(va);
        self.tlb.invalidate(va);
        accesses
    }

    /// Flushes the TLB hierarchy (context switch without ASIDs).
    pub fn flush_tlb(&mut self) {
        self.tlb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::PageSize;

    fn mapping(va: u64, size: PageSize) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va).page_base(size),
            paddr: PhysAddr::new(0x10_0000_0000 + (va & !(size.bytes() - 1))),
            page_size: size,
        }
    }

    #[test]
    fn translate_miss_walk_then_tlb_hit() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x7f00_1000, PageSize::Size4K);
        mmu.install_mapping(&m);
        mmu.flush_tlb();
        let first = mmu.translate(VirtAddr::new(0x7f00_1234));
        assert_eq!(first.paddr, Some(m.translate(VirtAddr::new(0x7f00_1234))));
        assert!(first.tlb_hit_level.is_none());
        assert!(first.walk.is_some());
        let second = mmu.translate(VirtAddr::new(0x7f00_1234));
        assert!(second.tlb_hit_level.is_some());
        assert!(second.walk.is_none());
        assert_eq!(mmu.stats().walks.get(), 1);
        assert_eq!(mmu.stats().l1_hits.get() + mmu.stats().l2_hits.get(), 1);
    }

    #[test]
    fn unmapped_translation_faults() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let result = mmu.translate(VirtAddr::new(0xdead_beef_000));
        assert!(result.is_fault());
        assert_eq!(mmu.stats().faults.get(), 1);
    }

    #[test]
    fn install_fills_tlb_so_next_access_hits() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x1000, PageSize::Size4K);
        mmu.install_mapping(&m);
        let r = mmu.translate(VirtAddr::new(0x1000));
        assert!(r.tlb_hit_level.is_some());
    }

    #[test]
    fn remove_mapping_causes_subsequent_fault() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x1000, PageSize::Size4K);
        mmu.install_mapping(&m);
        mmu.remove_mapping(VirtAddr::new(0x1000));
        assert!(mmu.translate(VirtAddr::new(0x1000)).is_fault());
    }

    #[test]
    fn works_with_every_page_table_design() {
        for kind in PageTableKind::ALL {
            let mut mmu = Mmu::new(MmuConfig::small_test(kind));
            let m = mapping(0x2222_0000, PageSize::Size4K);
            mmu.install_mapping(&m);
            mmu.flush_tlb();
            let r = mmu.translate(VirtAddr::new(0x2222_0abc));
            assert_eq!(r.paddr, Some(PhysAddr::new(0x10_2222_0abc)), "{kind}");
            assert!(r.walk.is_some(), "{kind}");
        }
    }

    #[test]
    fn radix_walks_shrink_once_pwcs_warm_up() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        // Map many pages in the same 2 MiB region.
        for i in 0..16u64 {
            mmu.install_mapping(&mapping(0x7f00_0000 + i * 4096, PageSize::Size4K));
        }
        mmu.flush_tlb();
        let first = mmu.translate(VirtAddr::new(0x7f00_0000));
        mmu.flush_tlb();
        let warm = mmu.translate(VirtAddr::new(0x7f00_1000));
        let first_len = first.walk.unwrap().accesses.len();
        let warm_len = warm.walk.unwrap().accesses.len();
        assert!(warm_len < first_len, "PWC should shorten the second walk");
    }

    #[test]
    fn mpki_reflects_walk_count() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        for i in 0..100u64 {
            mmu.install_mapping(&mapping(i * (1 << 21), PageSize::Size4K));
        }
        mmu.flush_tlb();
        for i in 0..100u64 {
            mmu.translate(VirtAddr::new(i * (1 << 21)));
        }
        // Sparse accesses across 2 MiB-strided pages: most should walk.
        assert!(mmu.stats().l2_mpki(100_000) > 0.5);
    }

    #[test]
    fn huge_mappings_translate_any_interior_address() {
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x4000_0000, PageSize::Size2M);
        mmu.install_mapping(&m);
        let r = mmu.translate(VirtAddr::new(0x4012_3456));
        assert_eq!(r.paddr.unwrap().raw(), 0x10_4012_3456);
    }
}
