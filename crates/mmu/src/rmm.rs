//! Redundant Memory Mappings (RMM, Karakostas et al., ISCA 2015): range
//! translation backed by eager paging. A small, fully-associative *range
//! TLB* caches arbitrary-size contiguous virtual-to-physical ranges; misses
//! consult an in-memory *range table* (a B-tree) walked by a hardware range
//! walker. Translations served by a range never touch the page table, which
//! is what removes most translation-metadata DRAM traffic in Fig. 21.

use crate::pt::WalkAccessList;
use mimic_os::kernel::RangeMapping;
use serde::{Deserialize, Serialize};
use vm_types::{Counter, Cycles, PhysAddr, VirtAddr};

/// Configuration of the RMM hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RmmConfig {
    /// Number of entries in the range TLB (the paper: 64).
    pub rlb_entries: usize,
    /// Range-TLB lookup latency (the paper: 9 cycles, probed in parallel
    /// with the L2 TLB).
    pub rlb_latency: Cycles,
    /// Nodes touched per range-table walk level (B-tree fanout model).
    pub range_table_fanout: usize,
}

impl RmmConfig {
    /// The paper's Table 4 configuration.
    pub fn paper_baseline() -> Self {
        RmmConfig {
            rlb_entries: 64,
            rlb_latency: Cycles::new(9),
            range_table_fanout: 8,
        }
    }
}

impl Default for RmmConfig {
    fn default() -> Self {
        RmmConfig::paper_baseline()
    }
}

/// The range TLB (called RLB in the paper): fully associative, LRU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RangeTlb {
    capacity: usize,
    entries: Vec<(RangeMapping, u64)>,
    clock: u64,
    /// Hits.
    pub hits: Counter,
    /// Misses.
    pub misses: Counter,
}

impl RangeTlb {
    /// Creates a range TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        RangeTlb {
            capacity: capacity.max(1),
            entries: Vec::new(),
            clock: 0,
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Looks up the range covering `va`.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<RangeMapping> {
        self.clock += 1;
        let clock = self.clock;
        for (range, lru) in &mut self.entries {
            if va >= range.virt_start && va.raw() < range.virt_start.raw() + range.bytes {
                *lru = clock;
                self.hits.inc();
                return Some(*range);
            }
        }
        self.misses.inc();
        None
    }

    /// Fills a range, evicting the LRU entry when full.
    pub fn fill(&mut self, range: RangeMapping) {
        self.clock += 1;
        if self
            .entries
            .iter()
            .any(|(r, _)| r.virt_start == range.virt_start)
        {
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(victim);
            }
        }
        self.entries.push((range, self.clock));
    }

    /// Number of resident ranges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no ranges are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops any cached range covering `va` (shootdown: the range was
    /// split or removed in the range table, so the cached copy is stale).
    /// Returns the number of entries dropped.
    pub fn invalidate_covering(&mut self, va: VirtAddr) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(r, _)| !r.covers(va));
        before - self.entries.len()
    }
}

/// The in-memory range table: a sorted structure of ranges walked by the
/// hardware range walker on RLB misses.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RangeTable {
    ranges: Vec<RangeMapping>,
    metadata_base: u64,
}

impl RangeTable {
    /// Creates an empty range table whose nodes live at `metadata_base`.
    pub fn new(metadata_base: PhysAddr) -> Self {
        RangeTable {
            ranges: Vec::new(),
            metadata_base: metadata_base.raw(),
        }
    }

    /// Inserts a range (kept sorted by virtual start).
    pub fn insert(&mut self, range: RangeMapping) {
        match self
            .ranges
            .binary_search_by_key(&range.virt_start.raw(), |r| r.virt_start.raw())
        {
            Ok(i) => self.ranges[i] = range,
            Err(i) => self.ranges.insert(i, range),
        }
    }

    /// Number of ranges stored.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Removes the range covering `va`, if any, returning it.
    pub fn remove_covering(&mut self, va: VirtAddr) -> Option<RangeMapping> {
        let idx = self.ranges.iter().position(|r| r.covers(va))?;
        Some(self.ranges.remove(idx))
    }

    /// Iterates over the stored ranges in virtual-address order.
    pub fn iter(&self) -> impl Iterator<Item = &RangeMapping> {
        self.ranges.iter()
    }

    /// Walks the table for `va`, returning the covering range (if any) and
    /// the physical addresses of the B-tree nodes the walker touched.
    pub fn walk(&self, va: VirtAddr, fanout: usize) -> (Option<RangeMapping>, WalkAccessList) {
        let mut accesses = WalkAccessList::new();
        // B-tree descent: log_fanout(n) node touches.
        let n = self.ranges.len().max(1) as f64;
        let depth = (n.log2() / (fanout.max(2) as f64).log2()).ceil().max(1.0) as u64;
        for level in 0..depth {
            accesses.push(PhysAddr::new(
                self.metadata_base + level * 64 + (va.raw() >> 21) % 8 * 64 * depth,
            ));
        }
        let found = self
            .ranges
            .iter()
            .find(|r| va >= r.virt_start && va.raw() < r.virt_start.raw() + r.bytes)
            .copied();
        (found, accesses)
    }
}

/// The combined RMM translation path: range TLB backed by the range table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmmMmu {
    config: RmmConfig,
    rlb: RangeTlb,
    table: RangeTable,
    /// Translations resolved through a range (no page-table walk needed).
    pub range_translations: Counter,
    /// Translations that fell through to the page table.
    pub fallback_translations: Counter,
}

impl RmmMmu {
    /// Creates the RMM hardware with its range table at `metadata_base`.
    // vmlint: allow(no-alloc-in-hot-path, "lazy first-touch construction: RmmEngine::rmm_for builds one RmmMmu per address space on its first translation, never per access")
    pub fn new(config: RmmConfig, metadata_base: PhysAddr) -> Self {
        RmmMmu {
            rlb: RangeTlb::new(config.rlb_entries),
            table: RangeTable::new(metadata_base),
            config,
            range_translations: Counter::new(),
            fallback_translations: Counter::new(),
        }
    }

    /// Registers an eagerly allocated range (from MimicOS).
    pub fn register_range(&mut self, range: RangeMapping) {
        self.table.insert(range);
    }

    /// Number of ranges registered.
    pub fn range_count(&self) -> usize {
        self.table.len()
    }

    /// Iterates over the registered ranges.
    pub fn ranges(&self) -> impl Iterator<Item = &RangeMapping> {
        self.table.iter()
    }

    /// Shoots the page `[vaddr, vaddr + page_bytes)` out of the range
    /// structures: the covering range (if any) is split into its remainders
    /// in the range table and dropped from the range TLB, so the stale
    /// translation can never be served again while the flanks keep
    /// translating. Returns the number of range entries (table + RLB) that
    /// were dropped or rewritten.
    pub fn invalidate_page(&mut self, vaddr: VirtAddr, page_bytes: u64) -> usize {
        let rlb_dropped = self.rlb.invalidate_covering(vaddr);
        let Some(range) = self.table.remove_covering(vaddr) else {
            return rlb_dropped;
        };
        let (left, right) = range.split_around(vaddr, page_bytes);
        if let Some(left) = left {
            self.table.insert(left);
        }
        if let Some(right) = right {
            self.table.insert(right);
        }
        rlb_dropped + 1
    }

    /// Attempts to translate `va` through a range. Returns the physical
    /// address, the lookup latency and the memory accesses performed by the
    /// range walker (empty on an RLB hit). Returns `None` when no range
    /// covers `va` (the ordinary page-table path must be used).
    pub fn translate(&mut self, va: VirtAddr) -> Option<(PhysAddr, Cycles, WalkAccessList)> {
        let translate_with =
            |range: &RangeMapping| range.phys_start.add(va.raw() - range.virt_start.raw());
        if let Some(range) = self.rlb.lookup(va) {
            self.range_translations.inc();
            return Some((
                translate_with(&range),
                self.config.rlb_latency,
                WalkAccessList::new(),
            ));
        }
        let (found, accesses) = self.table.walk(va, self.config.range_table_fanout);
        match found {
            Some(range) => {
                self.rlb.fill(range);
                self.range_translations.inc();
                Some((translate_with(&range), self.config.rlb_latency, accesses))
            }
            None => {
                self.fallback_translations.inc();
                None
            }
        }
    }

    /// Range-TLB statistics.
    pub fn rlb(&self) -> &RangeTlb {
        &self.rlb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(vstart: u64, pstart: u64, bytes: u64) -> RangeMapping {
        RangeMapping {
            virt_start: VirtAddr::new(vstart),
            phys_start: PhysAddr::new(pstart),
            bytes,
        }
    }

    #[test]
    fn rlb_hit_translates_without_walks() {
        let mut rmm = RmmMmu::new(RmmConfig::paper_baseline(), PhysAddr::new(0xC0_0000_0000));
        rmm.register_range(range(0x1000_0000, 0x8000_0000, 64 * 1024 * 1024));
        // First translation misses the RLB and walks the range table.
        let (pa1, _, walk1) = rmm.translate(VirtAddr::new(0x1000_5000)).unwrap();
        assert_eq!(pa1.raw(), 0x8000_5000);
        assert!(!walk1.is_empty());
        // Second translation hits the RLB.
        let (pa2, lat, walk2) = rmm.translate(VirtAddr::new(0x1200_0000)).unwrap();
        assert_eq!(pa2.raw(), 0x8200_0000);
        assert!(walk2.is_empty());
        assert_eq!(lat, Cycles::new(9));
        assert_eq!(rmm.rlb().hits.get(), 1);
    }

    #[test]
    fn uncovered_addresses_fall_back() {
        let mut rmm = RmmMmu::new(RmmConfig::paper_baseline(), PhysAddr::new(0xC0_0000_0000));
        rmm.register_range(range(0x1000_0000, 0x8000_0000, 4096));
        assert!(rmm.translate(VirtAddr::new(0x9000_0000)).is_none());
        assert_eq!(rmm.fallback_translations.get(), 1);
    }

    #[test]
    fn one_range_covers_many_pages() {
        let mut rmm = RmmMmu::new(RmmConfig::paper_baseline(), PhysAddr::new(0xC0_0000_0000));
        rmm.register_range(range(0x4000_0000, 0x10_0000_0000, 1 << 30));
        for i in 0..128u64 {
            let va = 0x4000_0000 + i * 0x20_0000;
            let (pa, _, _) = rmm.translate(VirtAddr::new(va)).unwrap();
            assert_eq!(pa.raw() - 0x10_0000_0000, va - 0x4000_0000);
        }
        assert_eq!(rmm.range_translations.get(), 128);
    }

    #[test]
    fn invalidated_pages_fall_out_of_ranges_but_flanks_survive() {
        let mut rmm = RmmMmu::new(RmmConfig::paper_baseline(), PhysAddr::new(0xC0_0000_0000));
        rmm.register_range(range(0x1000_0000, 0x8000_0000, 64 * 4096));
        // Warm the RLB with the range.
        assert!(rmm.translate(VirtAddr::new(0x1000_0000)).is_some());
        assert_eq!(rmm.rlb().len(), 1);
        // Shoot page 17 out of the range.
        let victim = VirtAddr::new(0x1001_1000);
        assert!(rmm.invalidate_page(victim, 4096) >= 1);
        assert_eq!(rmm.rlb().len(), 0, "stale RLB entry dropped");
        assert!(
            rmm.translate(victim).is_none(),
            "the victim page must fall back to the page-table path"
        );
        // The flanks still translate with the original phys offsets.
        let (pa_left, _, _) = rmm.translate(VirtAddr::new(0x1001_0abc)).unwrap();
        assert_eq!(pa_left.raw(), 0x8001_0abc);
        let (pa_right, _, _) = rmm.translate(VirtAddr::new(0x1001_2def)).unwrap();
        assert_eq!(pa_right.raw(), 0x8001_2def);
        assert_eq!(rmm.range_count(), 2);
        // Invalidating an uncovered page is a no-op.
        assert_eq!(rmm.invalidate_page(VirtAddr::new(0x9000_0000), 4096), 0);
    }

    #[test]
    fn rlb_capacity_is_bounded_with_lru_eviction() {
        let mut rlb = RangeTlb::new(2);
        rlb.fill(range(0x1000, 0x10_000, 4096));
        rlb.fill(range(0x2000, 0x20_000, 4096));
        rlb.lookup(VirtAddr::new(0x1000));
        rlb.fill(range(0x3000, 0x30_000, 4096));
        assert_eq!(rlb.len(), 2);
        assert!(rlb.lookup(VirtAddr::new(0x1000)).is_some());
        assert!(rlb.lookup(VirtAddr::new(0x2000)).is_none());
    }

    #[test]
    fn range_table_walk_depth_grows_with_ranges() {
        let mut small = RangeTable::new(PhysAddr::new(0xC0_0000_0000));
        let mut large = RangeTable::new(PhysAddr::new(0xC0_0000_0000));
        small.insert(range(0x1000, 0x10_000, 4096));
        for i in 0..10_000u64 {
            large.insert(range(
                0x10_0000 + i * 0x10_000,
                0x1_0000_0000 + i * 0x10_000,
                4096,
            ));
        }
        let (_, a_small) = small.walk(VirtAddr::new(0x1000), 8);
        let (_, a_large) = large.walk(VirtAddr::new(0x10_0000), 8);
        assert!(a_large.len() > a_small.len());
    }
}
