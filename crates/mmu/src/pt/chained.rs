//! A chained hash page table in the spirit of the PowerPC hashed page table
//! (the paper's `HT` configuration: a 4 GB global chain table with 8 PTEs
//! per bucket and overflow chains).

use super::hashed::size_idx;
use super::{PageTable, PageTableKind, WalkAccessList, WalkOutcome};
use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use vm_types::{FastDiv, FxHashMap, PageSize, PhysAddr, VirtAddr};

const PTES_PER_BUCKET: usize = 8;
const BUCKET_BYTES: u64 = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Pte {
    vpn: u64,
    size: PageSize,
    mapping: Mapping,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Bucket {
    entries: Vec<Pte>,
}

/// The chained hash page table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainedHashPageTable {
    metadata_base: PhysAddr,
    buckets: FastDiv,
    // vmlint: allow(fx-keying, "keyed by bucket index (hash of vpn modulo bucket count), a dense small integer, not a page-aligned address")
    storage: FxHashMap<u64, Bucket>,
    occupied: usize,
    /// Resident leaves per page size (4K/2M/1G); lets walks skip empty
    /// sizes when enabled.
    resident_by_size: [u64; 3],
    /// When `true`, walks omit probes (and their modeled accesses) for
    /// page sizes with no resident leaves.
    skip_empty_sizes: bool,
    /// Overflow chain blocks allocated beyond the primary bucket array.
    overflow_blocks: u64,
}

impl ChainedHashPageTable {
    /// Creates a table whose primary bucket array occupies `table_bytes`
    /// (the paper uses 4 GB) starting at `metadata_base`.
    pub fn new(metadata_base: PhysAddr, table_bytes: u64) -> Self {
        ChainedHashPageTable {
            metadata_base,
            buckets: FastDiv::new((table_bytes / BUCKET_BYTES).max(1)),
            storage: FxHashMap::default(),
            occupied: 0,
            resident_by_size: [0; 3],
            skip_empty_sizes: false,
            overflow_blocks: 0,
        }
    }

    fn hash(&self, vpn: u64, size: PageSize) -> u64 {
        let tag = vpn ^ ((size as u64 + 1) << 59);
        self.buckets.rem(tag.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
    }

    fn bucket_addr(&self, index: u64, chain_block: u64) -> PhysAddr {
        if chain_block == 0 {
            self.metadata_base.add(index * BUCKET_BYTES)
        } else {
            // Overflow blocks live past the primary array.
            self.metadata_base.add(
                self.buckets.divisor() * BUCKET_BYTES + (index % 4096) * BUCKET_BYTES * chain_block,
            )
        }
    }

    fn vpn_of(va: VirtAddr, size: PageSize) -> u64 {
        va.page_number(size).number()
    }
}

impl PageTable for ChainedHashPageTable {
    fn walk(&mut self, va: VirtAddr, _skip_levels: usize) -> WalkOutcome {
        let mut accesses = WalkAccessList::new();
        for size in [PageSize::Size2M, PageSize::Size4K, PageSize::Size1G] {
            if self.skip_empty_sizes && self.resident_by_size[size_idx(size)] == 0 {
                continue;
            }
            let vpn = Self::vpn_of(va, size);
            let idx = self.hash(vpn, size);
            if size == PageSize::Size4K {
                accesses.push(self.bucket_addr(idx, 0));
            }
            if let Some(bucket) = self.storage.get(&idx) {
                // Walking the chain: one extra access per overflow block.
                let chain_blocks = bucket.entries.len() / PTES_PER_BUCKET;
                for block in 1..=chain_blocks as u64 {
                    accesses.push(self.bucket_addr(idx, block));
                }
                if let Some(pte) = bucket
                    .entries
                    .iter()
                    .find(|p| p.vpn == vpn && p.size == size)
                {
                    if accesses.is_empty() {
                        accesses.push(self.bucket_addr(idx, 0));
                    }
                    return WalkOutcome {
                        mapping: Some(pte.mapping),
                        accesses,
                        parallel: true,
                    };
                }
            }
        }
        WalkOutcome {
            mapping: None,
            accesses,
            parallel: true,
        }
    }

    fn insert(&mut self, mapping: Mapping) -> Vec<PhysAddr> {
        let vpn = Self::vpn_of(mapping.vaddr, mapping.page_size);
        let idx = self.hash(vpn, mapping.page_size);
        let mut accesses = vec![self.bucket_addr(idx, 0)];
        let bucket = self.storage.entry(idx).or_default();
        let pte = Pte {
            vpn,
            size: mapping.page_size,
            mapping,
        };
        if let Some(existing) = bucket
            .entries
            .iter_mut()
            .find(|p| p.vpn == vpn && p.size == mapping.page_size)
        {
            *existing = pte;
            return accesses;
        }
        bucket.entries.push(pte);
        self.occupied += 1;
        self.resident_by_size[size_idx(mapping.page_size)] += 1;
        // Appending into an overflow block touches that block too.
        let chain_block = (bucket.entries.len() - 1) / PTES_PER_BUCKET;
        if chain_block > 0 {
            self.overflow_blocks = self.overflow_blocks.max(chain_block as u64);
            accesses.push(self.bucket_addr(idx, chain_block as u64));
        }
        accesses
    }

    fn remove(&mut self, va: VirtAddr) -> Vec<PhysAddr> {
        let mut accesses = Vec::new();
        for size in [PageSize::Size1G, PageSize::Size2M, PageSize::Size4K] {
            let vpn = Self::vpn_of(va, size);
            let idx = self.hash(vpn, size);
            if let Some(bucket) = self.storage.get_mut(&idx) {
                accesses.push(self.metadata_base.add(idx * BUCKET_BYTES));
                let before = bucket.entries.len();
                bucket.entries.retain(|p| !(p.vpn == vpn && p.size == size));
                if bucket.entries.len() < before {
                    self.occupied -= 1;
                    self.resident_by_size[size_idx(size)] -= 1;
                    return accesses;
                }
            }
        }
        accesses
    }

    fn set_skip_empty_size_probes(&mut self, enabled: bool) {
        self.skip_empty_sizes = enabled;
    }

    fn kind(&self) -> PageTableKind {
        PageTableKind::HashedChained
    }

    fn metadata_bytes(&self) -> u64 {
        self.buckets.divisor() * BUCKET_BYTES + self.overflow_blocks * BUCKET_BYTES
    }

    fn len(&self) -> usize {
        self.occupied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4k(va: u64) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va & !0xfff),
            paddr: PhysAddr::new(0x2_0000_0000 + (va & !0xfff)),
            page_size: PageSize::Size4K,
        }
    }

    #[test]
    fn lookup_hits_home_bucket() {
        let mut pt = ChainedHashPageTable::new(PhysAddr::new(0xB0_0000_0000), 1 << 24);
        pt.insert(map4k(0x7000));
        let walk = pt.walk(VirtAddr::new(0x7000), 0);
        assert!(!walk.is_fault());
        assert!(walk.accesses.len() <= 2);
    }

    #[test]
    fn long_chains_cost_extra_accesses() {
        // One bucket only: every entry chains.
        let mut pt = ChainedHashPageTable::new(PhysAddr::new(0xB0_0000_0000), 64);
        for i in 0..40u64 {
            pt.insert(map4k(i * 0x1000));
        }
        let walk = pt.walk(VirtAddr::new(0x0), 0);
        assert!(!walk.is_fault());
        assert!(
            walk.accesses.len() > 2,
            "chain walk should touch overflow blocks"
        );
    }

    #[test]
    fn all_translations_reachable() {
        let mut pt = ChainedHashPageTable::new(PhysAddr::new(0xB0_0000_0000), 1 << 20);
        for i in 0..3000u64 {
            pt.insert(map4k(i * 0x1000));
        }
        assert_eq!(pt.len(), 3000);
        for i in (0..3000u64).step_by(131) {
            assert!(!pt.walk(VirtAddr::new(i * 0x1000), 0).is_fault());
        }
    }

    #[test]
    fn remove_shrinks_table() {
        let mut pt = ChainedHashPageTable::new(PhysAddr::new(0xB0_0000_0000), 1 << 20);
        pt.insert(map4k(0x3000));
        pt.remove(VirtAddr::new(0x3000));
        assert_eq!(pt.len(), 0);
        assert!(pt.walk(VirtAddr::new(0x3000), 0).is_fault());
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut pt = ChainedHashPageTable::new(PhysAddr::new(0xB0_0000_0000), 1 << 20);
        pt.insert(map4k(0x3000));
        pt.insert(map4k(0x3000));
        assert_eq!(pt.len(), 1);
    }
}
