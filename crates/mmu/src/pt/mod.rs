//! Page-table designs: the hardware-visible translation structures walked by
//! the MMU and updated by the kernel on page faults.
//!
//! Four designs from the paper's Use Case 1 (§7.4) are provided:
//!
//! * [`radix::RadixPageTable`] — the x86-64 4-level radix tree (with
//!   page-walk caches handled by [`crate::pwc::PageWalkCaches`]),
//! * [`ech::ElasticCuckooPageTable`] — elastic cuckoo hashing
//!   (Skarlatos et al., ASPLOS 2020),
//! * [`hashed::OpenAddressingPageTable`] — the global open-addressing hash
//!   table of "Hash, Don't Cache (the page table)" (Yaniv & Tsafrir,
//!   SIGMETRICS 2016),
//! * [`chained::ChainedHashPageTable`] — a PowerPC-style chained hash table.
//!
//! Every design implements the [`PageTable`] trait: a *walk* returns the
//! physical memory accesses the hardware walker performs plus the mapping it
//! finds; an *insert* returns the accesses the kernel performs to update the
//! structure. The framework replays those accesses through the cache/DRAM
//! models, which is how page-table-induced memory interference is captured.

pub mod chained;
pub mod ech;
pub mod hashed;
pub mod radix;

pub use chained::ChainedHashPageTable;
pub use ech::ElasticCuckooPageTable;
pub use hashed::OpenAddressingPageTable;
pub use radix::RadixPageTable;

use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use std::fmt;
use vm_types::{FixedVec, PhysAddr, VirtAddr};

/// The per-walk list of page-table accesses. Radix walks touch at most 5
/// entries and the hash designs' typical probe sequences are shorter
/// still, so the inline capacity of 8 keeps every ordinary walk
/// allocation-free; pathological collision chains spill to the heap
/// transparently (see [`vm_types::FixedVec`]).
pub type WalkAccessList = FixedVec<PhysAddr, 8>;

/// Which page-table design is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageTableKind {
    /// 4-level x86-64 radix tree with page-walk caches.
    Radix,
    /// Elastic cuckoo hash page table (ECH).
    ElasticCuckoo,
    /// Global open-addressing hash page table (HDC).
    HashedOpenAddressing,
    /// Chained hash page table (HT).
    HashedChained,
}

impl PageTableKind {
    /// All designs, in the order the paper's figures present them.
    pub const ALL: [PageTableKind; 4] = [
        PageTableKind::Radix,
        PageTableKind::ElasticCuckoo,
        PageTableKind::HashedOpenAddressing,
        PageTableKind::HashedChained,
    ];

    /// Short label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            PageTableKind::Radix => "Radix",
            PageTableKind::ElasticCuckoo => "ECH",
            PageTableKind::HashedOpenAddressing => "HDC",
            PageTableKind::HashedChained => "HT",
        }
    }
}

impl fmt::Display for PageTableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The result of a hardware page-table walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkOutcome {
    /// The mapping found, or `None` when the walk ends at a non-present
    /// entry (page fault).
    pub mapping: Option<Mapping>,
    /// The physical addresses of the page-table data the walker read, in
    /// walk order. Inline storage — ordinary walks allocate nothing.
    pub accesses: WalkAccessList,
    /// `true` when the accesses are independent and can be issued in
    /// parallel (hash-based designs probe all candidate locations at once);
    /// `false` for pointer-chasing walks whose accesses are serialized
    /// (the radix tree).
    pub parallel: bool,
}

impl WalkOutcome {
    /// A walk that found nothing and touched nothing (e.g. an empty table
    /// fast path).
    pub fn fault_without_accesses() -> Self {
        WalkOutcome {
            mapping: None,
            accesses: WalkAccessList::new(),
            parallel: false,
        }
    }

    /// `true` when the walk ended in a page fault.
    pub fn is_fault(&self) -> bool {
        self.mapping.is_none()
    }
}

/// A hardware-walkable page-table design.
pub trait PageTable {
    /// Walks the table for `va`. `skip_levels` is the number of upper radix
    /// levels a page-walk cache allows the walker to skip; hash-based
    /// designs ignore it.
    fn walk(&mut self, va: VirtAddr, skip_levels: usize) -> WalkOutcome;

    /// Inserts (or updates) a translation, returning the physical addresses
    /// of the page-table data written or read by the kernel while doing so.
    fn insert(&mut self, mapping: Mapping) -> Vec<PhysAddr>;

    /// Removes the translation covering `va`, returning the accesses made.
    fn remove(&mut self, va: VirtAddr) -> Vec<PhysAddr>;

    /// Enables (or disables) skipping walk probes for page sizes with no
    /// resident leaves. Hash-based designs track per-size resident counts
    /// and, when enabled, omit both the probe work *and its modeled memory
    /// accesses* for empty sizes (see
    /// [`crate::MmuConfig::skip_empty_size_probes`]). Designs where the
    /// knob cannot change the modeled access list (radix) ignore it.
    fn set_skip_empty_size_probes(&mut self, _enabled: bool) {}

    /// The design's kind.
    fn kind(&self) -> PageTableKind;

    /// Bytes of page-table metadata currently allocated.
    fn metadata_bytes(&self) -> u64;

    /// Number of translations currently stored.
    fn len(&self) -> usize;

    /// `true` when the table stores no translations.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds a boxed page table of the requested kind with default geometry,
/// placing its metadata at `metadata_base`.
// vmlint: allow(no-alloc-in-hot-path, "lazy first-touch construction: runs once per (asid, table kind) when Mmu::table_for finds no table, never on the per-access walk path")
pub fn build_page_table(kind: PageTableKind, metadata_base: PhysAddr) -> Box<dyn PageTable + Send> {
    match kind {
        PageTableKind::Radix => Box::new(RadixPageTable::new(metadata_base)),
        PageTableKind::ElasticCuckoo => {
            Box::new(ElasticCuckooPageTable::new(metadata_base, 8 * 1024, 4))
        }
        PageTableKind::HashedOpenAddressing => {
            Box::new(OpenAddressingPageTable::new(metadata_base, 4 << 30))
        }
        PageTableKind::HashedChained => Box::new(ChainedHashPageTable::new(metadata_base, 4 << 30)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::PageSize;

    fn sample_mapping(va: u64, size: PageSize) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va).page_base(size),
            paddr: PhysAddr::new(0x10_0000_0000 + (va & !0xfff)),
            page_size: size,
        }
    }

    /// Shared conformance suite run against every design.
    fn conformance(kind: PageTableKind) {
        let mut pt = build_page_table(kind, PhysAddr::new(0x80_0000_0000));
        assert_eq!(pt.kind(), kind);
        assert!(pt.is_empty());

        // Walking an empty table faults.
        let miss = pt.walk(VirtAddr::new(0x1234_5000), 0);
        assert!(miss.is_fault());

        // Insert then walk finds the mapping.
        let m = sample_mapping(0x1234_5000, PageSize::Size4K);
        let insert_accesses = pt.insert(m);
        assert!(
            !insert_accesses.is_empty(),
            "{kind}: insert must touch metadata"
        );
        let hit = pt.walk(VirtAddr::new(0x1234_5678), 0);
        assert_eq!(hit.mapping, Some(m), "{kind}");
        assert!(!hit.accesses.is_empty(), "{kind}: walk must touch metadata");

        // Huge pages are found for any address they cover.
        let huge = sample_mapping(0x4000_0000, PageSize::Size2M);
        pt.insert(huge);
        let hit = pt.walk(VirtAddr::new(0x4000_0000 + 0x12_345), 0);
        assert_eq!(hit.mapping, Some(huge), "{kind}");

        // Unrelated addresses still fault.
        assert!(
            pt.walk(VirtAddr::new(0x7fff_0000_0000), 0).is_fault(),
            "{kind}"
        );

        // Removal makes the mapping unreachable.
        pt.remove(VirtAddr::new(0x1234_5000));
        assert!(pt.walk(VirtAddr::new(0x1234_5000), 0).is_fault(), "{kind}");

        assert!(pt.metadata_bytes() > 0, "{kind}");
        assert_eq!(pt.len(), 1, "{kind}");
    }

    #[test]
    fn all_designs_pass_conformance() {
        for kind in PageTableKind::ALL {
            conformance(kind);
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PageTableKind::Radix.label(), "Radix");
        assert_eq!(PageTableKind::ElasticCuckoo.label(), "ECH");
        assert_eq!(PageTableKind::HashedOpenAddressing.label(), "HDC");
        assert_eq!(PageTableKind::HashedChained.label(), "HT");
    }

    #[test]
    fn radix_walks_are_serial_and_hash_walks_parallel() {
        let m = sample_mapping(0x5555_0000, PageSize::Size4K);
        for kind in PageTableKind::ALL {
            let mut pt = build_page_table(kind, PhysAddr::new(0x80_0000_0000));
            pt.insert(m);
            let walk = pt.walk(VirtAddr::new(0x5555_0000), 0);
            match kind {
                PageTableKind::Radix => assert!(!walk.parallel),
                _ => assert!(walk.parallel, "{kind} should probe in parallel"),
            }
        }
    }

    #[test]
    fn radix_walk_touches_more_levels_than_hashed() {
        let m = sample_mapping(0x5555_0000, PageSize::Size4K);
        let mut radix = build_page_table(PageTableKind::Radix, PhysAddr::new(0x80_0000_0000));
        let mut hdc = build_page_table(
            PageTableKind::HashedOpenAddressing,
            PhysAddr::new(0x80_0000_0000),
        );
        radix.insert(m);
        hdc.insert(m);
        let radix_walk = radix.walk(VirtAddr::new(0x5555_0000), 0);
        let hdc_walk = hdc.walk(VirtAddr::new(0x5555_0000), 0);
        assert!(radix_walk.accesses.len() > hdc_walk.accesses.len());
    }
}
