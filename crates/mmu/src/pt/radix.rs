//! The x86-64 4-level radix page table.

use super::{PageTable, PageTableKind, WalkAccessList, WalkOutcome};
use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use vm_types::{FxHashMap, PageSize, PhysAddr, VirtAddr};

/// Size of one page-table node (one 4 KiB frame of 512 8-byte entries).
const NODE_BYTES: u64 = 4096;

/// The 4-level radix page table (PML4 → PDPT → PD → PT), the baseline design
/// in the paper's Use Case 1. Huge pages terminate the walk early: a 2 MiB
/// mapping is a leaf in the PD level, a 1 GiB mapping a leaf in the PDPT.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadixPageTable {
    /// Physical placement of each allocated node, keyed by (level, prefix):
    /// level 3 = PML4 (single node, prefix 0), level 2 = PDPT (prefix =
    /// va >> 39), level 1 = PD (prefix = va >> 30), level 0 = PT
    /// (prefix = va >> 21).
    /// (The maps use the deterministic Fx hasher: walks probe them on
    /// every TLB miss, the hottest lookups in the whole simulator.)
    // vmlint: allow(fx-keying, "keyed (level, va >> {39,30,21}): the u64 is a level-shifted node prefix, never a raw address")
    nodes: FxHashMap<(u8, u64), PhysAddr>,
    /// Leaf translations keyed by the page base's 4K page number
    /// (`base >> 12`). NOT the raw base address: page-aligned keys have
    /// twelve-plus zero low bits, and hashbrown picks buckets from the low
    /// bits of the Fx hash, whose entropy sits in the high bits — raw
    /// bases collapse the table into a few long probe chains on the
    /// hottest lookup of every TLB-missing walk.
    // vmlint: allow(fx-keying, "keyed by vpn (va >> 12), shifted at every call site per the comment above — the PR 7 rekey this rule pins")
    leaves: FxHashMap<u64, Mapping>,
    /// Resident-leaf count per page size (1G, 2M, 4K), letting lookups
    /// skip probing sizes with no mappings at all — for a 4K-only address
    /// space that removes two random-memory hash probes per page walk.
    size_counts: [usize; 3],
    metadata_base: PhysAddr,
    next_node: u64,
}

impl RadixPageTable {
    /// Creates an empty radix table whose nodes are allocated starting at
    /// `metadata_base`.
    pub fn new(metadata_base: PhysAddr) -> Self {
        let mut pt = RadixPageTable {
            nodes: FxHashMap::default(),
            leaves: FxHashMap::default(),
            size_counts: [0; 3],
            metadata_base,
            next_node: 0,
        };
        // The root (PML4) always exists.
        pt.allocate_node(3, 0);
        pt
    }

    fn allocate_node(&mut self, level: u8, prefix: u64) -> PhysAddr {
        if let Some(&addr) = self.nodes.get(&(level, prefix)) {
            return addr;
        }
        let addr = self.metadata_base.add(self.next_node * NODE_BYTES);
        self.next_node += 1;
        self.nodes.insert((level, prefix), addr);
        addr
    }

    fn node(&self, level: u8, prefix: u64) -> Option<PhysAddr> {
        self.nodes.get(&(level, prefix)).copied()
    }

    fn prefix(va: VirtAddr, level: u8) -> u64 {
        match level {
            3 => 0,
            2 => va.raw() >> 39,
            1 => va.raw() >> 30,
            _ => va.raw() >> 21,
        }
    }

    /// The entry address read at a given level for `va`: the node's base
    /// plus the 8-byte entry index for that level.
    fn entry_addr(&self, node: PhysAddr, va: VirtAddr, level: u8) -> PhysAddr {
        let idx = match level {
            3 => (va.raw() >> 39) & 0x1ff,
            2 => (va.raw() >> 30) & 0x1ff,
            1 => (va.raw() >> 21) & 0x1ff,
            _ => (va.raw() >> 12) & 0x1ff,
        };
        node.add(idx * 8)
    }

    /// Index into [`Self::size_counts`] for a page size.
    fn size_index(size: PageSize) -> usize {
        match size {
            PageSize::Size1G => 0,
            PageSize::Size2M => 1,
            PageSize::Size4K => 2,
        }
    }

    fn find_leaf(&self, va: VirtAddr) -> Option<Mapping> {
        for size in [PageSize::Size1G, PageSize::Size2M, PageSize::Size4K] {
            if self.size_counts[Self::size_index(size)] == 0 {
                continue;
            }
            let base = va.page_base(size);
            if let Some(m) = self.leaves.get(&(base.raw() >> 12)) {
                if m.page_size == size {
                    return Some(*m);
                }
            }
        }
        None
    }

    /// Number of levels a walk for a mapping of `size` must traverse
    /// (excluding levels skipped by page-walk caches).
    fn walk_depth(size: PageSize) -> u8 {
        match size {
            PageSize::Size1G => 2,
            PageSize::Size2M => 3,
            PageSize::Size4K => 4,
        }
    }
}

impl PageTable for RadixPageTable {
    fn walk(&mut self, va: VirtAddr, skip_levels: usize) -> WalkOutcome {
        let leaf = self.find_leaf(va);
        let depth = leaf.map_or(4, |m| Self::walk_depth(m.page_size));
        let mut accesses = WalkAccessList::new();
        // Walk from the top (level 3) down, honouring PWC skips. The skip
        // count removes the uppermost levels, never the leaf access.
        let start_level = 3_i32 - (skip_levels as i32).min(depth as i32 - 1);
        for l in (0..=start_level).rev() {
            let level = l as u8;
            // Levels below the leaf depth are not visited.
            if (4 - depth) > level {
                break;
            }
            match self.node(level, Self::prefix(va, level)) {
                Some(node) => accesses.push(self.entry_addr(node, va, level)),
                None => break,
            }
        }
        WalkOutcome {
            mapping: leaf,
            accesses,
            parallel: false,
        }
    }

    fn insert(&mut self, mapping: Mapping) -> Vec<PhysAddr> {
        let va = mapping.vaddr;
        let depth = Self::walk_depth(mapping.page_size);
        let mut accesses = Vec::new();
        // Touch (and allocate if needed) every node on the path.
        for l in (0..4u8).rev() {
            if (4 - depth) > l {
                break;
            }
            let node = self.allocate_node(l, Self::prefix(va, l));
            accesses.push(self.entry_addr(node, va, l));
        }
        if let Some(prev) = self.leaves.insert(va.raw() >> 12, mapping) {
            self.size_counts[Self::size_index(prev.page_size)] -= 1;
        }
        self.size_counts[Self::size_index(mapping.page_size)] += 1;
        accesses
    }

    fn remove(&mut self, va: VirtAddr) -> Vec<PhysAddr> {
        let Some(mapping) = self.find_leaf(va) else {
            return Vec::new();
        };
        if let Some(removed) = self.leaves.remove(&(mapping.vaddr.raw() >> 12)) {
            self.size_counts[Self::size_index(removed.page_size)] -= 1;
        }
        let leaf_level = 4 - Self::walk_depth(mapping.page_size);
        match self.node(leaf_level, Self::prefix(mapping.vaddr, leaf_level)) {
            Some(node) => vec![self.entry_addr(node, mapping.vaddr, leaf_level)],
            None => Vec::new(),
        }
    }

    fn kind(&self) -> PageTableKind {
        PageTableKind::Radix
    }

    fn metadata_bytes(&self) -> u64 {
        self.nodes.len() as u64 * NODE_BYTES
    }

    fn len(&self) -> usize {
        self.leaves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4k(va: u64) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va),
            paddr: PhysAddr::new(0x2_0000_0000 + va),
            page_size: PageSize::Size4K,
        }
    }

    #[test]
    fn four_kb_walk_visits_four_levels() {
        let mut pt = RadixPageTable::new(PhysAddr::new(0x80_0000_0000));
        pt.insert(map4k(0x7f12_3456_7000));
        let walk = pt.walk(VirtAddr::new(0x7f12_3456_7000), 0);
        assert_eq!(walk.accesses.len(), 4);
        assert!(!walk.parallel);
    }

    #[test]
    fn huge_page_walks_are_shorter() {
        let mut pt = RadixPageTable::new(PhysAddr::new(0x80_0000_0000));
        pt.insert(Mapping {
            vaddr: VirtAddr::new(0x4000_0000),
            paddr: PhysAddr::new(0x2_0000_0000),
            page_size: PageSize::Size2M,
        });
        pt.insert(Mapping {
            vaddr: VirtAddr::new(0x8000_0000_0000 - 0x4000_0000),
            paddr: PhysAddr::new(0x3_0000_0000),
            page_size: PageSize::Size1G,
        });
        assert_eq!(pt.walk(VirtAddr::new(0x4000_0000), 0).accesses.len(), 3);
        assert_eq!(
            pt.walk(VirtAddr::new(0x8000_0000_0000 - 0x4000_0000), 0)
                .accesses
                .len(),
            2
        );
    }

    #[test]
    fn pwc_skips_reduce_accesses() {
        let mut pt = RadixPageTable::new(PhysAddr::new(0x80_0000_0000));
        pt.insert(map4k(0x7f12_3456_7000));
        let full = pt.walk(VirtAddr::new(0x7f12_3456_7000), 0);
        let skipped = pt.walk(VirtAddr::new(0x7f12_3456_7000), 3);
        assert_eq!(full.accesses.len(), 4);
        assert_eq!(skipped.accesses.len(), 1);
        assert_eq!(full.mapping, skipped.mapping);
    }

    #[test]
    fn insert_allocates_nodes_on_demand() {
        let mut pt = RadixPageTable::new(PhysAddr::new(0x80_0000_0000));
        let before = pt.metadata_bytes();
        pt.insert(map4k(0x1000));
        let after_first = pt.metadata_bytes();
        pt.insert(map4k(0x2000));
        let after_second = pt.metadata_bytes();
        assert!(after_first > before);
        // The second page shares all intermediate nodes with the first.
        assert_eq!(after_first, after_second);
        // A distant address needs fresh intermediate nodes.
        pt.insert(map4k(0x7f00_0000_0000));
        assert!(pt.metadata_bytes() > after_second);
    }

    #[test]
    fn walk_of_partially_built_path_faults_with_partial_accesses() {
        let mut pt = RadixPageTable::new(PhysAddr::new(0x80_0000_0000));
        pt.insert(map4k(0x7f12_3456_7000));
        // Same 2 MiB region, different page: walk reaches the PT level but
        // the leaf is absent.
        let walk = pt.walk(VirtAddr::new(0x7f12_3456_8000), 0);
        assert!(walk.is_fault());
        assert_eq!(walk.accesses.len(), 4);
        // A totally unmapped region stops at the root.
        let far = pt.walk(VirtAddr::new(0x0000_1111_0000_0000), 0);
        assert!(far.is_fault());
        assert_eq!(far.accesses.len(), 1);
    }

    #[test]
    fn remove_then_walk_faults() {
        let mut pt = RadixPageTable::new(PhysAddr::new(0x80_0000_0000));
        pt.insert(map4k(0x9000));
        assert!(!pt.remove(VirtAddr::new(0x9000)).is_empty());
        assert!(pt.walk(VirtAddr::new(0x9000), 0).is_fault());
        assert!(pt.remove(VirtAddr::new(0x9000)).is_empty());
    }

    #[test]
    fn metadata_lives_at_the_configured_base() {
        let base = PhysAddr::new(0x123_0000_0000);
        let mut pt = RadixPageTable::new(base);
        pt.insert(map4k(0x1000));
        let walk = pt.walk(VirtAddr::new(0x1000), 0);
        assert!(walk.accesses.iter().all(|a| a.raw() >= base.raw()));
    }
}
