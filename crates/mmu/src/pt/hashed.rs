//! The global open-addressing hash page table of "Hash, Don't Cache (the
//! page table)" (Yaniv & Tsafrir, SIGMETRICS 2016), the paper's `HDC`
//! configuration: a 4 GB global table with 8 PTEs packed per cache-line
//! sized cluster and linear probing across clusters.

use super::{PageTable, PageTableKind, WalkAccessList, WalkOutcome};
use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use vm_types::{FastDiv, FxHashMap, PageSize, PhysAddr, VirtAddr};

/// PTEs per cluster (one 64-byte cache line of 8-byte entries).
const PTES_PER_CLUSTER: usize = 8;
const CLUSTER_BYTES: u64 = 64;
const MAX_PROBES: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Pte {
    vpn: u64,
    size: PageSize,
    mapping: Mapping,
}

/// Dense index of a page size into the per-size resident-leaf counters.
pub(crate) fn size_idx(size: PageSize) -> usize {
    match size {
        PageSize::Size4K => 0,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    }
}

/// The open-addressing hash page table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenAddressingPageTable {
    metadata_base: PhysAddr,
    clusters: FastDiv,
    /// Sparse cluster storage: only clusters that hold at least one PTE are
    /// materialized (the table itself is 4 GB of physical address space).
    // vmlint: allow(fx-keying, "keyed by cluster index (hash of vpn modulo cluster count), a dense small integer, not a page-aligned address")
    storage: FxHashMap<u64, [Option<Pte>; PTES_PER_CLUSTER]>,
    occupied: usize,
    /// Resident leaves per page size (4K/2M/1G), maintained by
    /// insert/remove so walks can skip empty sizes when enabled.
    resident_by_size: [u64; 3],
    /// When `true`, walks omit the probe (and its modeled access) for any
    /// page size with no resident leaves.
    skip_empty_sizes: bool,
    /// Probes beyond the home cluster (collision chain length indicator).
    pub overflow_probes: u64,
}

impl OpenAddressingPageTable {
    /// Creates a table occupying `table_bytes` of physical address space
    /// (the paper uses 4 GB) starting at `metadata_base`.
    pub fn new(metadata_base: PhysAddr, table_bytes: u64) -> Self {
        OpenAddressingPageTable {
            metadata_base,
            clusters: FastDiv::new((table_bytes / CLUSTER_BYTES).max(1)),
            storage: FxHashMap::default(),
            occupied: 0,
            resident_by_size: [0; 3],
            skip_empty_sizes: false,
            overflow_probes: 0,
        }
    }

    fn hash(&self, vpn: u64, size: PageSize) -> u64 {
        let tag = vpn ^ ((size as u64 + 1) << 58);
        self.clusters.rem(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn cluster_addr(&self, index: u64) -> PhysAddr {
        self.metadata_base.add(index * CLUSTER_BYTES)
    }

    fn vpn_of(va: VirtAddr, size: PageSize) -> u64 {
        va.page_number(size).number()
    }
}

impl PageTable for OpenAddressingPageTable {
    fn walk(&mut self, va: VirtAddr, _skip_levels: usize) -> WalkOutcome {
        let mut accesses = WalkAccessList::new();
        for size in [PageSize::Size2M, PageSize::Size4K, PageSize::Size1G] {
            if self.skip_empty_sizes && self.resident_by_size[size_idx(size)] == 0 {
                continue;
            }
            let vpn = Self::vpn_of(va, size);
            let home = self.hash(vpn, size);
            for probe in 0..MAX_PROBES as u64 {
                let idx = self.clusters.rem(home + probe);
                if size == PageSize::Size4K || probe == 0 {
                    accesses.push(self.cluster_addr(idx));
                }
                match self.storage.get(&idx) {
                    Some(cluster) => {
                        if let Some(pte) = cluster
                            .iter()
                            .flatten()
                            .find(|p| p.vpn == vpn && p.size == size)
                        {
                            return WalkOutcome {
                                mapping: Some(pte.mapping),
                                accesses,
                                parallel: true,
                            };
                        }
                        // A cluster with a free slot terminates the probe
                        // sequence for this size.
                        if cluster.iter().any(|p| p.is_none()) {
                            break;
                        }
                    }
                    None => break,
                }
            }
        }
        WalkOutcome {
            mapping: None,
            accesses,
            parallel: true,
        }
    }

    fn insert(&mut self, mapping: Mapping) -> Vec<PhysAddr> {
        let vpn = Self::vpn_of(mapping.vaddr, mapping.page_size);
        let home = self.hash(vpn, mapping.page_size);
        let mut accesses = Vec::new();
        let pte = Pte {
            vpn,
            size: mapping.page_size,
            mapping,
        };
        for probe in 0..MAX_PROBES as u64 {
            let idx = self.clusters.rem(home + probe);
            accesses.push(self.cluster_addr(idx));
            if probe > 0 {
                self.overflow_probes += 1;
            }
            let cluster = self.storage.entry(idx).or_insert([None; PTES_PER_CLUSTER]);
            // Update in place.
            if let Some(slot) = cluster
                .iter_mut()
                .flatten()
                .find(|p| p.vpn == vpn && p.size == mapping.page_size)
            {
                *slot = pte;
                return accesses;
            }
            if let Some(slot) = cluster.iter_mut().find(|p| p.is_none()) {
                *slot = Some(pte);
                self.occupied += 1;
                self.resident_by_size[size_idx(mapping.page_size)] += 1;
                return accesses;
            }
        }
        // Probe budget exhausted (pathological load): overwrite the home
        // cluster's first entry to keep the model progressing.
        let cluster = self.storage.entry(home).or_insert([None; PTES_PER_CLUSTER]);
        if let Some(old) = cluster[0] {
            self.resident_by_size[size_idx(old.size)] -= 1;
        } else {
            self.occupied += 1;
        }
        cluster[0] = Some(pte);
        self.resident_by_size[size_idx(mapping.page_size)] += 1;
        accesses
    }

    fn remove(&mut self, va: VirtAddr) -> Vec<PhysAddr> {
        let mut accesses = Vec::new();
        for size in [PageSize::Size1G, PageSize::Size2M, PageSize::Size4K] {
            let vpn = Self::vpn_of(va, size);
            let home = self.hash(vpn, size);
            for probe in 0..MAX_PROBES as u64 {
                let idx = self.clusters.rem(home + probe);
                let Some(cluster) = self.storage.get_mut(&idx) else {
                    break;
                };
                accesses.push(self.metadata_base.add(idx * CLUSTER_BYTES));
                if let Some(slot) = cluster
                    .iter_mut()
                    .find(|p| p.is_some_and(|p| p.vpn == vpn && p.size == size))
                {
                    *slot = None;
                    self.occupied -= 1;
                    self.resident_by_size[size_idx(size)] -= 1;
                    return accesses;
                }
                if cluster.iter().any(|p| p.is_none()) {
                    break;
                }
            }
        }
        accesses
    }

    fn set_skip_empty_size_probes(&mut self, enabled: bool) {
        self.skip_empty_sizes = enabled;
    }

    fn kind(&self) -> PageTableKind {
        PageTableKind::HashedOpenAddressing
    }

    fn metadata_bytes(&self) -> u64 {
        self.clusters.divisor() * CLUSTER_BYTES
    }

    fn len(&self) -> usize {
        self.occupied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4k(va: u64) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va & !0xfff),
            paddr: PhysAddr::new(0x2_0000_0000 + (va & !0xfff)),
            page_size: PageSize::Size4K,
        }
    }

    #[test]
    fn typical_walk_is_a_single_cluster_access() {
        let mut pt = OpenAddressingPageTable::new(PhysAddr::new(0xA0_0000_0000), 1 << 30);
        pt.insert(map4k(0x1234_5000));
        let walk = pt.walk(VirtAddr::new(0x1234_5000), 0);
        assert!(!walk.is_fault());
        // 2 MiB probe (1 access) + 4 KiB home cluster (1 access).
        assert!(walk.accesses.len() <= 2);
        assert!(walk.parallel);
    }

    #[test]
    fn many_translations_remain_reachable() {
        let mut pt = OpenAddressingPageTable::new(PhysAddr::new(0xA0_0000_0000), 1 << 20);
        for i in 0..5000u64 {
            pt.insert(map4k(i * 0x1000));
        }
        assert_eq!(pt.len(), 5000);
        for i in (0..5000u64).step_by(97) {
            assert!(!pt.walk(VirtAddr::new(i * 0x1000), 0).is_fault());
        }
    }

    #[test]
    fn clustering_causes_overflow_probes_under_load() {
        // A tiny table forces clusters to fill and probes to overflow: 64
        // clusters of 8 PTEs hold at most 512 entries, so 600 insertions
        // must spill into neighbouring clusters.
        let mut pt = OpenAddressingPageTable::new(PhysAddr::new(0xA0_0000_0000), 64 * 64);
        for i in 0..600u64 {
            pt.insert(map4k(i * 0x1000));
        }
        assert!(pt.overflow_probes > 0);
    }

    #[test]
    fn metadata_size_is_fixed_at_construction() {
        let pt = OpenAddressingPageTable::new(PhysAddr::new(0xA0_0000_0000), 4 << 30);
        assert_eq!(pt.metadata_bytes(), 4 << 30);
    }

    #[test]
    fn skip_empty_size_probes_shrinks_the_modeled_walk() {
        // Only 4 KiB leaves are resident, so the 2 MiB home-cluster probe
        // is wasted work the knob can elide — and eliding it changes the
        // modeled access list (1 access instead of 2).
        let build = |skip: bool| {
            let mut pt = OpenAddressingPageTable::new(PhysAddr::new(0xA0_0000_0000), 1 << 24);
            pt.set_skip_empty_size_probes(skip);
            pt.insert(map4k(0x1234_5000));
            pt
        };
        let mut default_off = build(false);
        let mut skipping = build(true);
        let off = default_off.walk(VirtAddr::new(0x1234_5000), 0);
        let on = skipping.walk(VirtAddr::new(0x1234_5000), 0);
        assert_eq!(off.mapping, on.mapping, "knob must not change the result");
        assert_eq!(off.accesses.len(), 2, "2 MiB probe + 4 KiB home cluster");
        assert_eq!(on.accesses.len(), 1, "only the 4 KiB home cluster");
        // Removing the last 4 KiB leaf empties the size again: the skipping
        // table's subsequent miss touches no metadata at all.
        skipping.remove(VirtAddr::new(0x1234_5000));
        assert!(skipping
            .walk(VirtAddr::new(0x1234_5000), 0)
            .accesses
            .is_empty());
        // A resident huge page re-enables its size probe.
        skipping.insert(Mapping {
            vaddr: VirtAddr::new(0x4000_0000),
            paddr: PhysAddr::new(0x2_4000_0000),
            page_size: PageSize::Size2M,
        });
        let huge = skipping.walk(VirtAddr::new(0x4000_0000), 0);
        assert!(!huge.is_fault());
    }

    #[test]
    fn remove_clears_translation() {
        let mut pt = OpenAddressingPageTable::new(PhysAddr::new(0xA0_0000_0000), 1 << 24);
        pt.insert(map4k(0x8000));
        assert!(!pt.remove(VirtAddr::new(0x8000)).is_empty());
        assert!(pt.walk(VirtAddr::new(0x8000), 0).is_fault());
        assert_eq!(pt.len(), 0);
    }
}
