//! Elastic cuckoo hash page tables (Skarlatos et al., ASPLOS 2020).
//!
//! Translations live in `d` independent ways ("nests"), each a hash-indexed
//! array. A lookup probes all nests in parallel (one memory access per
//! nest); an insert places the entry in the first nest with a free slot at
//! its hash position, relocating ("cuckooing") existing entries when every
//! candidate slot is taken. The table grows ("elastic" resize) when its load
//! factor exceeds a threshold.

use super::hashed::size_idx;
use super::{PageTable, PageTableKind, WalkAccessList, WalkOutcome};
use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use vm_types::{PageSize, PhysAddr, VirtAddr};

const ENTRY_BYTES: u64 = 16;
const MAX_CUCKOO_KICKS: usize = 16;
const RESIZE_LOAD_FACTOR: f64 = 0.8;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    vpn: u64,
    size: PageSize,
    mapping: Mapping,
}

/// The elastic cuckoo page table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticCuckooPageTable {
    metadata_base: PhysAddr,
    ways: Vec<Vec<Option<Slot>>>,
    entries_per_way: usize,
    occupied: usize,
    /// Resident leaves per page size (4K/2M/1G); lets walks skip empty
    /// sizes when enabled.
    resident_by_size: [u64; 3],
    /// When `true`, walks omit probes (and their modeled accesses) for
    /// page sizes with no resident leaves.
    skip_empty_sizes: bool,
    /// Cuckoo relocations performed by inserts (a source of extra minor-
    /// fault latency for adversarial access patterns, Fig. 15's RND case).
    pub relocations: u64,
    /// Elastic resizes performed.
    pub resizes: u64,
}

impl ElasticCuckooPageTable {
    /// Creates a table with `ways` nests of `entries_per_way` slots each
    /// (the paper's configuration: 8 K entries/way, 4 ways).
    pub fn new(metadata_base: PhysAddr, entries_per_way: usize, ways: usize) -> Self {
        ElasticCuckooPageTable {
            metadata_base,
            ways: vec![vec![None; entries_per_way]; ways.max(1)],
            entries_per_way: entries_per_way.max(1),
            occupied: 0,
            resident_by_size: [0; 3],
            skip_empty_sizes: false,
            relocations: 0,
            resizes: 0,
        }
    }

    fn hash(&self, way: usize, vpn: u64) -> usize {
        // Per-way hash: multiply-shift with a different odd constant per way
        // (stand-in for the per-nest CityHash seeds).
        const SEEDS: [u64; 8] = [
            0x9E37_79B9_7F4A_7C15,
            0xC2B2_AE3D_27D4_EB4F,
            0x1656_67B1_9E37_79F9,
            0x27D4_EB2F_1656_67C5,
            0x8504_8B51_9E37_79B1,
            0xA24B_AED4_963E_E407,
            0x9FB2_1C65_1E98_DF25,
            0xCBF2_9CE4_8422_2325,
        ];
        let h = vpn.wrapping_mul(SEEDS[way % SEEDS.len()]);
        ((h >> 20) as usize) % self.entries_per_way
    }

    fn slot_addr(&self, way: usize, index: usize) -> PhysAddr {
        self.metadata_base
            .add((way * self.entries_per_way + index) as u64 * ENTRY_BYTES)
    }

    fn vpn_of(va: VirtAddr, size: PageSize) -> u64 {
        va.page_number(size).number()
    }

    fn load_factor(&self) -> f64 {
        self.occupied as f64 / (self.ways.len() * self.entries_per_way) as f64
    }

    // vmlint: allow(no-alloc-in-hot-path, "structural rehash event: elastic cuckoo resizing rebuilds every way by design and runs amortized-rarely, not per access")
    fn resize(&mut self) {
        // Double every way and re-insert all entries (the accesses of the
        // background resize are not charged to any single fault).
        let old: Vec<Slot> = self
            .ways
            .iter()
            .flat_map(|w| w.iter().flatten().copied())
            .collect();
        self.entries_per_way *= 2;
        for way in &mut self.ways {
            *way = vec![None; self.entries_per_way];
        }
        self.occupied = 0;
        self.resizes += 1;
        for slot in old {
            self.place(slot, &mut Vec::new());
        }
    }

    fn place(&mut self, mut slot: Slot, accesses: &mut Vec<PhysAddr>) {
        for _kick in 0..MAX_CUCKOO_KICKS {
            // Try every way for a free slot at the hashed position.
            for way in 0..self.ways.len() {
                let idx = self.hash(way, slot.vpn);
                accesses.push(self.slot_addr(way, idx));
                if self.ways[way][idx].is_none() {
                    self.ways[way][idx] = Some(slot);
                    self.occupied += 1;
                    return;
                }
            }
            // All candidate slots taken: evict the occupant of way 0 and
            // re-place it (cuckoo kick).
            let way = 0;
            let idx = self.hash(way, slot.vpn);
            let displaced = self.ways[way][idx].take().expect("occupied slot");
            self.ways[way][idx] = Some(slot);
            accesses.push(self.slot_addr(way, idx));
            self.relocations += 1;
            slot = displaced;
        }
        // Could not place after the kick budget: grow and retry.
        self.resize();
        self.place(slot, accesses);
    }
}

impl PageTable for ElasticCuckooPageTable {
    fn walk(&mut self, va: VirtAddr, _skip_levels: usize) -> WalkOutcome {
        let mut accesses = WalkAccessList::new();
        // Probe every nest for both page sizes (2 MiB first, as a real
        // implementation would use separate per-size tables probed in
        // parallel).
        for size in [PageSize::Size2M, PageSize::Size4K, PageSize::Size1G] {
            if self.skip_empty_sizes && self.resident_by_size[size_idx(size)] == 0 {
                continue;
            }
            let vpn = Self::vpn_of(va, size);
            for way in 0..self.ways.len() {
                let idx = self.hash(way, vpn);
                if size == PageSize::Size4K {
                    accesses.push(self.slot_addr(way, idx));
                }
                if let Some(slot) = self.ways[way][idx] {
                    if slot.vpn == vpn && slot.size == size {
                        if accesses.is_empty() {
                            accesses.push(self.slot_addr(way, idx));
                        }
                        return WalkOutcome {
                            mapping: Some(slot.mapping),
                            accesses,
                            parallel: true,
                        };
                    }
                }
            }
        }
        WalkOutcome {
            mapping: None,
            accesses,
            parallel: true,
        }
    }

    fn insert(&mut self, mapping: Mapping) -> Vec<PhysAddr> {
        let mut accesses = Vec::new();
        if self.load_factor() > RESIZE_LOAD_FACTOR {
            self.resize();
        }
        let slot = Slot {
            vpn: Self::vpn_of(mapping.vaddr, mapping.page_size),
            size: mapping.page_size,
            mapping,
        };
        // Update in place if present.
        for way in 0..self.ways.len() {
            let idx = self.hash(way, slot.vpn);
            if let Some(existing) = self.ways[way][idx] {
                if existing.vpn == slot.vpn && existing.size == slot.size {
                    self.ways[way][idx] = Some(slot);
                    accesses.push(self.slot_addr(way, idx));
                    return accesses;
                }
            }
        }
        self.place(slot, &mut accesses);
        self.resident_by_size[size_idx(mapping.page_size)] += 1;
        accesses
    }

    fn remove(&mut self, va: VirtAddr) -> Vec<PhysAddr> {
        let mut accesses = Vec::new();
        for size in [PageSize::Size1G, PageSize::Size2M, PageSize::Size4K] {
            let vpn = Self::vpn_of(va, size);
            for way in 0..self.ways.len() {
                let idx = self.hash(way, vpn);
                if let Some(slot) = self.ways[way][idx] {
                    if slot.vpn == vpn && slot.size == size {
                        self.ways[way][idx] = None;
                        self.occupied -= 1;
                        self.resident_by_size[size_idx(size)] -= 1;
                        accesses.push(self.slot_addr(way, idx));
                        return accesses;
                    }
                }
            }
        }
        accesses
    }

    fn set_skip_empty_size_probes(&mut self, enabled: bool) {
        self.skip_empty_sizes = enabled;
    }

    fn kind(&self) -> PageTableKind {
        PageTableKind::ElasticCuckoo
    }

    fn metadata_bytes(&self) -> u64 {
        (self.ways.len() * self.entries_per_way) as u64 * ENTRY_BYTES
    }

    fn len(&self) -> usize {
        self.occupied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4k(va: u64) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va & !0xfff),
            paddr: PhysAddr::new(0x2_0000_0000 + (va & !0xfff)),
            page_size: PageSize::Size4K,
        }
    }

    #[test]
    fn walk_probes_every_nest() {
        let mut pt = ElasticCuckooPageTable::new(PhysAddr::new(0x90_0000_0000), 1024, 4);
        pt.insert(map4k(0x1000));
        let walk = pt.walk(VirtAddr::new(0x9_9999_9000), 0);
        assert!(walk.is_fault());
        // A miss probes all 4 nests for the 4 KiB size.
        assert_eq!(walk.accesses.len(), 4);
        assert!(walk.parallel);
    }

    #[test]
    fn dense_insertion_triggers_relocations_or_resizes() {
        let mut pt = ElasticCuckooPageTable::new(PhysAddr::new(0x90_0000_0000), 64, 2);
        for i in 0..200u64 {
            pt.insert(map4k(0x10_0000 + i * 0x1000));
        }
        assert_eq!(pt.len(), 200);
        assert!(pt.relocations > 0 || pt.resizes > 0);
        // Every inserted translation is still reachable after the shuffling.
        for i in 0..200u64 {
            let walk = pt.walk(VirtAddr::new(0x10_0000 + i * 0x1000), 0);
            assert!(!walk.is_fault(), "lost translation {i}");
        }
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut pt = ElasticCuckooPageTable::new(PhysAddr::new(0x90_0000_0000), 1024, 4);
        pt.insert(map4k(0x5000));
        let count_before = pt.len();
        let mut updated = map4k(0x5000);
        updated.paddr = PhysAddr::new(0xdead_0000);
        pt.insert(updated);
        assert_eq!(pt.len(), count_before);
        assert_eq!(
            pt.walk(VirtAddr::new(0x5000), 0).mapping.unwrap().paddr,
            updated.paddr
        );
    }

    #[test]
    fn resize_preserves_translations() {
        let mut pt = ElasticCuckooPageTable::new(PhysAddr::new(0x90_0000_0000), 16, 2);
        for i in 0..64u64 {
            pt.insert(map4k(i * 0x1000));
        }
        assert!(pt.resizes > 0);
        for i in 0..64u64 {
            assert!(!pt.walk(VirtAddr::new(i * 0x1000), 0).is_fault());
        }
    }

    #[test]
    fn metadata_grows_on_resize() {
        let mut pt = ElasticCuckooPageTable::new(PhysAddr::new(0x90_0000_0000), 16, 2);
        let before = pt.metadata_bytes();
        for i in 0..64u64 {
            pt.insert(map4k(i * 0x1000));
        }
        assert!(pt.metadata_bytes() > before);
    }
}
